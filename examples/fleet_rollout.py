"""Fleet rollout: a sanctuary-wide camera-trap deployment.

Eight heterogeneous camera traps — some on WiFi backhaul, some on LTE,
some thermally throttled — share one uplink and one Cloud.  The Cloud
pools their flagged uploads, retrains incrementally, canaries every
candidate model on a subset of nodes, and only rolls out fleet-wide when
the canaries do not regress.  The second act deliberately poisons an
update to show the canary guard refusing it: the bad model reaches the
canary nodes, is rolled back, and never becomes a registry version.

Run:  python examples/fleet_rollout.py [--topology]
                                       [--trace TRACE.jsonl]
                                       [--metrics METRICS.json]
                                       [--summary-json SUMMARY.json]

With ``--topology`` the eight traps report through two site gateways
(four traps each) that batch flagged uploads into amortized WAN
transfers, resolve a quarter of flags with a gateway-side second
opinion, and scope the canary to gateway 0's region; the default stays
the flat paper wiring, byte-for-byte.  With ``--trace`` the run also
emits a deterministic JSONL trace of the fleet timeline (convert with
``python -m repro obs convert``); with ``--metrics`` it dumps the
fleet/cloud/training counters; ``--summary-json`` writes a
deterministic machine-readable summary of the run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core import system_by_id
from repro.data import make_dataset
from repro.data.images import ImageGenerator
from repro.fleet import (
    FleetScenario,
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs.cli import summarize


def build_summary(report, *, mode: str) -> dict:
    """Machine-readable summary for ``--summary-json``.

    The key set and value types are schema-pinned by
    ``tests/integration/test_fleet_rollout_summary.py`` — extend rather
    than rename, and keep every value JSON-serializable.
    """
    return {
        "mode": mode,
        "final_accuracy": report.final_accuracy,
        "ledger": dataclasses.asdict(report.ledger.snapshot()),
        "rollouts": [
            {
                "stage_index": r.stage_index,
                "promoted": r.promoted,
                "canary_ids": list(r.canary_ids),
            }
            for r in report.rollouts
        ],
        "gateway_flushes": sum(1 for g in report.gateway_stages if g.flushed),
        "second_opinion_images": sum(
            g.resolved_images for g in report.gateway_stages
        ),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="write a JSONL trace of the fleet run to this path",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None,
        help="write the metrics registry dump (JSON) to this path",
    )
    parser.add_argument(
        "--topology", action="store_true",
        help=(
            "route the traps through two site gateways (4 traps each) "
            "with upload aggregation, a gateway second-opinion model, "
            "and a regional canary"
        ),
    )
    parser.add_argument(
        "--summary-json", type=Path, default=None,
        help="write a deterministic JSON summary of the run to this path",
    )
    args = parser.parse_args(argv)
    tracer = Tracer() if args.trace else None
    metrics = MetricsRegistry() if args.metrics else None
    topology = None
    if args.topology:
        from repro.topology import AggregationPolicy, Topology

        topology = Topology.fan_out(
            8,
            4,
            aggregation=AggregationPolicy(flush_images=24, max_age_stages=2),
            second_opinion_fraction=0.25,
            canary_gateway_id=0,
        )
    scenario = FleetScenario(
        base=fleet_base_scenario(
            stream_scale=0.03,
            pretrain_images=64,
            pretrain_epochs=1,
            init_epochs=3,
            update_epochs=2,
            eval_images=64,
        ),
        num_nodes=8,
        lte_fraction=0.5,
        low_power_fraction=0.25,
        scheduler_policy="per-stage",
        seed=7,
    )
    print("fleet:")
    for p in scenario.profiles():
        print(
            f"  node {p.node_id}: {p.device_kind:>12s} over {p.link_kind}, "
            f"drift {min(p.severities):.2f}-{max(p.severities):.2f}"
        )

    # ------------------------------------------------------------------
    # Act 1: the In-situ AI variant (d) at fleet scale.
    # ------------------------------------------------------------------
    assets = prepare_fleet_assets(scenario)
    report = run_fleet(
        system_by_id("d"),
        assets,
        tracer=tracer,
        metrics=metrics,
        topology=topology,
    )
    if topology is not None:
        print("\ngateways:")
        for g in topology.gateways:
            print(
                f"  gateway {g.gateway_id}: nodes "
                f"{','.join(str(c) for c in g.child_ids)} over "
                f"{g.local_link_kind}, WAN {g.uplink_kind}"
            )
        print(f"canary region: gateway {topology.canary_gateway.gateway_id}")
    canary_ids = (
        topology.canary_node_ids if topology is not None
        else assets.canary_ids
    )
    print(f"\ncanary subset: nodes {canary_ids}")
    for stage in report.stages:
        verdict = (
            "promoted" if stage.promoted
            else ("REJECTED" if stage.updated else "no update")
        )
        print(
            f"stage {stage.stage_index}: uploaded "
            f"{stage.uploaded}/{stage.acquired} imgs "
            f"(makespan {stage.upload_makespan_s:.1f}s on the shared uplink), "
            f"trained on {stage.pooled_for_training}, {verdict}, "
            f"eval accuracy {stage.eval_accuracy:.0%}"
        )
    print(
        f"\naggregate: {report.total_uploaded_bytes / 1e6:.0f} MB up + "
        f"{report.total_downloaded_bytes / 1e6:.0f} MB of model pushes = "
        f"{report.total_bytes_moved / 1e6:.0f} MB moved "
        f"({report.data_reduction_vs_full:.0%} upload reduction); "
        f"cloud update time {report.total_update_time_s:.1f}s, "
        f"model versions {report.registry.history()}"
    )
    if topology is not None:
        snap = report.ledger.snapshot()
        print(
            f"tiers: {snap.edge_to_gateway_bytes / 1e6:.0f} MB edge->gateway "
            f"({snap.edge_transfer_events} transfers), "
            f"{snap.gateway_to_cloud_bytes / 1e6:.0f} MB gateway->cloud "
            f"({snap.wan_transfer_events} flushes, "
            f"{snap.transfer_overhead_bytes / 1e3:.0f} kB framing); "
            f"second opinion resolved "
            f"{sum(g.resolved_images for g in report.gateway_stages)} imgs "
            "at the gateways"
        )

    if args.summary_json is not None:
        summary = build_summary(
            report, mode="topology" if topology is not None else "flat"
        )
        args.summary_json.write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"\nsummary -> {args.summary_json}")

    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"\ntimeline ({len(tracer.records)} records -> {args.trace}):")
        print(summarize(tracer.records, limit=8))
    if metrics is not None:
        metrics.write_json(args.metrics)
        print(f"metrics -> {args.metrics}")

    # ------------------------------------------------------------------
    # Act 2: a poisoned update meets the canary guard.
    # ------------------------------------------------------------------
    from repro.core import InSituCloud, ModelRegistry, UpdateGuard
    from repro.fleet import FleetScheduler
    from repro.models import alexnet_spec

    base = scenario.base
    rng = np.random.default_rng(99)
    generator = ImageGenerator(base.image_size, base.num_classes, rng=rng)
    poison = make_dataset(48, generator=generator, rng=rng)
    poison.labels = (poison.labels + 1) % base.num_classes  # all labels wrong
    holdout = make_dataset(64, generator=generator, rng=rng)

    # A fresh Cloud holding the weights the fleet run just deployed.
    cloud = InSituCloud(
        base.num_classes,
        assets.permset,
        cost_spec=alexnet_spec(),
        shared_depth=base.shared_depth,
        width=base.width,
        hidden=base.hidden,
        rng=np.random.default_rng(base.seed + 1),
    )
    cloud.context_net.load_state_dict(assets.trunk_state)
    cloud.inference_net.load_state_dict(report.registry.active.state)
    registry = ModelRegistry()
    registry.publish(cloud.model_state(), {"origin": "fleet-run"})
    scheduler = FleetScheduler(
        cloud=cloud,
        registry=registry,
        guard=UpdateGuard(validation_data=holdout, max_regression=0.02),
        policy="per-stage",
        canary_ids=assets.canary_ids,
    )
    result = scheduler.rollout(
        99,
        poison,
        holdout,
        all_node_ids=tuple(range(scenario.num_nodes)),
        weight_shared=True,
        epochs=4,
        lr=0.05,
    )
    print(
        f"\npoisoned update: guard saw accuracy "
        f"{result.decision.accuracy_before:.0%} -> "
        f"{result.decision.accuracy_after:.0%}, "
        f"{'promoted (!)' if result.promoted else 'rejected'}; "
        f"touched nodes {sorted({e.node_id for e in result.events})} "
        f"(canaries only), registry still at v{registry.active.version}"
    )


if __name__ == "__main__":
    main()
