"""Wildlife monitoring: the paper's motivating Serengeti scenario.

A camera-trap edge node in a remote sanctuary: no stable uplink, battery
powered, inference runs only in daylight hours — the Single-running mode.
The example plans the node configuration with the analytical models, runs
the incremental schedule with realistic drift (night shots, close-ups,
occlusion by vegetation), and reports the data-movement savings against a
traditional ship-everything deployment.

Run:  python examples/wildlife_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro.comm import LTE, DataMovementLedger, JPEG_IMAGE_BYTES
from repro.core import InSituCloud, InSituNode, SingleRunningPlanner
from repro.data import DriftModel, ImageGenerator, IoTStream, make_dataset
from repro.diagnosis import InferenceConfidenceDiagnoser
from repro.hw import TX1
from repro.models import alexnet_spec, diagnosis_spec
from repro.selfsup import PermutationSet
from repro.transfer import evaluate


def main() -> None:
    rng = np.random.default_rng(42)
    generator = ImageGenerator(image_size=48, num_classes=5, rng=rng)

    # ------------------------------------------------------------------
    # Plan the node: camera records at 10 FPS -> 100 ms latency budget.
    # Single-running mode = TX1 GPU, batch sizes from the time and
    # memory models (Section IV-B1).
    # ------------------------------------------------------------------
    inf_spec = alexnet_spec()
    diag_spec = diagnosis_spec(inf_spec)
    planner = SingleRunningPlanner(TX1)
    config = planner.plan(inf_spec, diag_spec, latency_requirement_s=0.1)
    print(
        f"planned config: inference batch {config.inference_batch} "
        f"({config.inference_latency_s * 1e3:.0f} ms, "
        f"{config.inference_perf_per_watt:.1f} img/s/W), "
        f"diagnosis batch {config.diagnosis_batch} (memory-bound)"
    )

    # ------------------------------------------------------------------
    # Cloud bootstrap: pre-train on raw camera-trap archives, initialize
    # the classifier on the small labeled subset rangers produced.
    # ------------------------------------------------------------------
    permset = PermutationSet.generate(10, rng=rng)
    cloud = InSituCloud(
        num_classes=5,
        permset=permset,
        cost_spec=inf_spec,
        rng=np.random.default_rng(7),
    )
    archive = make_dataset(
        260, generator=generator, drift=DriftModel(0.35, rng=rng), rng=rng
    ).as_unlabeled()
    print(f"pre-training on {len(archive)} raw images...")
    perm_acc = cloud.unsupervised_pretrain(archive, epochs=4)
    labeled = make_dataset(
        140, generator=generator, drift=DriftModel(0.3, rng=rng), rng=rng
    )
    cloud.initialize_inference(labeled, epochs=8)
    print(f"jigsaw accuracy {perm_acc:.1%}; model initialized")

    # ------------------------------------------------------------------
    # Field deployment over the acquisition schedule.  The environment
    # keeps changing: dry season glare, wet season gloom.
    # ------------------------------------------------------------------
    node = InSituNode(
        cloud.inference_net,
        InferenceConfidenceDiagnoser(cloud.inference_net, threshold=0.7),
        inference_spec=inf_spec,
        diagnosis_spec=diag_spec,
        gpu=TX1,
        inference_batch=config.inference_batch,
        diagnosis_batch=min(config.diagnosis_batch, 64),
    )
    stream = IoTStream(
        generator,
        scale=0.6,
        severities=(0.3, 0.45, 0.35, 0.5, 0.4),
        rng=rng,
    )
    test = make_dataset(
        180, generator=generator, drift=DriftModel(0.45, rng=rng), rng=rng
    )

    ledger = DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    for stage in stream.stages():
        report = node.process_stage(stage)
        ledger.record(
            stage.index, report.acquired_images, report.flagged_images
        )
        if len(report.upload_data):
            cloud.incremental_update(
                report.upload_data, weight_shared=True, epochs=3
            )
            node.deploy(cloud.model_state())
        print(
            f"stage {stage.index} (severity {stage.drift_severity:.2f}): "
            f"accuracy-on-new {report.accuracy_before_update:.0%}, "
            f"uploaded {report.flagged_images}/{report.acquired_images}, "
            f"accuracy-now {evaluate(cloud.inference_net, test):.0%}"
        )

    # ------------------------------------------------------------------
    # The headline: how much traffic and radio energy did diagnosis save?
    # ------------------------------------------------------------------
    saved_images = ledger.total_acquired_images - ledger.total_uploaded_images
    saved_energy = LTE.image_upload_energy_j(saved_images)
    print(
        f"\ndata movement: {ledger.total_uploaded_images}/"
        f"{ledger.total_acquired_images} images uploaded "
        f"({ledger.overall_reduction_vs_full():.0%} reduction); "
        f"LTE radio energy saved: {saved_energy:.1f} J"
    )
    print(
        "per-stage upload fraction: "
        + ", ".join(f"{m:.2f}" for m in ledger.normalized_per_stage())
    )


if __name__ == "__main__":
    main()
