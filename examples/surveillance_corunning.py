"""24/7 video surveillance: Co-running mode on the FPGA.

A city surveillance node must keep inference available around the clock, so
diagnosis cannot wait for idle hours — the two tasks co-run.  The example
shows why the GPU is the wrong platform for this (interference inflates
inference latency ~3X), plans the WSS-NWS pipeline on the VX690T for a
real-time 30 FPS requirement, and compares it against the baseline
co-running architectures.

Run:  python examples/surveillance_corunning.py
"""

from __future__ import annotations

from repro.core import CoRunningPlanner, select_mode
from repro.hw import TX1, VX690T, best_design, co_running_latency
from repro.hw.pipeline import ARCH_FACTORIES
from repro.models import alexnet_spec, diagnosis_spec


def main() -> None:
    inf_spec = alexnet_spec()
    diag_spec = diagnosis_spec(inf_spec)

    mode = select_mode(inference_always_on=True)
    print(f"deployment requirement: inference 24/7 -> mode = {mode}\n")

    # ------------------------------------------------------------------
    # Why not the GPU?  Co-running interference (Fig. 16).
    # ------------------------------------------------------------------
    print("GPU co-running check (TX1):")
    for duty in (0.25, 0.5, 1.0):
        result = co_running_latency(
            inf_spec, diag_spec, TX1, diagnosis_duty=duty
        )
        print(
            f"  diagnosis duty {duty:.0%}: inference latency "
            f"{result.inference_solo_s * 1e3:.1f} ms -> "
            f"{result.inference_corun_s * 1e3:.1f} ms "
            f"({result.inference_slowdown:.1f}x slowdown)"
        )
    print("  -> unacceptable for a real-time camera; use the FPGA.\n")

    # ------------------------------------------------------------------
    # Plan the FPGA pipeline for a 20 FPS (50 ms) end-user latency — the
    # strictest requirement of the paper's Fig. 23 sweep.
    # ------------------------------------------------------------------
    planner = CoRunningPlanner(VX690T)
    requirement_s = 0.05
    timing = planner.plan(
        inf_spec, diag_spec, latency_requirement_s=requirement_s
    )
    design = timing.design
    print(f"WSS-NWS plan for {requirement_s * 1e3:.0f} ms requirement:")
    print(
        f"  batch size {design.batch_size}, DSP used "
        f"{design.dsp_used}/{VX690T.dsp_slices}"
    )
    print(
        f"  latency {timing.latency_s * 1e3:.1f} ms, throughput "
        f"{timing.throughput_ips:.0f} img/s"
    )
    sustainable = timing.diagnosis_fcn_sustainable(diag_spec, VX690T)
    print(f"  deferred diagnosis head fits pipeline slack: {sustainable}\n")

    # ------------------------------------------------------------------
    # How do the baseline architectures fare at the same requirement?
    # ------------------------------------------------------------------
    print(f"architecture comparison at {requirement_s * 1e3:.0f} ms:")
    for arch in ARCH_FACTORIES:
        result = best_design(
            arch,
            inf_spec,
            diag_spec,
            VX690T,
            latency_requirement_s=requirement_s,
        )
        if result is None:
            print(f"  {arch:10s}: cannot meet the requirement (x)")
        else:
            print(
                f"  {arch:10s}: {result.throughput_ips:6.0f} img/s "
                f"(batch {result.design.batch_size})"
            )


if __name__ == "__main__":
    main()
