"""Quickstart: the whole In-situ AI loop in one minute.

Builds the smallest complete deployment: unsupervised pre-training in the
Cloud, transfer learning of the inference model, node-side diagnosis, and
one incremental update driven by the flagged data.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import InSituCloud, InSituNode
from repro.data import DriftModel, ImageGenerator, IoTStream, make_dataset
from repro.diagnosis import OracleDiagnoser
from repro.hw import TX1
from repro.models import alexnet_spec, diagnosis_spec
from repro.selfsup import PermutationSet
from repro.transfer import evaluate


def main() -> None:
    rng = np.random.default_rng(0)
    generator = ImageGenerator(image_size=48, num_classes=4, rng=rng)

    # ------------------------------------------------------------------
    # Cloud: unsupervised pre-training on raw (unlabeled) IoT data, then
    # transfer learning of the inference network on limited labels.
    # ------------------------------------------------------------------
    permset = PermutationSet.generate(8, rng=rng)
    cloud = InSituCloud(
        num_classes=4,
        permset=permset,
        cost_spec=alexnet_spec(),
        rng=np.random.default_rng(1),
    )

    raw = make_dataset(
        240, generator=generator, drift=DriftModel(0.3, rng=rng), rng=rng
    ).as_unlabeled()
    perm_acc = cloud.unsupervised_pretrain(raw, epochs=4)
    print(f"unsupervised pre-training: jigsaw accuracy {perm_acc:.1%}")

    labeled = make_dataset(
        120, generator=generator, drift=DriftModel(0.3, rng=rng), rng=rng
    )
    cloud.initialize_inference(labeled, epochs=8)
    test = make_dataset(
        150, generator=generator, drift=DriftModel(0.4, rng=rng), rng=rng
    )
    print(f"initial inference accuracy: {evaluate(cloud.inference_net, test):.1%}")

    # ------------------------------------------------------------------
    # Node: deploy the model with a diagnoser; process incoming stages and
    # upload only the unrecognized data.
    # ------------------------------------------------------------------
    inf_spec = alexnet_spec()
    node = InSituNode(
        cloud.inference_net,
        OracleDiagnoser(cloud.inference_net),
        inference_spec=inf_spec,
        diagnosis_spec=diagnosis_spec(inf_spec),
        gpu=TX1,
    )

    stream = IoTStream(
        generator, scale=0.5, schedule_k=(100, 200, 400), rng=rng
    )
    for stage in stream.stages():
        report = node.process_stage(stage)
        print(
            f"stage {stage.index}: acquired {report.acquired_images}, "
            f"flagged {report.flagged_images} "
            f"({report.flagged_fraction:.0%}), "
            f"node energy {report.node_energy_j:.1f} J"
        )
        if len(report.upload_data):
            update = cloud.incremental_update(
                report.upload_data, weight_shared=True, epochs=3
            )
            node.deploy(cloud.model_state())
            print(
                f"  cloud update: {update.images_used} images, "
                f"modeled Titan-X time {update.modeled_time_s:.2f} s"
            )

    print(f"final accuracy: {evaluate(cloud.inference_net, test):.1%}")


if __name__ == "__main__":
    main()
