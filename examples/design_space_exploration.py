"""Design-space exploration with the analytical hardware models.

A tour of the hardware substrate for architects: batch-size trade-offs on
the mobile GPU (Eqs. 2-9), FPGA engine shaping, the NWS/WS/WSS comparison
at equal PE budget, and how the weight-sharing depth chosen by the learning
experiments (CONV-3) shows up as off-chip traffic savings.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.hw import (
    TX1,
    VX690T,
    NWSArch,
    TmTnEngine,
    WSArch,
    WSSArch,
)
from repro.hw import gpu as gpu_model
from repro.models import alexnet_spec, diagnosis_spec, vgg16_spec


def gpu_batch_tradeoff() -> None:
    print("== GPU batch-size trade-off (AlexNet on TX1) ==")
    net = alexnet_spec()
    print(f"{'batch':>6} {'latency ms':>11} {'img/s':>8} {'img/s/W':>8} "
          f"{'FCN share':>10}")
    for batch in (1, 2, 4, 8, 16, 32, 64):
        t = gpu_model.network_time(net, TX1, batch)
        ppw = gpu_model.perf_per_watt(net, TX1, batch)
        print(
            f"{batch:>6} {t.total_s * 1e3:>11.1f} "
            f"{t.throughput_ips:>8.1f} {ppw:>8.2f} "
            f"{t.fc_s / t.total_s:>10.1%}"
        )
    limit = gpu_model.max_batch_under_memory(net, TX1)
    print(f"memory model (Eq. 9): max diagnosis batch = {limit}\n")


def fpga_engine_shaping() -> None:
    print("== FPGA engine shaping (Tm/Tn search) ==")
    for spec in (alexnet_spec(), vgg16_spec()):
        for budget in (512, 2048):
            tuned = TmTnEngine.best_for(spec.conv_layers, budget)
            naive = TmTnEngine.from_budget(budget)
            tuned_c = sum(tuned.conv_cycles(s) for s in spec.conv_layers)
            naive_c = sum(naive.conv_cycles(s) for s in spec.conv_layers)
            print(
                f"  {spec.name:8s} @ {budget:4d} PEs: tuned "
                f"{tuned.tm}x{tuned.tn} beats square {naive.tm}x{naive.tn} "
                f"by {naive_c / tuned_c:.2f}x"
            )
    print()


def corunning_architectures() -> None:
    print("== Co-running CONV architectures @ 2628 PEs (Fig. 22) ==")
    inf = alexnet_spec()
    diag = diagnosis_spec(inf)
    archs = (
        NWSArch(2628, shape_for=inf.conv_layers),
        WSArch(2628, shape_for=inf.conv_layers),
        WSSArch(2628),
    )
    for arch in archs:
        for depth in (0, 3, 5):
            rt = arch.conv_runtime(inf, diag, VX690T, shared_depth=depth)
            print(
                f"  {arch.name:4s} CONV-{depth}: compute "
                f"{rt.compute_s * 1e3:6.2f} ms, weight access "
                f"{rt.weight_access_s * 1e3:5.2f} ms, diagnosis idle "
                f"{rt.diagnosis_idle_fraction:4.0%}"
            )
    print()


def sharing_depth_traffic() -> None:
    print("== Weight traffic saved by sharing depth (WSS) ==")
    inf = alexnet_spec()
    diag = diagnosis_spec(inf)
    arch = WSSArch(2628)
    base = arch.conv_runtime(inf, diag, VX690T, shared_depth=0)
    for depth in range(6):
        rt = arch.conv_runtime(inf, diag, VX690T, shared_depth=depth)
        saved = 1 - rt.weight_access_s / base.weight_access_s
        print(f"  CONV-{depth}: off-chip weight time saved {saved:5.1%}")


def main() -> None:
    gpu_batch_tradeoff()
    fpga_engine_shaping()
    corunning_architectures()
    sharing_depth_traffic()


if __name__ == "__main__":
    main()
