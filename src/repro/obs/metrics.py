"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately boring: plain Python accumulators, no
background threads, no wall-clock anywhere in the math.  Everything a
metric records during a seeded run derives from simulated state, so the
serialized dump (:meth:`MetricsRegistry.to_json`) is byte-identical
across reruns and worker counts — the same contract the trace's
virtual-time channel honors.

Instrumented modules look up the ambient registry via :func:`active`
(installed by :func:`use` around a run).  When no registry is active
the lookup returns ``None`` and instrumentation sites skip recording,
so un-instrumented runs pay one function call plus a None check.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "use",
]

#: Geometric 1-2.5-5 ladder spanning sub-millisecond timings to large
#: byte counts; a fixed default so identical observations always land in
#: identical buckets regardless of what else was recorded.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    base * 10.0**exp for exp in range(-4, 10) for base in (1.0, 2.5, 5.0)
)

_LabelKey = tuple[tuple[str, str], ...]


class Counter:
    """Monotonically increasing count (events, bytes, images)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def payload(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-write-wins instantaneous value (queue depth, active flows)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def payload(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram of observed values.

    Bucket boundaries are fixed at construction (upper-inclusive edges,
    plus a final implicit +inf bucket), so bucket membership is a pure
    function of the observed value — never of arrival order, wall time,
    or other observations.
    """

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "sum", "min", "max",
    )

    def __init__(
        self,
        name: str,
        labels: _LabelKey,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def payload(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Keyed store of metric instruments for one run.

    Instruments are identified by ``(kind, name, sorted labels)``;
    repeated lookups return the same object.  Asking for an existing
    name with a different kind (or a histogram with different buckets)
    is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    @staticmethod
    def _key(name: str, labels: dict[str, object]) -> tuple[str, _LabelKey]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get(self, kind: str, name: str, labels: dict[str, object], **extra):
        name_key, label_key = self._key(name, labels)
        key = (kind, name_key, label_key)
        instrument = self._instruments.get(key)
        if instrument is None:
            for other_kind in _KINDS:
                if other_kind != kind and (
                    (other_kind, name_key, label_key) in self._instruments
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as {other_kind}"
                    )
            instrument = _KINDS[kind](name, label_key, **extra)
            self._instruments[key] = instrument
        elif kind == "histogram" and extra:
            buckets = extra.get("buckets")
            if buckets is not None and tuple(
                float(b) for b in buckets
            ) != instrument.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    "buckets"
                )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Serialization (schema v1, deterministic byte-for-byte)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        entries = []
        for (kind, name, labels), instrument in sorted(
            self._instruments.items()
        ):
            entries.append(
                {
                    "kind": kind,
                    "name": name,
                    "labels": dict(labels),
                    **instrument.payload(),
                }
            )
        return {"v": 1, "metrics": entries}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


# ---------------------------------------------------------------------------
# Ambient registry: instrumentation sites record into whatever `use()`
# installed, with a single None check when observability is off.

_ACTIVE: list[MetricsRegistry] = []


def active() -> MetricsRegistry | None:
    """The innermost registry installed by :func:`use`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Install ``registry`` as the ambient sink for the enclosed block.

    ``use(None)`` is a no-op context, so call sites can thread an
    optional registry without branching.
    """
    if registry is None:
        yield None
        return
    _ACTIVE.append(registry)
    try:
        yield registry
    finally:
        _ACTIVE.pop()
