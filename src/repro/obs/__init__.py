"""repro.obs — deterministic observability: tracing, metrics, profiling.

Three pillars, one contract:

* :class:`Tracer` — typed span/event records stamped with *virtual*
  time, exported as JSONL (schema v1) or Chrome ``trace_event``.  Same
  seed -> byte-identical trace bytes, across fleet modes and worker
  counts.
* :class:`MetricsRegistry` — process-local counters/gauges/fixed-bucket
  histograms; the serialized dump is equally deterministic.
* :func:`profiled` / :func:`profile_section` — opt-in wall-time hooks on
  the hot paths, a guaranteed near-no-op while disabled.

Wall-clock access is confined to :mod:`repro.obs.clock` (lint rule
RPR011 enforces this), keeping host time out of every simulated code
path.
"""

from repro.obs.analyze import (
    Divergence,
    critical_path,
    diff_json_docs,
    explain_divergence,
    first_divergence,
    health_report,
    render_critical_path,
    render_divergence,
    render_health,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import active as active_metrics
from repro.obs.metrics import use as use_metrics
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profile_section,
    profile_stats,
    profiled,
    profiling_enabled,
    reset_profiling,
)
from repro.obs.trace import (
    TraceFormatError,
    TraceRecord,
    Tracer,
    chrome_trace,
    iter_jsonl,
    make_event,
    make_span,
    read_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Divergence",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceFormatError",
    "TraceRecord",
    "Tracer",
    "active_metrics",
    "chrome_trace",
    "critical_path",
    "diff_json_docs",
    "disable_profiling",
    "enable_profiling",
    "explain_divergence",
    "first_divergence",
    "health_report",
    "iter_jsonl",
    "make_event",
    "make_span",
    "profile_section",
    "profile_stats",
    "profiled",
    "profiling_enabled",
    "read_jsonl",
    "render_critical_path",
    "render_divergence",
    "render_health",
    "reset_profiling",
    "use_metrics",
]
