"""repro.obs — deterministic observability: tracing, metrics, profiling.

Three pillars, one contract:

* :class:`Tracer` — typed span/event records stamped with *virtual*
  time, exported as JSONL (schema v1) or Chrome ``trace_event``.  Same
  seed -> byte-identical trace bytes, across fleet modes and worker
  counts.
* :class:`MetricsRegistry` — process-local counters/gauges/fixed-bucket
  histograms; the serialized dump is equally deterministic.
* :func:`profiled` / :func:`profile_section` — opt-in wall-time hooks on
  the hot paths, a guaranteed near-no-op while disabled.

Wall-clock access is confined to :mod:`repro.obs.clock` (lint rule
RPR011 enforces this), keeping host time out of every simulated code
path.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import active as active_metrics
from repro.obs.metrics import use as use_metrics
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profile_section,
    profile_stats,
    profiled,
    profiling_enabled,
    reset_profiling,
)
from repro.obs.trace import (
    TraceRecord,
    Tracer,
    chrome_trace,
    make_event,
    make_span,
    read_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecord",
    "Tracer",
    "active_metrics",
    "chrome_trace",
    "disable_profiling",
    "enable_profiling",
    "make_event",
    "make_span",
    "profile_section",
    "profile_stats",
    "profiled",
    "profiling_enabled",
    "read_jsonl",
    "reset_profiling",
    "use_metrics",
]
