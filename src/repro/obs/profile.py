"""Opt-in profiling hooks for the hot paths (conv, im2col, batch render).

Design constraint: instrumentation must be a guaranteed no-op when
profiling is off.  The decorator's fast path is one module-global
attribute check (``_PROFILER.enabled``) before calling through — no
dict lookups, no clock reads — and the perf-smoke gate
(``benchmarks/bench_hotpath.py --obs-overhead``) fails CI if the
enabled-but-idle overhead on the conv hot path exceeds 3%.

Timings here are *host wall time* (via the sanctioned
:mod:`repro.obs.clock`), so profile stats are diagnostic only and are
never serialized into the deterministic trace/metrics channels.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager

from repro.obs.clock import perf_counter

__all__ = [
    "SectionStats",
    "disable_profiling",
    "enable_profiling",
    "profile_section",
    "profile_stats",
    "profiled",
    "profiling_enabled",
    "reset_profiling",
]


class SectionStats:
    """Aggregate wall-time stats for one named section."""

    __slots__ = ("calls", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
            "min_s": self.min_s if self.calls else 0.0,
            "max_s": self.max_s,
        }


class _Profiler:
    __slots__ = ("enabled", "stats")

    def __init__(self) -> None:
        self.enabled = False
        self.stats: dict[str, SectionStats] = {}

    def record(self, name: str, elapsed: float) -> None:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = SectionStats()
        stats.add(elapsed)


_PROFILER = _Profiler()


def enable_profiling() -> None:
    _PROFILER.enabled = True


def disable_profiling() -> None:
    _PROFILER.enabled = False


def profiling_enabled() -> bool:
    return _PROFILER.enabled


def reset_profiling() -> None:
    _PROFILER.stats.clear()


def profile_stats() -> dict[str, dict]:
    """Snapshot of accumulated stats, keyed by section name (sorted)."""
    return {
        name: _PROFILER.stats[name].as_dict()
        for name in sorted(_PROFILER.stats)
    }


def profiled(name: str):
    """Decorator: time every call under ``name`` when profiling is on.

    The disabled path is a single attribute check and a tail call —
    cheap enough to leave on the innermost hot loops permanently.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _PROFILER.enabled:
                return fn(*args, **kwargs)
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                _PROFILER.record(name, perf_counter() - start)

        return wrapper

    return decorate


@contextmanager
def profile_section(name: str):
    """Context-manager form of :func:`profiled` for inline blocks."""
    if not _PROFILER.enabled:
        yield
        return
    start = perf_counter()
    try:
        yield
    finally:
        _PROFILER.record(name, perf_counter() - start)
