"""Streaming trace analytics: critical path, first-divergence, health.

Every analysis in this module consumes a schema-v1 trace as an
*iterator* of :class:`TraceRecord` (usually :func:`iter_jsonl`), holds
state bounded by the number of actors (nodes, gateways, cloud) — never
by the number of records — and produces byte-stable output: same trace
bytes in, same report bytes out, regardless of reruns or worker counts.

Three analyses:

* :func:`critical_path` — reconstructs the span DAG from the virtual
  timeline and the flow/barrier/reconcile edges both fleet engines emit,
  then walks it as a streaming DP: each *lane* (one per node, gateway,
  and the cloud) carries the longest chain ending on that lane, and
  cross-lane *join* points (uploads into a gateway or the cloud) hand
  chains across actors exactly where the engines synchronized.  The
  result is the makespan-critical chain with per (tier, op, actor)
  attribution.
* :func:`first_divergence` / :func:`diff_json_docs` — localize the
  first divergent record between two traces (or the first divergent
  path between two JSON documents, e.g. metrics dumps), with a
  field-level attr diff and the enclosing span stack.
* :func:`health_report` — per-node straggler z-scores, upload
  starvation, per-tier utilization, and canary rollback causes.

Edge rules (see DESIGN.md §13 for the rationale):

``node/*`` and ``net.upload`` spans extend their own node lane;
uploads additionally feed the join of whatever tier terminates them
(``gateway=g`` attr -> that gateway, else the cloud).  ``net.flush``
spans join buffered uploads into the WAN hop; ``cloud.*`` spans join
uploads/flushes into the cloud lane; ``net.push`` / ``net.push-head``
spans hand the cloud (or gateway) chain back down to a node lane;
``net.reconcile`` spans depend on both their node lane and the cloud.
A predecessor chain is *feasible* for a span only if it finishes by the
span's start (the engines compute span starts as a max over exactly
these predecessors, so the binding chain is the feasible one with the
latest finish).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from repro.obs.trace import TraceRecord

__all__ = [
    "Divergence",
    "critical_path",
    "diff_json_docs",
    "explain_divergence",
    "first_divergence",
    "health_report",
    "render_critical_path",
    "render_divergence",
    "render_health",
    "render_json",
]

_ABSENT = "<absent>"

#: Join lists normally stay at O(actors): contributors are pruned as
#: soon as a consumer span absorbs them.  Traces with no consumer (e.g.
#: synthetic upload-only streams) would grow without bound, so the list
#: is capped deterministically at this size.
_JOIN_CAP = 4096


def _attr(record: TraceRecord, key: str):
    for k, v in record.attrs:
        if k == key:
            return v
    return None


def _r9(x: float) -> float:
    return round(float(x), 9)


def render_json(obj: dict) -> str:
    """The one byte-stable JSON rendering used by every analysis."""
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Critical path


@dataclass
class _Chain:
    """Longest-to-here chain state carried by one lane or join entry."""

    finish: float
    busy: float
    seq: int  # deterministic tie-break: emission order of the last span
    attribution: dict = field(default_factory=dict)

    def rank(self):
        return (self.finish, self.busy, self.seq)


def _extend(
    base: _Chain | None, record: TraceRecord, seq: int, key
) -> _Chain:
    dur = record.duration_s
    attribution = dict(base.attribution) if base is not None else {}
    attribution[key] = attribution.get(key, 0.0) + dur
    return _Chain(
        finish=record.t1,
        busy=(base.busy if base is not None else 0.0) + dur,
        seq=seq,
        attribution=attribution,
    )


def _best_feasible(candidates, t0: float) -> _Chain | None:
    """The binding predecessor: latest-finishing chain done by ``t0``."""
    best = None
    for chain in candidates:
        if chain is None or chain.finish > t0 + 1e-9:
            continue
        if best is None or chain.rank() > best.rank():
            best = chain
    return best


def _lane_of(record: TraceRecord) -> str:
    node = _attr(record, "node")
    if node is not None:
        return f"node:{node}"
    gateway = _attr(record, "gateway")
    if gateway is not None:
        return f"gw:{gateway}"
    return "cloud"


def _prune_join(entries: list, t0: float) -> None:
    """Drop contributors a consumer starting at ``t0`` has absorbed."""
    entries[:] = [c for c in entries if c.finish > t0 + 1e-9]


def critical_path(records, *, top: int = 10) -> dict:
    """Makespan-critical chain with per (tier, op, actor) attribution.

    ``records`` is any iterable of :class:`TraceRecord`; state is
    O(actors), so a streaming reader keeps the whole analysis at
    constant memory in the trace length.
    """
    lanes: dict[str, _Chain] = {}
    joins: dict[str, list[_Chain]] = {}
    t_lo = None
    t_hi = None
    n_records = 0
    n_spans = 0

    def feed(join_key: str, chain: _Chain) -> None:
        entries = joins.setdefault(join_key, [])
        entries.append(chain)
        if len(entries) > _JOIN_CAP:
            entries.sort(key=_Chain.rank, reverse=True)
            del entries[_JOIN_CAP // 2:]

    for seq, r in enumerate(records):
        n_records += 1
        t_lo = r.t0 if t_lo is None else min(t_lo, r.t0)
        end = r.t1 if r.t1 is not None else r.t0
        t_hi = end if t_hi is None else max(t_hi, end)
        if r.kind != "span":
            continue
        n_spans += 1
        lane = _lane_of(r)
        tier = _attr(r, "tier") or "-"
        key = (str(tier), f"{r.cat}.{r.name}", lane)
        gateway = _attr(r, "gateway")
        node = _attr(r, "node")

        preds: list[_Chain | None] = [lanes.get(lane)]
        feeds_key = None
        if r.cat == "net" and r.name == "upload":
            feeds_key = f"gw:{gateway}" if gateway is not None else "cloud"
        elif r.cat == "net" and r.name == "flush":
            entries = joins.get(lane, ())
            preds.extend(entries)
            feeds_key = "cloud"
        elif r.cat == "gateway":
            preds.extend(joins.get(lane, ()))
        elif r.cat == "cloud":
            entries = joins.get("cloud", ())
            preds.extend(entries)
        elif r.cat == "net" and r.name in ("push", "push-head"):
            # Model push-down: the chain crosses *from* the cloud (or
            # the gateway WAN hop) onto the receiving node's lane.
            if node is not None and gateway is not None:
                preds.append(lanes.get(f"gw:{gateway}"))
            preds.append(lanes.get("cloud"))
        elif r.cat == "net" and r.name == "reconcile":
            preds.append(lanes.get("cloud"))

        base = _best_feasible(preds, r.t0)
        chain = _extend(base, r, seq, key)
        if r.cat == "net" and r.name == "flush":
            _prune_join(joins.setdefault(lane, []), r.t0)
        elif r.cat == "cloud":
            _prune_join(joins.setdefault("cloud", []), r.t0)
        if feeds_key is not None:
            feed(feeds_key, chain)
        prev = lanes.get(lane)
        if prev is None or chain.rank() > prev.rank():
            lanes[lane] = chain

    if n_records == 0:
        return {
            "v": 1,
            "records": 0,
            "spans": 0,
            "window": {"t0": 0.0, "t1": 0.0, "makespan_s": 0.0},
            "critical": {
                "finish_s": 0.0,
                "busy_s": 0.0,
                "coverage": 0.0,
                "path": [],
            },
        }

    winner = None
    for lane in sorted(lanes):
        chain = lanes[lane]
        if winner is None or chain.rank() > winner.rank():
            winner = chain
    makespan = t_hi - t_lo
    busy = winner.busy if winner is not None else 0.0
    entries = []
    if winner is not None:
        ranked = sorted(
            winner.attribution.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for (tier, op, actor), seconds in ranked[:top]:
            entries.append(
                {
                    "tier": tier,
                    "op": op,
                    "actor": actor,
                    "busy_s": _r9(seconds),
                    "share": _r9(seconds / busy) if busy > 0 else 0.0,
                }
            )
    return {
        "v": 1,
        "records": n_records,
        "spans": n_spans,
        "window": {
            "t0": _r9(t_lo),
            "t1": _r9(t_hi),
            "makespan_s": _r9(makespan),
        },
        "critical": {
            "finish_s": _r9(winner.finish if winner else 0.0),
            "busy_s": _r9(busy),
            "coverage": _r9(busy / makespan) if makespan > 0 else 0.0,
            "path": entries,
        },
    }


def render_critical_path(result: dict) -> str:
    w = result["window"]
    c = result["critical"]
    lines = [
        f"records: {result['records']} ({result['spans']} spans)",
        f"virtual window: {w['t0']:.3f} .. {w['t1']:.3f} s "
        f"(makespan {w['makespan_s']:.3f} s)",
        f"critical chain: {c['busy_s']:.3f} s busy "
        f"({100.0 * c['coverage']:.1f}% of makespan)",
        "",
        f"{'tier':<9} {'op':<22} {'actor':<12} {'busy s':>10} {'share':>7}",
    ]
    for e in c["path"]:
        lines.append(
            f"{e['tier']:<9} {e['op']:<22} {e['actor']:<12} "
            f"{e['busy_s']:>10.3f} {100.0 * e['share']:>6.1f}%"
        )
    if not c["path"]:
        lines.append("(no spans)")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# First divergence


@dataclass
class Divergence:
    """Where two traces first part ways.

    ``index`` is the 1-based record index (blank lines don't count);
    ``kind`` is ``field-diff`` when both files have a record there and
    ``a-ended`` / ``b-ended`` when one file ran out first.
    """

    index: int
    kind: str
    line_a: str | None
    line_b: str | None
    fields: list = field(default_factory=list)
    span_stack: list = field(default_factory=list)


def _record_lines(lines):
    for line in lines:
        stripped = line.strip()
        if stripped:
            yield stripped


def _try_parse(line: str | None) -> dict | None:
    if line is None:
        return None
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    return obj if isinstance(obj, dict) else None


def _field_diff(obj_a: dict | None, obj_b: dict | None) -> list:
    if obj_a is None or obj_b is None:
        return [("<json>", obj_a, obj_b)]
    diffs = []
    for key in sorted(set(obj_a) | set(obj_b)):
        if key == "attrs":
            continue
        va = obj_a.get(key, _ABSENT)
        vb = obj_b.get(key, _ABSENT)
        if va != vb:
            diffs.append((key, va, vb))
    attrs_a = obj_a.get("attrs") or {}
    attrs_b = obj_b.get("attrs") or {}
    if isinstance(attrs_a, dict) and isinstance(attrs_b, dict):
        for key in sorted(set(attrs_a) | set(attrs_b)):
            va = attrs_a.get(key, _ABSENT)
            vb = attrs_b.get(key, _ABSENT)
            if va != vb:
                diffs.append((f"attrs.{key}", va, vb))
    return diffs


def first_divergence(lines_a, lines_b) -> Divergence | None:
    """First divergent record between two JSONL traces, or ``None``.

    Works on iterables of raw lines, streaming both sides in lockstep
    with a bounded ring of recent spans for the enclosing-span stack —
    constant memory in the trace length.
    """
    recent_spans: deque = deque(maxlen=64)
    gen_a = _record_lines(lines_a)
    gen_b = _record_lines(lines_b)
    index = 0
    while True:
        line_a = next(gen_a, None)
        line_b = next(gen_b, None)
        index += 1
        if line_a is None and line_b is None:
            return None
        if line_a == line_b:
            obj = _try_parse(line_a)
            if (
                obj is not None
                and obj.get("kind") == "span"
                and obj.get("t1") is not None
            ):
                recent_spans.append(obj)
            continue
        kind = "field-diff"
        if line_a is None:
            kind = "a-ended"
        elif line_b is None:
            kind = "b-ended"
        obj_a = _try_parse(line_a)
        obj_b = _try_parse(line_b)
        ref = obj_a if obj_a is not None else obj_b
        ref_t = ref.get("t0") if ref is not None else None
        stack = []
        if isinstance(ref_t, (int, float)):
            enclosing = [
                s
                for s in recent_spans
                if s["t0"] <= ref_t <= s["t1"]
            ]
            enclosing.sort(key=lambda s: (s["t0"], -s["t1"]))
            stack = [
                {
                    "cat": s.get("cat"),
                    "name": s.get("name"),
                    "t0": s.get("t0"),
                    "t1": s.get("t1"),
                    "attrs": s.get("attrs", {}),
                }
                for s in enclosing[-8:]
            ]
        fields = (
            _field_diff(obj_a, obj_b) if kind == "field-diff" else []
        )
        return Divergence(
            index=index,
            kind=kind,
            line_a=line_a,
            line_b=line_b,
            fields=fields,
            span_stack=stack,
        )


def diff_json_docs(obj_a, obj_b, path: str = "$"):
    """First divergent path between two JSON documents, or ``None``.

    Depth-first in sorted-key order, so the reported path is the same
    on every run.  Returns ``(path, value_a, value_b)``.
    """
    if isinstance(obj_a, dict) and isinstance(obj_b, dict):
        for key in sorted(set(obj_a) | set(obj_b)):
            if key not in obj_a:
                return (f"{path}.{key}", _ABSENT, obj_b[key])
            if key not in obj_b:
                return (f"{path}.{key}", obj_a[key], _ABSENT)
            found = diff_json_docs(obj_a[key], obj_b[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(obj_a, list) and isinstance(obj_b, list):
        for i, (va, vb) in enumerate(zip(obj_a, obj_b)):
            found = diff_json_docs(va, vb, f"{path}[{i}]")
            if found is not None:
                return found
        if len(obj_a) != len(obj_b):
            return (f"{path}.length", len(obj_a), len(obj_b))
        return None
    if obj_a != obj_b or type(obj_a) is not type(obj_b):
        return (path, obj_a, obj_b)
    return None


def render_divergence(
    div: Divergence, *, label_a: str = "a", label_b: str = "b"
) -> str:
    lines = [f"first divergence at record {div.index} ({div.kind})"]
    if div.kind == "a-ended":
        lines.append(f"  {label_a} has no record {div.index}")
    elif div.kind == "b-ended":
        lines.append(f"  {label_b} has no record {div.index}")
    for key, va, vb in div.fields:
        lines.append(f"  {key}: {json.dumps(va)} != {json.dumps(vb)}")
    if not div.fields and div.kind == "field-diff":
        lines.append("  (lines differ only in formatting)")
    if div.span_stack:
        lines.append("  enclosing spans (outermost first):")
        for s in div.span_stack:
            attrs = json.dumps(s["attrs"], sort_keys=True)
            lines.append(
                f"    {s['cat']}.{s['name']} "
                f"[{s['t0']:.6f} .. {s['t1']:.6f}] {attrs}"
            )
    if div.line_a is not None:
        lines.append(f"  {label_a}: {div.line_a}")
    if div.line_b is not None:
        lines.append(f"  {label_b}: {div.line_b}")
    return "\n".join(lines) + "\n"


def explain_divergence(
    text_a: str, text_b: str, *, label_a: str = "a", label_b: str = "b"
) -> str | None:
    """Rendered first-divergence report for two traces, or ``None``.

    The assertion-friendly wrapper: test suites compare trace bytes and,
    on mismatch, fail with this report instead of a bare ``a != b``.
    """
    if text_a == text_b:
        return None
    div = first_divergence(text_a.splitlines(), text_b.splitlines())
    if div is None:
        return None
    return render_divergence(div, label_a=label_a, label_b=label_b)


# ---------------------------------------------------------------------------
# Fleet health


def health_report(
    records, *, z_threshold: float = 2.0, metrics: dict | None = None
) -> dict:
    """Straggler, starvation, utilization, and rollback-cause report.

    Deterministic by construction: every statistic is an exact function
    of the trace bytes (z-scores use the population standard deviation
    over per-node mean compute durations — no sampling, no host state),
    so the report is byte-identical whenever the trace is.
    """
    node_compute: dict = {}
    node_upload: dict = {}
    tier_stats: dict = {}
    rollbacks: list = []
    t_lo = None
    t_hi = None
    n_records = 0
    total_upload_bytes = 0

    for r in records:
        n_records += 1
        t_lo = r.t0 if t_lo is None else min(t_lo, r.t0)
        end = r.t1 if r.t1 is not None else r.t0
        t_hi = end if t_hi is None else max(t_hi, end)
        tier = _attr(r, "tier")
        if tier is not None and r.kind == "span":
            row = tier_stats.setdefault(
                str(tier), {"spans": 0, "busy_s": 0.0, "bytes": 0}
            )
            row["spans"] += 1
            row["busy_s"] += r.duration_s
            b = _attr(r, "bytes")
            if b:
                row["bytes"] += int(b)
        node = _attr(r, "node")
        if r.kind == "span" and node is not None:
            if r.cat == "node":
                row = node_compute.setdefault(
                    int(node), {"spans": 0, "busy_s": 0.0}
                )
                row["spans"] += 1
                row["busy_s"] += r.duration_s
            elif r.cat == "net" and r.name == "upload":
                row = node_upload.setdefault(
                    int(node), {"spans": 0, "busy_s": 0.0, "bytes": 0}
                )
                row["spans"] += 1
                row["busy_s"] += r.duration_s
                b = _attr(r, "bytes")
                if b:
                    row["bytes"] += int(b)
                    total_upload_bytes += int(b)
        if (
            r.kind == "event"
            and r.cat == "cloud"
            and r.name == "decision"
            and _attr(r, "updated")
            and not _attr(r, "promoted")
        ):
            rollbacks.append(
                {
                    "stage": _attr(r, "stage"),
                    "t": _r9(r.t0),
                    "cause": _attr(r, "cause") or "unknown",
                    "delta": _attr(r, "delta"),
                }
            )

    window = (t_hi - t_lo) if n_records else 0.0
    means = {
        n: row["busy_s"] / row["spans"] for n, row in node_compute.items()
    }
    mu = sum(means.values()) / len(means) if means else 0.0
    var = (
        sum((m - mu) ** 2 for m in means.values()) / len(means)
        if means
        else 0.0
    )
    sigma = var**0.5

    nodes = []
    starved = []
    for n in sorted(set(node_compute) | set(node_upload)):
        compute = node_compute.get(n, {"spans": 0, "busy_s": 0.0})
        upload = node_upload.get(n, {"spans": 0, "busy_s": 0.0, "bytes": 0})
        z = (means[n] - mu) / sigma if n in means and sigma > 1e-12 else 0.0
        is_starved = (
            compute["spans"] > 0
            and upload["bytes"] == 0
            and total_upload_bytes > 0
        )
        if is_starved:
            starved.append(n)
        nodes.append(
            {
                "node": n,
                "compute_spans": compute["spans"],
                "compute_busy_s": _r9(compute["busy_s"]),
                "mean_stage_s": _r9(means.get(n, 0.0)),
                "z": _r9(z),
                "straggler": bool(z >= z_threshold),
                "upload_bytes": upload["bytes"],
                "upload_busy_s": _r9(upload["busy_s"]),
                "starved": is_starved,
            }
        )

    tiers = []
    for tier in sorted(tier_stats):
        row = tier_stats[tier]
        tiers.append(
            {
                "tier": tier,
                "spans": row["spans"],
                "busy_s": _r9(row["busy_s"]),
                "bytes": row["bytes"],
                "utilization": _r9(row["busy_s"] / window)
                if window > 0
                else 0.0,
            }
        )

    ledger = []
    if metrics is not None:
        for entry in metrics.get("metrics", ()):
            name = entry.get("name", "")
            if "bytes" in name or name.startswith("topology."):
                ledger.append(
                    {
                        "name": name,
                        "labels": entry.get("labels", {}),
                        "value": entry.get("value"),
                    }
                )

    return {
        "v": 1,
        "records": n_records,
        "window": {
            "t0": _r9(t_lo if n_records else 0.0),
            "t1": _r9(t_hi if n_records else 0.0),
            "span_s": _r9(window),
        },
        "fleet": {
            "nodes": len(nodes),
            "mean_stage_s": _r9(mu),
            "std_stage_s": _r9(sigma),
            "z_threshold": _r9(z_threshold),
            "stragglers": [n["node"] for n in nodes if n["straggler"]],
            "starved": starved,
            "upload_bytes": total_upload_bytes,
        },
        "nodes": nodes,
        "tiers": tiers,
        "rollbacks": rollbacks,
        "ledger": ledger,
    }


def render_health(report: dict) -> str:
    f = report["fleet"]
    w = report["window"]
    lines = [
        f"records: {report['records']}, nodes: {f['nodes']}, "
        f"window: {w['span_s']:.3f} s",
        f"stage duration: mean {f['mean_stage_s']:.3f} s, "
        f"std {f['std_stage_s']:.3f} s (z threshold "
        f"{f['z_threshold']:.1f})",
        f"stragglers: {f['stragglers'] or 'none'}   "
        f"starved: {f['starved'] or 'none'}   "
        f"rollbacks: {len(report['rollbacks'])}",
        "",
        f"{'node':<6} {'stages':>6} {'mean s':>9} {'z':>7} "
        f"{'up bytes':>10} {'flags':<18}",
    ]
    for n in report["nodes"]:
        flags = []
        if n["straggler"]:
            flags.append("STRAGGLER")
        if n["starved"]:
            flags.append("STARVED")
        lines.append(
            f"{n['node']:<6} {n['compute_spans']:>6} "
            f"{n['mean_stage_s']:>9.3f} {n['z']:>7.2f} "
            f"{n['upload_bytes']:>10} {' '.join(flags):<18}".rstrip()
        )
    if report["tiers"]:
        lines += [
            "",
            f"{'tier':<10} {'spans':>6} {'busy s':>10} {'bytes':>12} "
            f"{'util':>6}",
        ]
        tier_order = {"edge": 0, "gateway": 1, "cloud": 2}
        for row in sorted(
            report["tiers"],
            key=lambda r: (tier_order.get(r["tier"], 99), r["tier"]),
        ):
            lines.append(
                f"{row['tier']:<10} {row['spans']:>6} "
                f"{row['busy_s']:>10.3f} {row['bytes']:>12} "
                f"{100.0 * row['utilization']:>5.1f}%"
            )
    if report["rollbacks"]:
        lines += ["", "rollbacks:"]
        for rb in report["rollbacks"]:
            delta = rb["delta"]
            delta_txt = f" delta={delta:+.6f}" if delta is not None else ""
            lines.append(
                f"  stage {rb['stage']} at {rb['t']:.3f} s: "
                f"{rb['cause']}{delta_txt}"
            )
    if report["ledger"]:
        lines += ["", "ledger totals:"]
        for entry in report["ledger"]:
            labels = json.dumps(entry["labels"], sort_keys=True)
            lines.append(
                f"  {entry['name']} {labels} = {entry['value']}"
            )
    return "\n".join(lines) + "\n"
