"""Structured tracing: typed span/event records with deterministic export.

Schema v1 (one JSON object per line, keys sorted):

``{"attrs": {...}, "cat": "...", "kind": "span"|"event", "name": "...",
"t0": <virtual s>, "t1": <virtual s>|null, "v": 1}``

Timestamps are **virtual** seconds: lockstep spans are stamped from the
reconstructed stage timeline, event-mode spans from the kernel clock
(``Simulator.now``).  Two runs at the same seed therefore produce
byte-identical JSONL — that is a tested invariant, across lockstep,
event mode, and any ``workers=N``.

Wall-clock stamps are the one legal nondeterminism: a tracer built with
``wall_clock=True`` stamps each record's emission with
:func:`repro.obs.clock.wall_time`, but those stamps live in a separate
optional channel (``channel="wall"``) and never contaminate the virtual
channel's bytes.

The Chrome exporter emits the ``trace_event`` JSON array format —
complete (``ph: "X"``) and instant (``ph: "i"``) events in microseconds
— which ``chrome://tracing`` and Perfetto open directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.clock import wall_time

__all__ = [
    "TraceFormatError",
    "TraceRecord",
    "Tracer",
    "chrome_trace",
    "iter_jsonl",
    "make_event",
    "make_span",
    "read_jsonl",
]


class TraceFormatError(ValueError):
    """A trace file violates schema v1; message is ``path:line:``-anchored."""

_Attrs = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class TraceRecord:
    """One span (``t1`` set) or instant event (``t1`` None).

    Frozen and tuple-keyed so records pickle cleanly across the fleet's
    spawn-based worker pool and merge deterministically in the parent.
    """

    kind: str  # "span" | "event"
    cat: str
    name: str
    t0: float
    t1: float | None
    attrs: _Attrs = ()
    wall: float | None = None  # emission wall stamp; wall channel only

    def to_obj(self, *, channel: str = "virtual") -> dict:
        obj = {
            "v": 1,
            "kind": self.kind,
            "cat": self.cat,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": dict(self.attrs),
        }
        if channel == "wall":
            obj["wall"] = self.wall
        return obj

    def to_json(self, *, channel: str = "virtual") -> str:
        return json.dumps(
            self.to_obj(channel=channel), sort_keys=True, separators=(",", ":")
        )

    @property
    def duration_s(self) -> float:
        return 0.0 if self.t1 is None else self.t1 - self.t0


def _freeze_attrs(attrs: dict[str, object]) -> _Attrs:
    return tuple(sorted(attrs.items()))


def make_span(
    cat: str, name: str, t0: float, t1: float, **attrs
) -> TraceRecord:
    """Build a span record without a :class:`Tracer` (worker processes)."""
    if t1 < t0:
        raise ValueError(f"span {cat}/{name}: t1 {t1} precedes t0 {t0}")
    return TraceRecord(
        kind="span",
        cat=cat,
        name=name,
        t0=float(t0),
        t1=float(t1),
        attrs=_freeze_attrs(attrs),
    )


def make_event(cat: str, name: str, t: float, **attrs) -> TraceRecord:
    """Build an instant-event record without a :class:`Tracer`."""
    return TraceRecord(
        kind="event",
        cat=cat,
        name=name,
        t0=float(t),
        t1=None,
        attrs=_freeze_attrs(attrs),
    )


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` objects for one run.

    ``enabled=False`` makes every emit a cheap no-op returning ``None``,
    so instrumented code can hold a disabled tracer instead of branching
    on ``tracer is not None`` everywhere.
    """

    enabled: bool = True
    wall_clock: bool = False
    records: list[TraceRecord] = field(default_factory=list)

    def span(
        self, cat: str, name: str, t0: float, t1: float, **attrs
    ) -> TraceRecord | None:
        if not self.enabled:
            return None
        record = make_span(cat, name, t0, t1, **attrs)
        if self.wall_clock:
            record = TraceRecord(
                kind=record.kind,
                cat=record.cat,
                name=record.name,
                t0=record.t0,
                t1=record.t1,
                attrs=record.attrs,
                wall=wall_time(),
            )
        self.records.append(record)
        return record

    def event(
        self, cat: str, name: str, t: float, **attrs
    ) -> TraceRecord | None:
        if not self.enabled:
            return None
        record = make_event(cat, name, t, **attrs)
        if self.wall_clock:
            record = TraceRecord(
                kind=record.kind,
                cat=record.cat,
                name=record.name,
                t0=record.t0,
                t1=None,
                attrs=record.attrs,
                wall=wall_time(),
            )
        self.records.append(record)
        return record

    def extend(self, records) -> None:
        """Merge records emitted elsewhere (worker-process buffers)."""
        if self.enabled:
            self.records.extend(records)

    def clear(self) -> None:
        self.records.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, *, channel: str = "virtual") -> str:
        if channel not in ("virtual", "wall"):
            raise ValueError("channel must be 'virtual' or 'wall'")
        return "".join(
            r.to_json(channel=channel) + "\n" for r in self.records
        )

    def write_jsonl(self, path, *, channel: str = "virtual") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl(channel=channel))

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(self.records), fh, sort_keys=True)
            fh.write("\n")


def _tid(record: TraceRecord) -> int:
    for key, value in record.attrs:
        if key == "node":
            return int(value)
    return 0


def chrome_trace(records) -> dict:
    """Records -> Chrome ``trace_event`` object (times in microseconds).

    Rows (tids) map to node ids where a record carries a ``node`` attr;
    cloud/link records land on tid 0.
    """
    events = []
    for r in records:
        base = {
            "name": r.name,
            "cat": r.cat,
            "ts": r.t0 * 1e6,
            "pid": 0,
            "tid": _tid(r),
            "args": dict(r.attrs),
        }
        if r.kind == "span":
            events.append({**base, "ph": "X", "dur": (r.t1 - r.t0) * 1e6})
        else:
            events.append({**base, "ph": "i", "s": "t"})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_REQUIRED_KEYS = ("kind", "cat", "name", "t0", "t1")


def _parse_line(path, line_no: int, line: str) -> TraceRecord:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as err:
        raise TraceFormatError(
            f"{path}:{line_no}: malformed trace line "
            f"({err.msg} at column {err.colno})"
        ) from None
    if not isinstance(obj, dict):
        raise TraceFormatError(
            f"{path}:{line_no}: trace line is not a JSON object"
        )
    if obj.get("v") != 1:
        raise TraceFormatError(
            f"{path}:{line_no}: unsupported trace schema "
            f"version {obj.get('v')!r}"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in obj]
    if missing:
        raise TraceFormatError(
            f"{path}:{line_no}: trace line lacks required "
            f"key(s) {', '.join(missing)}"
        )
    return TraceRecord(
        kind=obj["kind"],
        cat=obj["cat"],
        name=obj["name"],
        t0=obj["t0"],
        t1=obj["t1"],
        attrs=_freeze_attrs(obj.get("attrs", {})),
        wall=obj.get("wall"),
    )


def iter_jsonl(path):
    """Stream a schema-v1 JSONL trace one record at a time.

    Constant memory: never materializes the record list, so analyses
    built on it scale to arbitrarily long traces.  Malformed lines
    (bad JSON, wrong schema version, missing keys) raise
    :class:`TraceFormatError` anchored as ``path:line_no: message``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            yield _parse_line(path, line_no, line)


def read_jsonl(path) -> list[TraceRecord]:
    """Load a schema-v1 JSONL trace back into records."""
    return list(iter_jsonl(path))
