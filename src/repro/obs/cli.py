"""``python -m repro obs`` — summarize, analyze, and convert traces.

Subcommands:

``summarize TRACE``
    One-screen timeline summary: record counts, the virtual-time
    window, per-category busy time, and per-node activity.  Traces from
    hierarchical-topology runs additionally group the timeline by tier
    (edge / gateway / cloud, from the records' ``tier`` attribute), and
    scenario-engine traces group it by class-incremental phase (from the
    records' ``phase`` attribute).

``critical-path TRACE [--top K] [--json]``
    Makespan-critical chain through the span DAG, attributed per
    (tier, op, actor) as a sorted bottleneck table.

``diff A B``
    First-divergence localization between two traces (record index,
    field-level attr diff, enclosing span stack) or two JSON documents
    (metrics dumps, summaries — first divergent path).  Exits 1 when
    the inputs diverge, 0 when identical.

``health TRACE [--z-threshold Z] [--metrics METRICS] [-o OUT] [--json]``
    Fleet health report: per-node straggler z-scores, upload
    starvation, per-tier utilization, canary rollback causes.

``convert TRACE -o OUT [--format chrome]``
    Re-export a schema-v1 JSONL trace, e.g. to the Chrome
    ``trace_event`` format that ``chrome://tracing`` / Perfetto open.

Every analysis consumes the trace through the streaming reader
(:func:`repro.obs.trace.iter_jsonl`): memory stays constant in the
trace length, and malformed lines surface as ``path:line:``-anchored
errors instead of stack traces.
"""

from __future__ import annotations

import argparse
import json
from collections import defaultdict

from repro.obs.analyze import (
    critical_path,
    diff_json_docs,
    first_divergence,
    health_report,
    render_critical_path,
    render_divergence,
    render_health,
    render_json,
)
from repro.obs.trace import (
    TraceFormatError,
    TraceRecord,
    chrome_trace,
    iter_jsonl,
)

__all__ = ["main", "summarize"]


def _attr(record: TraceRecord, key: str):
    for k, v in record.attrs:
        if k == key:
            return v
    return None


def summarize(records, *, limit: int = 12) -> str:
    """Render a one-screen text summary of a trace.

    ``records`` is any iterable of :class:`TraceRecord` — a list or the
    streaming reader — consumed in a single pass.
    """
    n_spans = 0
    n_events = 0
    t_lo = None
    t_hi = None

    by_cat: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    by_node: dict[int, dict] = defaultdict(lambda: {"spans": 0, "busy": 0.0})
    by_tier: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    by_phase: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    for r in records:
        t_lo = r.t0 if t_lo is None else min(t_lo, r.t0)
        end = r.t1 if r.t1 is not None else r.t0
        t_hi = end if t_hi is None else max(t_hi, end)
        row = by_cat[f"{r.cat}.{r.name}"]
        if r.kind == "span":
            n_spans += 1
            row["spans"] += 1
            row["busy"] += r.duration_s
        else:
            n_events += 1
            row["events"] += 1
        node = _attr(r, "node")
        if node is not None and r.kind == "span":
            by_node[int(node)]["spans"] += 1
            by_node[int(node)]["busy"] += r.duration_s
        tier = _attr(r, "tier")
        if tier is not None:
            trow = by_tier[str(tier)]
            if r.kind == "span":
                trow["spans"] += 1
                trow["busy"] += r.duration_s
            else:
                trow["events"] += 1
        phase = _attr(r, "phase")
        if phase is not None:
            prow = by_phase[str(phase)]
            if r.kind == "span":
                prow["spans"] += 1
                prow["busy"] += r.duration_s
            else:
                prow["events"] += 1

    total = n_spans + n_events
    if total == 0:
        return "empty trace (0 records)\n"

    lines = [
        f"records: {total} ({n_spans} spans, {n_events} events)",
        f"virtual window: {t_lo:.3f} .. {t_hi:.3f} s "
        f"({t_hi - t_lo:.3f} s)",
        "",
        f"{'category':<24} {'spans':>6} {'events':>7} {'busy s':>10}",
    ]
    ranked = sorted(
        by_cat.items(), key=lambda kv: (-kv[1]["busy"], kv[0])
    )
    for cat, row in ranked[:limit]:
        lines.append(
            f"{cat:<24} {row['spans']:>6} {row['events']:>7} "
            f"{row['busy']:>10.3f}"
        )
    if len(ranked) > limit:
        lines.append(f"... {len(ranked) - limit} more categories")
    if by_tier:
        # Tier tags appear only on hierarchical-topology traces; flat
        # traces keep the flat summary layout untouched.
        lines += [
            "",
            f"{'tier':<10} {'spans':>6} {'events':>7} {'busy s':>10}",
        ]
        tier_order = {"edge": 0, "gateway": 1, "cloud": 2}
        for tier in sorted(
            by_tier, key=lambda t: (tier_order.get(t, 99), t)
        ):
            row = by_tier[tier]
            lines.append(
                f"{tier:<10} {row['spans']:>6} {row['events']:>7} "
                f"{row['busy']:>10.3f}"
            )
    if by_phase:
        # Phase tags appear only on scenario-engine traces (class-
        # incremental phases); other traces keep the layout untouched.
        lines += [
            "",
            f"{'phase':<10} {'spans':>6} {'events':>7} {'busy s':>10}",
        ]
        for phase in sorted(by_phase):
            row = by_phase[phase]
            lines.append(
                f"{phase:<10} {row['spans']:>6} {row['events']:>7} "
                f"{row['busy']:>10.3f}"
            )
    if by_node:
        lines += ["", f"{'node':<6} {'spans':>6} {'busy s':>10} {'busy %':>8}"]
        window = max(t_hi - t_lo, 1e-12)
        for node in sorted(by_node):
            row = by_node[node]
            lines.append(
                f"{node:<6} {row['spans']:>6} {row['busy']:>10.3f} "
                f"{100.0 * row['busy'] / window:>7.1f}%"
            )
    return "\n".join(lines) + "\n"


def _looks_like_json_doc(path: str) -> bool:
    """A file opening with ``{``/``[`` is a JSON document, not JSONL.

    Trace lines are objects too, but schema-v1 traces are exactly one
    compact object per line while metrics dumps and summaries are
    indented multi-line documents — the second line disambiguates.
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline().strip()
        second = fh.readline()
    if not first.startswith(("{", "[")):
        return False
    try:
        json.loads(first)
    except json.JSONDecodeError:
        return True  # multi-line document: first line alone won't parse
    return not second.strip()  # whole doc on one line with nothing after


def _run_diff(path_a: str, path_b: str) -> int:
    if _looks_like_json_doc(path_a) and _looks_like_json_doc(path_b):
        with open(path_a, "r", encoding="utf-8") as fh:
            obj_a = json.load(fh)
        with open(path_b, "r", encoding="utf-8") as fh:
            obj_b = json.load(fh)
        found = diff_json_docs(obj_a, obj_b)
        if found is None:
            print(f"identical: {path_a} == {path_b}")
            return 0
        path, va, vb = found
        print(f"first divergence at {path}")
        print(f"  {path_a}: {json.dumps(va, sort_keys=True)}")
        print(f"  {path_b}: {json.dumps(vb, sort_keys=True)}")
        return 1
    with open(path_a, "r", encoding="utf-8") as fh_a:
        with open(path_b, "r", encoding="utf-8") as fh_b:
            div = first_divergence(fh_a, fh_b)
    if div is None:
        print(f"identical: {path_a} == {path_b}")
        return 0
    print(
        render_divergence(div, label_a=path_a, label_b=path_b), end=""
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description=(
            "Summarize, analyze, or convert repro trace files (schema v1)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="one-screen timeline summary")
    p_sum.add_argument("trace", help="JSONL trace file (schema v1)")
    p_sum.add_argument(
        "--limit",
        type=int,
        default=12,
        help="max category rows to print (default: 12)",
    )

    p_cp = sub.add_parser(
        "critical-path", help="makespan-critical chain attribution"
    )
    p_cp.add_argument("trace", help="JSONL trace file (schema v1)")
    p_cp.add_argument(
        "--top",
        type=int,
        default=10,
        help="max bottleneck rows (default: 10)",
    )
    p_cp.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )

    p_diff = sub.add_parser(
        "diff", help="first divergence between two traces or JSON dumps"
    )
    p_diff.add_argument("a", help="first trace / JSON file")
    p_diff.add_argument("b", help="second trace / JSON file")

    p_health = sub.add_parser("health", help="fleet health report")
    p_health.add_argument("trace", help="JSONL trace file (schema v1)")
    p_health.add_argument(
        "--z-threshold",
        type=float,
        default=2.0,
        help="straggler z-score threshold (default: 2.0)",
    )
    p_health.add_argument(
        "--metrics",
        help="metrics JSON dump to fold ledger totals in from",
    )
    p_health.add_argument(
        "-o", "--out", help="also write the JSON report to this path"
    )
    p_health.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )

    p_conv = sub.add_parser("convert", help="re-export a trace file")
    p_conv.add_argument("trace", help="JSONL trace file (schema v1)")
    p_conv.add_argument(
        "-o", "--out", required=True, help="output file path"
    )
    p_conv.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="output format (default: chrome trace_event)",
    )

    args = parser.parse_args(argv)
    if args.command == "diff":
        return _run_diff(args.a, args.b)
    try:
        if args.command == "summarize":
            if args.limit < 1:
                parser.error("--limit must be at least 1")
            print(
                summarize(iter_jsonl(args.trace), limit=args.limit),
                end="",
            )
            return 0
        if args.command == "critical-path":
            if args.top < 1:
                parser.error("--top must be at least 1")
            result = critical_path(iter_jsonl(args.trace), top=args.top)
            if args.json:
                print(render_json(result), end="")
            else:
                print(render_critical_path(result), end="")
            return 0
        if args.command == "health":
            metrics = None
            if args.metrics:
                with open(args.metrics, "r", encoding="utf-8") as fh:
                    metrics = json.load(fh)
            report = health_report(
                iter_jsonl(args.trace),
                z_threshold=args.z_threshold,
                metrics=metrics,
            )
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(render_json(report))
            if args.json:
                print(render_json(report), end="")
            else:
                print(render_health(report), end="")
            return 0
        # convert: the chrome exporter needs the full record list; the
        # jsonl re-export streams.
        if args.format == "chrome":
            records = list(iter_jsonl(args.trace))
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(chrome_trace(records), fh, sort_keys=True)
                fh.write("\n")
            count = len(records)
        else:
            count = 0
            with open(args.out, "w", encoding="utf-8") as fh:
                for record in iter_jsonl(args.trace):
                    fh.write(record.to_json() + "\n")
                    count += 1
        print(f"wrote {args.format} trace: {args.out} ({count} records)")
        return 0
    except TraceFormatError as err:
        print(f"error: {err}")
        return 1
