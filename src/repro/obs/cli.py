"""``python -m repro obs`` — summarize and convert trace files.

Subcommands:

``summarize TRACE``
    One-screen timeline summary: record counts, the virtual-time
    window, per-category busy time, and per-node activity.  Traces from
    hierarchical-topology runs additionally group the timeline by tier
    (edge / gateway / cloud, from the records' ``tier`` attribute), and
    scenario-engine traces group it by class-incremental phase (from the
    records' ``phase`` attribute).

``convert TRACE -o OUT [--format chrome]``
    Re-export a schema-v1 JSONL trace, e.g. to the Chrome
    ``trace_event`` format that ``chrome://tracing`` / Perfetto open.
"""

from __future__ import annotations

import argparse
import json
from collections import defaultdict

from repro.obs.trace import TraceRecord, chrome_trace, read_jsonl

__all__ = ["main", "summarize"]


def _attr(record: TraceRecord, key: str):
    for k, v in record.attrs:
        if k == key:
            return v
    return None


def summarize(records: list[TraceRecord], *, limit: int = 12) -> str:
    """Render a one-screen text summary of a trace."""
    if not records:
        return "empty trace (0 records)\n"
    spans = [r for r in records if r.kind == "span"]
    events = [r for r in records if r.kind == "event"]
    t_lo = min(r.t0 for r in records)
    t_hi = max(r.t1 if r.t1 is not None else r.t0 for r in records)

    by_cat: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    by_node: dict[int, dict] = defaultdict(lambda: {"spans": 0, "busy": 0.0})
    by_tier: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    by_phase: dict[str, dict] = defaultdict(
        lambda: {"spans": 0, "events": 0, "busy": 0.0}
    )
    for r in records:
        row = by_cat[f"{r.cat}.{r.name}"]
        if r.kind == "span":
            row["spans"] += 1
            row["busy"] += r.duration_s
        else:
            row["events"] += 1
        node = _attr(r, "node")
        if node is not None and r.kind == "span":
            by_node[int(node)]["spans"] += 1
            by_node[int(node)]["busy"] += r.duration_s
        tier = _attr(r, "tier")
        if tier is not None:
            trow = by_tier[str(tier)]
            if r.kind == "span":
                trow["spans"] += 1
                trow["busy"] += r.duration_s
            else:
                trow["events"] += 1
        phase = _attr(r, "phase")
        if phase is not None:
            prow = by_phase[str(phase)]
            if r.kind == "span":
                prow["spans"] += 1
                prow["busy"] += r.duration_s
            else:
                prow["events"] += 1

    lines = [
        f"records: {len(records)} ({len(spans)} spans, {len(events)} events)",
        f"virtual window: {t_lo:.3f} .. {t_hi:.3f} s "
        f"({t_hi - t_lo:.3f} s)",
        "",
        f"{'category':<24} {'spans':>6} {'events':>7} {'busy s':>10}",
    ]
    ranked = sorted(
        by_cat.items(), key=lambda kv: (-kv[1]["busy"], kv[0])
    )
    for cat, row in ranked[:limit]:
        lines.append(
            f"{cat:<24} {row['spans']:>6} {row['events']:>7} "
            f"{row['busy']:>10.3f}"
        )
    if len(ranked) > limit:
        lines.append(f"... {len(ranked) - limit} more categories")
    if by_tier:
        # Tier tags appear only on hierarchical-topology traces; flat
        # traces keep the flat summary layout untouched.
        lines += [
            "",
            f"{'tier':<10} {'spans':>6} {'events':>7} {'busy s':>10}",
        ]
        tier_order = {"edge": 0, "gateway": 1, "cloud": 2}
        for tier in sorted(
            by_tier, key=lambda t: (tier_order.get(t, 99), t)
        ):
            row = by_tier[tier]
            lines.append(
                f"{tier:<10} {row['spans']:>6} {row['events']:>7} "
                f"{row['busy']:>10.3f}"
            )
    if by_phase:
        # Phase tags appear only on scenario-engine traces (class-
        # incremental phases); other traces keep the layout untouched.
        lines += [
            "",
            f"{'phase':<10} {'spans':>6} {'events':>7} {'busy s':>10}",
        ]
        for phase in sorted(by_phase):
            row = by_phase[phase]
            lines.append(
                f"{phase:<10} {row['spans']:>6} {row['events']:>7} "
                f"{row['busy']:>10.3f}"
            )
    if by_node:
        lines += ["", f"{'node':<6} {'spans':>6} {'busy s':>10} {'busy %':>8}"]
        window = max(t_hi - t_lo, 1e-12)
        for node in sorted(by_node):
            row = by_node[node]
            lines.append(
                f"{node:<6} {row['spans']:>6} {row['busy']:>10.3f} "
                f"{100.0 * row['busy'] / window:>7.1f}%"
            )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Summarize or convert repro trace files (schema v1).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="one-screen timeline summary")
    p_sum.add_argument("trace", help="JSONL trace file (schema v1)")
    p_sum.add_argument(
        "--limit",
        type=int,
        default=12,
        help="max category rows to print (default: 12)",
    )

    p_conv = sub.add_parser("convert", help="re-export a trace file")
    p_conv.add_argument("trace", help="JSONL trace file (schema v1)")
    p_conv.add_argument(
        "-o", "--out", required=True, help="output file path"
    )
    p_conv.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="output format (default: chrome trace_event)",
    )

    args = parser.parse_args(argv)
    records = read_jsonl(args.trace)
    if args.command == "summarize":
        if args.limit < 1:
            parser.error("--limit must be at least 1")
        print(summarize(records, limit=args.limit), end="")
        return 0
    if args.format == "chrome":
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(records), fh, sort_keys=True)
            fh.write("\n")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(record.to_json() + "\n")
    print(f"wrote {args.format} trace: {args.out} ({len(records)} records)")
    return 0
