"""The one sanctioned wall-clock source in the codebase.

The determinism contract bans wall-clock reads inside ``src/repro``
(lint rule RPR011): simulated components take their time from the event
kernel's virtual clock, so trajectories stay bit-identical across
machines and reruns.  Observability is the deliberate exception — host
timings for profiling and reporting are *useful*, they just must never
feed back into simulated state.  Every such read routes through this
module, which is the only place RPR011 permits the stdlib timing calls.

Keeping the exception to one tiny module makes the contract auditable:
``grep`` for ``obs.clock`` imports and you have the complete list of
wall-time consumers.
"""

from __future__ import annotations

import time as _time

__all__ = ["perf_counter", "perf_counter_ns", "wall_time"]


def perf_counter() -> float:
    """Monotonic high-resolution timer for durations (seconds)."""
    return _time.perf_counter()


def perf_counter_ns() -> int:
    """Monotonic high-resolution timer for durations (nanoseconds)."""
    return _time.perf_counter_ns()


def wall_time() -> float:
    """Epoch wall time in seconds, for the optional trace wall channel."""
    return _time.time()
