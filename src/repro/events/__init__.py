"""Discrete-event simulation kernel shared by every virtual-time model.

``repro.events`` is the one event engine in the repo: the hardware
pipeline simulator (:mod:`repro.hw.eventsim`), the shared-backhaul flow
model (:mod:`repro.fleet.uplink`), and the asynchronous fleet simulation
(:mod:`repro.fleet.async_sim`) all schedule on the same kernel.
"""

from repro.events.flows import FlowLink, FlowRecord, max_min_rates
from repro.events.kernel import Event, Process, Resource, Simulator, Store

__all__ = [
    "Event",
    "FlowLink",
    "FlowRecord",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "max_min_rates",
]
