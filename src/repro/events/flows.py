"""Dynamic fluid flows over a shared bottleneck link.

The fleet's lockstep uplink model starts every stage's transfers at the
same instant and advances completion-to-completion.  Real fleets are not
that polite: flows *join and leave mid-transfer* as nodes finish epochs at
their own pace.  :class:`FlowLink` models exactly that on the event
kernel — at every flow arrival and completion the max-min fair rate
allocation is recomputed over the flows currently on the link, each flow
additionally capped by its own access-link rate.

The rate allocator (:func:`max_min_rates`, progressive filling) is the
single implementation shared by this dynamic model and the lockstep
:class:`~repro.fleet.uplink.SharedUplink`, so the two agree whenever all
flows happen to start simultaneously.

Every reallocation is recorded in :attr:`FlowLink.rate_history`, which is
what the property tests interrogate: at no instant may the allocated
rates exceed the bottleneck capacity or any flow's own cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.kernel import Event, Simulator

__all__ = ["FlowRecord", "FlowLink", "max_min_rates"]

#: residual bits below which a flow counts as drained (well under one
#: byte, well over accumulated float error across reallocations)
_EPS_BITS = 1e-3


def max_min_rates(caps: list[float], capacity: float) -> list[float]:
    """Max-min fair allocation of ``capacity`` across flows with rate caps.

    Progressive filling: flows whose cap is below the equal share keep
    their cap; the leftover is re-split among the rest.
    """
    rates = [0.0] * len(caps)
    remaining = capacity
    active = list(range(len(caps)))
    while active:
        share = remaining / len(active)
        bottlenecked = [i for i in active if caps[i] <= share]
        if not bottlenecked:
            for i in active:
                rates[i] = share
            break
        for i in bottlenecked:
            rates[i] = caps[i]
            remaining -= caps[i]
        active = [i for i in active if caps[i] > share]
    return rates


@dataclass(frozen=True)
class FlowRecord:
    """Completed-transfer receipt delivered as the flow event's value.

    A cancelled flow (node crash mid-upload) still delivers a record so
    the waiting process wakes, but with ``cancelled=True`` and
    ``bytes_transferred`` holding only what actually crossed the link
    before the cut — ``num_bytes`` keeps the intended size.
    """

    tag: object
    num_bytes: int
    start_s: float  # when the flow joined the link
    drain_s: float  # when its last bit left the link
    done_s: float  # drain + access-link latency
    cancelled: bool = False
    bytes_transferred: int | None = None

    @property
    def duration_s(self) -> float:
        return self.done_s - self.start_s

    @property
    def delivered_bytes(self) -> int:
        """Bytes that actually crossed the link (== num_bytes unless cancelled)."""
        if self.bytes_transferred is not None:
            return self.bytes_transferred
        return self.num_bytes


class _Flow:
    __slots__ = ("tag", "num_bytes", "bits", "cap", "latency", "start", "done")

    def __init__(self, tag, num_bytes, cap, latency, start, done):
        self.tag = tag
        self.num_bytes = num_bytes
        self.bits = num_bytes * 8.0
        self.cap = cap
        self.latency = latency
        self.start = start
        self.done = done


class FlowLink:
    """A shared bottleneck carrying dynamic max-min fair fluid flows.

    Parameters
    ----------
    sim:
        The event kernel this link lives on.
    capacity_bps:
        Bottleneck bandwidth in bits/s shared by all concurrent flows.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  When set, the link
        records queue depth (active flows), completed-flow counts/bytes,
        and a per-flow achieved-throughput histogram — all derived from
        virtual time, so the dump stays deterministic.
    name:
        Label distinguishing this link's metrics (e.g. ``uplink``).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity_bps: float,
        *,
        metrics=None,
        name: str = "link",
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity_bps = capacity_bps
        self.metrics = metrics
        self.name = name
        self._flows: list[_Flow] = []
        self._rates: list[float] = []
        self._last = 0.0  # clock at the last reallocation
        self._token = 0  # invalidates stale completion ticks
        #: (time, rates, caps) at every reallocation instant
        self.rate_history: list[tuple[float, tuple[float, ...], tuple[float, ...]]] = []

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(
        self,
        num_bytes: int,
        cap_bps: float,
        *,
        latency_s: float = 0.0,
        tag: object = None,
    ) -> Event:
        """Start a flow now; returns the event firing with a :class:`FlowRecord`.

        ``cap_bps`` is the flow's own access-link rate; the flow gets
        ``min`` of its fair share and that cap.  ``latency_s`` is charged
        once, after the last bit drains (matching the lockstep model).
        Zero-byte transfers complete immediately and never touch the link.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if cap_bps <= 0:
            raise ValueError("cap_bps must be positive")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        done = Event(self.sim)
        now = self.sim.now
        if num_bytes == 0:
            done.succeed(FlowRecord(tag, 0, now, now, now))
            return done
        self._apply_progress()
        self._flows.append(_Flow(tag, num_bytes, cap_bps, latency_s, now, done))
        if self.metrics is not None:
            self.metrics.counter("flows.started", link=self.name).inc()
            self.metrics.gauge("flows.active", link=self.name).set(
                len(self._flows)
            )
        self._reallocate()
        return done

    def cancel(self, done: Event) -> FlowRecord | None:
        """Tear down the in-flight flow whose completion event is ``done``.

        Models a node crashing mid-upload: the flow leaves the link
        immediately (remaining flows re-share its bandwidth), and the
        completion event fires *now* with a ``cancelled=True`` record
        whose ``bytes_transferred`` counts only the bits already drained.
        Cancelled flows never increment the ``flows.completed`` /
        ``flows.bytes`` metrics, so ledger accounting that keys off
        completions cannot double-count them.

        Returns the cancellation record, or ``None`` when the flow is no
        longer on the link (already drained — its completion event fired
        or is in its latency delay).
        """
        self._apply_progress()
        flow = None
        for candidate in self._flows:
            if candidate.done is done:
                flow = candidate
                break
        if flow is None:
            return None
        self._flows = [f for f in self._flows if f is not flow]
        now = self.sim.now
        transferred = int(max(0.0, flow.num_bytes * 8.0 - flow.bits) // 8)
        record = FlowRecord(
            tag=flow.tag,
            num_bytes=flow.num_bytes,
            start_s=flow.start,
            drain_s=now,
            done_s=now,
            cancelled=True,
            bytes_transferred=min(transferred, flow.num_bytes),
        )
        if self.metrics is not None:
            self.metrics.counter("flows.cancelled", link=self.name).inc()
            self.metrics.gauge("flows.active", link=self.name).set(
                len(self._flows)
            )
        flow.done.succeed(record)
        self._reallocate()
        return record

    # ------------------------------------------------------------------
    # Fluid bookkeeping
    # ------------------------------------------------------------------
    def _apply_progress(self) -> None:
        """Drain bits at the current rates since the last reallocation."""
        dt = self.sim.now - self._last
        if dt > 0:
            for flow, rate in zip(self._flows, self._rates):
                flow.bits -= rate * dt
        self._last = self.sim.now

    def _reallocate(self) -> None:
        """Recompute fair rates and schedule the next completion tick."""
        self._token += 1
        if not self._flows:
            self._rates = []
            return
        caps = [f.cap for f in self._flows]
        self._rates = max_min_rates(caps, self.capacity_bps)
        self.rate_history.append(
            (self.sim.now, tuple(self._rates), tuple(caps))
        )
        dt = min(
            f.bits / r for f, r in zip(self._flows, self._rates) if r > 0
        )
        token = self._token
        tick = self.sim.timeout(max(dt, 0.0))
        tick.callbacks.append(lambda _: self._on_tick(token))

    def _on_tick(self, token: int) -> None:
        if token != self._token:  # a join/leave superseded this tick
            return
        self._apply_progress()
        now = self.sim.now
        finished = [f for f in self._flows if f.bits <= _EPS_BITS]
        self._flows = [f for f in self._flows if f.bits > _EPS_BITS]
        if self.metrics is not None and finished:
            self.metrics.gauge("flows.active", link=self.name).set(
                len(self._flows)
            )
            completed = self.metrics.counter("flows.completed", link=self.name)
            moved = self.metrics.counter("flows.bytes", link=self.name)
            throughput = self.metrics.histogram(
                "flows.throughput_bps", link=self.name
            )
            for flow in finished:
                completed.inc()
                moved.inc(flow.num_bytes)
                drain_time = now - flow.start
                if drain_time > 0:
                    throughput.observe(flow.num_bytes * 8.0 / drain_time)
        for flow in finished:
            record = FlowRecord(
                tag=flow.tag,
                num_bytes=flow.num_bytes,
                start_s=flow.start,
                drain_s=now,
                done_s=now + flow.latency,
            )
            if flow.latency > 0:
                delay = self.sim.timeout(flow.latency, record)
                delay.callbacks.append(
                    lambda ev, done=flow.done: done.succeed(ev.value)
                )
            else:
                flow.done.succeed(record)
        self._reallocate()
