"""Minimal deterministic discrete-event simulation kernel.

Everything in this repo that advances a virtual clock — the WSS->NWS
pipeline simulator, the GPU co-run simulator's cousin, and the fleet's
shared-backhaul flows — used to carry its own bespoke event loop.  This
module is the one kernel they all run on: a virtual clock, a priority
event queue, and generator-based processes in the style of SimPy, kept
deliberately small (no interrupts, no priorities beyond FIFO-at-equal-
time) so behavior is easy to reason about and trivially deterministic.

Determinism contract: events scheduled for the same virtual time fire in
the order they were scheduled (a monotonically increasing sequence number
breaks heap ties), and nothing in the kernel consults a wall clock or an
RNG.  Two runs of the same process graph produce identical traces.

Usage sketch::

    sim = Simulator()

    def worker(sim, store):
        item = yield store.get()          # suspend until an item arrives
        yield sim.timeout(item.cost)      # advance virtual time
        return item                       # becomes the process's value

    proc = sim.process(worker(sim, store))
    sim.run()
    print(sim.now, proc.value)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator

__all__ = ["Event", "Process", "Resource", "Simulator", "Store"]

_PENDING = 0  # not yet triggered
_TRIGGERED = 1  # in the event queue, callbacks not yet run
_PROCESSED = 2  # callbacks have run; value is final


class Event:
    """A one-shot occurrence in virtual time.

    Processes wait on events by ``yield``-ing them; arbitrary callbacks
    may also be attached.  An event fires at the simulator's *current*
    time when :meth:`succeed` is called, or at a future time when created
    via :meth:`Simulator.timeout`.
    """

    __slots__ = ("sim", "callbacks", "value", "_state")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self.value: Any = None
        self._state = _PENDING

    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event (at the current virtual time) with ``value``."""
        if self._state != _PENDING:
            raise RuntimeError("event already triggered")
        self.value = value
        self.sim._schedule(0.0, self)
        return self


class Process(Event):
    """A generator executing in virtual time.

    The generator yields :class:`Event` instances; each yield suspends the
    process until the event fires, and the event's value is sent back in.
    The process itself is an event that fires with the generator's return
    value, so processes can wait on each other.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: Generator) -> None:
        super().__init__(sim)
        self._gen = gen
        sim._call_soon(lambda: self._step(None))

    def _step(self, send_value: Any) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"processes must yield Event instances, got {target!r}"
            )
        if target.processed:
            # Already fired: resume on the next queue slot at this time so
            # same-time FIFO ordering is preserved.
            self.sim._call_soon(lambda: self._step(target.value))
        else:
            target.callbacks.append(lambda ev: self._step(ev.value))


class Simulator:
    """Virtual clock plus the deterministic event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event._state = _TRIGGERED
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the current time, after pending callbacks."""
        ev = Event(self)
        ev.callbacks.append(lambda _: callback())
        self._schedule(0.0, ev)

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` virtual seconds from now."""
        ev = Event(self)
        ev.value = value
        self._schedule(delay, ev)
        return ev

    def process(self, gen: Generator) -> Process:
        """Start a generator as a process; begins at the current time."""
        return Process(self, gen)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the next event (advancing the clock to it)."""
        time, _, event = heapq.heappop(self._heap)
        self.now = time
        event._state = _PROCESSED
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: float | None = None) -> float:
        """Drain the queue; with ``until``, stop the world at that time.

        Events scheduled at exactly ``until`` still fire; later ones stay
        queued (frozen mid-flight), which is how horizon-bounded fleet
        runs cut off in-progress epochs.  Returns the final clock.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None and until > self.now:
            self.now = until
        return self.now


class Resource:
    """Capacity-limited resource with FIFO handover.

    ``yield resource.request()`` acquires a slot (waiting if none is
    free); ``resource.release()`` hands the slot to the longest waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        ev = Event(self.sim)
        if self.users < self.capacity:
            self.users += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.users <= 0:
            raise RuntimeError("release without a matching request")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.users -= 1

    @property
    def queued(self) -> int:
        return len(self._waiters)


class Store:
    """Unbounded FIFO item queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the longest-waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item (FIFO)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
