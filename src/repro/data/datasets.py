"""Dataset container and batching utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.drift import DriftModel
from repro.data.images import ImageGenerator
from repro.nn.config import default_dtype

__all__ = ["Dataset", "make_dataset"]


@dataclass
class Dataset:
    """A labeled image set in NCHW layout.

    ``labels`` may be hidden from consumers (``labeled=False``) to model the
    unlabeled raw IoT data that unsupervised pre-training consumes; the
    ground truth is still carried so experiments can score accuracy.
    """

    images: np.ndarray
    labels: np.ndarray
    labeled: bool = True
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=default_dtype())
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.images.shape[0]} images"
            )

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return self.images.shape[1:]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        indices = np.asarray(indices)
        return Dataset(
            self.images[indices],
            self.labels[indices],
            labeled=self.labeled,
            meta=dict(self.meta),
        )

    def take(self, count: int) -> "Dataset":
        """First ``count`` samples (acquisition order)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return self.subset(np.arange(min(count, len(self))))

    def split(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple["Dataset", "Dataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        perm = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        return self.subset(rng.permutation(len(self)))

    def as_unlabeled(self) -> "Dataset":
        """A view that consumers must treat as unlabeled raw IoT data."""
        return Dataset(self.images, self.labels, labeled=False, meta=dict(self.meta))

    def batches(
        self,
        batch_size: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate (images, labels) minibatches; shuffles when rng given."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = (
            rng.permutation(len(self)) if rng is not None else np.arange(len(self))
        )
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.images[idx], self.labels[idx]

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)

    @staticmethod
    def concat(parts: Sequence["Dataset"]) -> "Dataset":
        if not parts:
            raise ValueError("cannot concat zero datasets")
        return Dataset(
            np.concatenate([p.images for p in parts]),
            np.concatenate([p.labels for p in parts]),
            labeled=all(p.labeled for p in parts),
        )


def make_dataset(
    count: int,
    *,
    generator: ImageGenerator,
    drift: DriftModel | None = None,
    rng: np.random.Generator,
    classes: tuple[int, ...] | None = None,
) -> Dataset:
    """Generate ``count`` images with uniform class balance.

    ``drift=None`` produces ideal (Cloud-training-style) data; a
    :class:`DriftModel` produces in-situ conditions.  ``classes``
    restricts sampling to a subset of class ids (class-incremental
    streams); ``None`` keeps the full label space and is bit-identical
    to the historical behaviour.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if classes is None:
        labels = rng.integers(0, generator.num_classes, size=count)
    else:
        pool = np.asarray(sorted(classes), dtype=np.int64)
        if pool.size == 0:
            raise ValueError("classes must be non-empty when given")
        if pool.min() < 0 or pool.max() >= generator.num_classes:
            raise ValueError("classes out of range for this generator")
        labels = pool[rng.integers(0, pool.size, size=count)]
    images = generator.batch(labels)
    if drift is not None:
        images = drift.apply_batch(images)
    severity = drift.severity if drift is not None else 0.0
    return Dataset(images, labels, meta={"drift_severity": severity})
