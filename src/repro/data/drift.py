"""In-situ environment drift model.

Section II of the paper motivates everything with the gap between the ideal
training distribution and real camera-trap conditions (Fig. 2): animals too
close to the camera (extreme crops), random poses, poor illumination, and
weather artifacts.  :class:`DriftModel` reproduces those degradations as
parameterized image transforms whose magnitude scales with a single
``severity`` knob, so experiments can dial the distribution shift and watch
static-model accuracy collapse (Table I).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = [
    "low_illumination",
    "occlude",
    "random_pose",
    "close_up",
    "sensor_noise",
    "motion_blur",
    "DriftModel",
]


def _check_chw(image: np.ndarray) -> None:
    if image.ndim != 3 or image.shape[0] != 3:
        raise ValueError(f"expected (3, H, W) image, got shape {image.shape}")


def low_illumination(image: np.ndarray, factor: float) -> np.ndarray:
    """Dim the image and compress contrast (night / heavy overcast).

    ``factor`` in (0, 1]; 1 leaves the image unchanged.
    """
    _check_chw(image)
    if not 0.0 < factor <= 1.0:
        raise ValueError("illumination factor must be in (0, 1]")
    dimmed = image * factor
    # Gamma lift mimics sensor gain at night: crushes contrast, adds haze.
    return np.clip(dimmed**1.2 + 0.02, 0.0, 1.0)


def occlude(
    image: np.ndarray, frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Cover a random rectangle (vegetation / object blocking the lens)."""
    _check_chw(image)
    if not 0.0 <= frac < 1.0:
        raise ValueError("occlusion frac must be in [0, 1)")
    if frac == 0.0:
        return image.copy()
    _, height, width = image.shape
    occ_h = max(1, int(height * np.sqrt(frac)))
    occ_w = max(1, int(width * np.sqrt(frac)))
    top = int(rng.integers(0, height - occ_h + 1))
    left = int(rng.integers(0, width - occ_w + 1))
    out = image.copy()
    out[:, top : top + occ_h, left : left + occ_w] = rng.uniform(0.05, 0.2)
    return out


def random_pose(image: np.ndarray, angle_deg: float) -> np.ndarray:
    """Rotate the scene (animal captured in a random pose)."""
    _check_chw(image)
    rotated = ndimage.rotate(
        image, angle_deg, axes=(1, 2), reshape=False, order=1, mode="nearest"
    )
    return np.clip(rotated, 0.0, 1.0)


def close_up(image: np.ndarray, zoom: float) -> np.ndarray:
    """Crop-and-enlarge the center (animal too close to the camera).

    ``zoom >= 1``; 1 is identity.
    """
    _check_chw(image)
    if zoom < 1.0:
        raise ValueError("zoom must be >= 1")
    if zoom == 1.0:
        return image.copy()
    _, height, width = image.shape
    crop_h = max(4, int(round(height / zoom)))
    crop_w = max(4, int(round(width / zoom)))
    top = (height - crop_h) // 2
    left = (width - crop_w) // 2
    crop = image[:, top : top + crop_h, left : left + crop_w]
    zoomed = ndimage.zoom(
        crop, (1, height / crop_h, width / crop_w), order=1, mode="nearest"
    )
    return np.clip(zoomed[:, :height, :width], 0.0, 1.0)


def sensor_noise(
    image: np.ndarray, std: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive Gaussian sensor noise (high ISO at night)."""
    _check_chw(image)
    if std < 0:
        raise ValueError("noise std must be >= 0")
    return np.clip(image + rng.normal(0.0, std, size=image.shape), 0.0, 1.0)


def motion_blur(image: np.ndarray, extent: float) -> np.ndarray:
    """Horizontal smear (moving animal / wind-shaken camera)."""
    _check_chw(image)
    if extent < 0:
        raise ValueError("blur extent must be >= 0")
    if extent == 0:
        return image.copy()
    size = max(1, int(round(extent)))
    return ndimage.uniform_filter1d(image, size=size * 2 + 1, axis=2, mode="nearest")


class DriftModel:
    """Random composition of in-situ degradations at a given severity.

    Parameters
    ----------
    severity:
        0 disables all drift (ideal data); 1 is the harshest environment.
    rng:
        All transform randomness flows through this generator.
    """

    def __init__(
        self, severity: float, *, rng: np.random.Generator | None = None
    ) -> None:
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        self.severity = severity
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def apply(self, image: np.ndarray) -> np.ndarray:
        """Apply a random subset of degradations scaled by severity."""
        _check_chw(image)
        if self.severity == 0.0:
            return image.copy()
        rng = self.rng
        sev = self.severity
        out = image
        if rng.random() < 0.6 * sev + 0.2:
            out = low_illumination(out, factor=1.0 - 0.75 * sev * rng.random())
        if rng.random() < 0.5 * sev:
            out = occlude(out, frac=0.25 * sev * rng.random(), rng=rng)
        if rng.random() < 0.5 * sev:
            out = random_pose(out, angle_deg=float(rng.uniform(-90, 90)) * sev)
        if rng.random() < 0.35 * sev:
            out = close_up(out, zoom=1.0 + 1.5 * sev * rng.random())
        if rng.random() < 0.3 * sev:
            out = motion_blur(out, extent=2.0 * sev)
        out = sensor_noise(out, std=0.08 * sev, rng=rng)
        return out

    def apply_batch(self, images: np.ndarray) -> np.ndarray:
        """Apply the drift pipeline to a whole batch.

        Bit-identical to a per-image :meth:`apply` loop for the same
        starting RNG state: pass 1 consumes ``self.rng`` in exactly the
        per-image draw order (gates, conditional transform parameters,
        then that image's sensor noise), pass 2 applies each transform
        stage batch-wide.  The stages compose in the same per-image order
        as :meth:`apply`, and every batched stage is elementwise or
        axis-aligned, so no cross-image math changes any pixel.
        """
        if images.ndim != 4 or images.shape[1] != 3:
            raise ValueError(f"expected (B, 3, H, W), got {images.shape}")
        count = images.shape[0]
        if self.severity == 0.0 or count == 0:
            return images.copy()
        rng = self.rng
        sev = self.severity
        _, _, height, width = images.shape

        # -- pass 1: draws, in the exact order apply() consumes them -----
        g_illum = np.zeros(count, dtype=bool)
        factor = np.empty(count)
        occ_rects: list[tuple[int, int, int, int, int, float]] = []
        rotations: list[tuple[int, float]] = []
        zooms: list[tuple[int, float]] = []
        g_blur = np.zeros(count, dtype=bool)
        noise = np.empty((count, 3, height, width))
        noise_flat = noise.reshape(count, -1)
        for i in range(count):
            if rng.random() < 0.6 * sev + 0.2:
                g_illum[i] = True
                factor[i] = 1.0 - 0.75 * sev * rng.random()
            if rng.random() < 0.5 * sev:
                frac = 0.25 * sev * rng.random()
                # occlude() draws the rectangle only when frac > 0
                if frac > 0.0:
                    occ_h = max(1, int(height * np.sqrt(frac)))
                    occ_w = max(1, int(width * np.sqrt(frac)))
                    top = int(rng.integers(0, height - occ_h + 1))
                    left = int(rng.integers(0, width - occ_w + 1))
                    fill = float(rng.uniform(0.05, 0.2))
                    occ_rects.append((i, top, left, occ_h, occ_w, fill))
            if rng.random() < 0.5 * sev:
                rotations.append((i, float(rng.uniform(-90, 90)) * sev))
            if rng.random() < 0.35 * sev:
                zooms.append((i, 1.0 + 1.5 * sev * rng.random()))
            if rng.random() < 0.3 * sev:
                g_blur[i] = True
            # Same values as per-image normal(0, std): standard_normal into
            # the batch buffer, one deferred scale below.
            rng.standard_normal(out=noise_flat[i])
        noise *= 0.08 * sev

        # -- pass 2: staged batch application, same per-image stage order --
        out = images.copy()
        if g_illum.any():
            idx = np.flatnonzero(g_illum)
            sub = out[idx]
            # factor enters at the image dtype, matching the python-float
            # scalar promotion in low_illumination().
            sub *= factor[idx, None, None, None].astype(sub.dtype, copy=False)
            np.power(sub, 1.2, out=sub)
            sub += 0.02
            np.clip(sub, 0.0, 1.0, out=sub)
            out[idx] = sub
        for i, top, left, occ_h, occ_w, fill in occ_rects:
            out[i, :, top : top + occ_h, left : left + occ_w] = fill
        for i, angle in rotations:
            out[i] = random_pose(out[i], angle)
        for i, zoom in zooms:
            out[i] = close_up(out[i], zoom)
        if g_blur.any():
            size = max(1, int(round(2.0 * sev)))
            idx = np.flatnonzero(g_blur)
            out[idx] = ndimage.uniform_filter1d(
                out[idx], size=size * 2 + 1, axis=-1, mode="nearest"
            )
        result = out + noise  # promotes to float64, as sensor_noise does
        np.clip(result, 0.0, 1.0, out=result)
        return result
