"""Procedural class-conditional image generator.

Stands in for ImageNet / Snapshot Serengeti.  Each class is a parametric
shape family drawn onto a textured background; per-sample nuisance
parameters (position, scale, hue, background) give enough intra-class
variation that classification is learnable but not trivial.  The *in-situ*
degradations (poor illumination, occlusion, random pose, close-up crops —
Fig. 2 of the paper) are applied separately by :mod:`repro.data.drift` so
"ideal" and "in-situ" conditions draw from the same underlying classes.

Images are float64 CHW arrays in [0, 1] (float32 in throughput mode, the
dtype :class:`~repro.data.datasets.Dataset` stores anyway).

:meth:`ImageGenerator.batch` renders whole batches at once.  It has two
RNG-stream contracts:

* ``exact_stream=True`` (default) consumes ``self.rng`` in the exact
  per-image order of the historical ``generate`` loop, so every recorded
  simulation trajectory stays bit-identical.  Only the rendering *math* is
  batched; the per-image parameter and noise draws are pinned.
* ``exact_stream=False`` is the throughput mode: parameters and noise are
  drawn as whole blocks and the render runs in float32.  Deterministic for
  a given seed, but a *different* stream — use it for new workloads, not
  for reproducing recorded runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.profile import profiled

__all__ = ["NUM_SHAPE_CLASSES", "ShapeParams", "ImageGenerator"]

NUM_SHAPE_CLASSES = 10

#: images per chunk in the batched renderer; sized so the live scratch set
#: (seven (chunk, S, S) planes at S=48) stays cache-resident on one core.
_RENDER_CHUNK = 32


def _gaussian_f32(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` standard normals via vectorized float32 Box-Muller.

    numpy's ziggurat sampler is scalar rejection sampling (~13 ns/value on
    one core); Box-Muller on the SIMD float32 log/sqrt/sin/cos ufuncs
    measures ~1.6x faster.  Only the throughput render path uses this —
    the exact-stream path must reproduce ``Generator.normal`` bitwise.
    """
    half = (n + 1) // 2
    u1 = rng.random(half, dtype=np.float32)
    u2 = rng.random(half, dtype=np.float32)
    np.subtract(np.float32(1.0), u1, out=u1)  # (0, 1]: log stays finite
    np.log(u1, out=u1)
    u1 *= np.float32(-2.0)
    np.sqrt(u1, out=u1)  # radius
    u2 *= np.float32(2.0 * np.pi)  # angle
    cos_part = np.cos(u2)
    np.sin(u2, out=u2)
    cos_part *= u1
    u2 *= u1
    return np.concatenate([cos_part, u2])[:n]


@dataclass(frozen=True)
class ShapeParams:
    """Per-sample nuisance parameters for one generated image."""

    center_y: float
    center_x: float
    scale: float
    angle: float
    fg_color: tuple[float, float, float]
    bg_level: float


class ImageGenerator:
    """Draws one of :data:`NUM_SHAPE_CLASSES` shape classes.

    Parameters
    ----------
    image_size:
        Square image side in pixels.  48 keeps CPU training fast while
        leaving room for a 3x3 jigsaw grid of 16x16 tiles.
    num_classes:
        How many of the shape classes to use (2..10).
    rng:
        Source of all randomness; pass a seeded generator for reproducible
        datasets.
    """

    def __init__(
        self,
        image_size: int = 48,
        num_classes: int = NUM_SHAPE_CLASSES,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if image_size < 12:
            raise ValueError("image_size must be >= 12")
        if not 2 <= num_classes <= NUM_SHAPE_CLASSES:
            raise ValueError(
                f"num_classes must be in [2, {NUM_SHAPE_CLASSES}]"
            )
        self.image_size = image_size
        self.num_classes = num_classes
        self.rng = rng if rng is not None else np.random.default_rng(0)
        grid = np.arange(image_size, dtype=np.float64)  # repro-lint: ignore[RPR004] f64 pixel grid is the exact-stream render contract (bit-pins trig terms)
        self._yy, self._xx = np.meshgrid(grid, grid, indexing="ij")
        # Fixed background terms, precomputed once; bitwise identical to
        # evaluating them per image (they depend only on the pixel grid).
        self._bg_grad15 = 0.15 * ((self._yy + self._xx) / (2.0 * image_size))
        self._bg_texture = 0.04 * np.sin(self._yy * 0.9) * np.cos(
            self._xx * 0.7
        )
        self._grid_cache: dict[str, tuple[np.ndarray, ...]] = {}

    # ------------------------------------------------------------------
    def sample_params(self) -> ShapeParams:
        """Draw nuisance parameters for one image.

        One ``random(8)`` call replaces the historical six ``uniform``
        calls; the scalings below reproduce ``Generator.uniform``'s
        ``low + (high - low) * x`` exactly, so the values and the stream
        position are bit-identical to the original implementation.
        """
        size = self.image_size
        d = self.rng.random(8)
        hue = 0.45 + (1.0 - 0.45) * d[:3]
        hue = hue / hue.max()
        return ShapeParams(
            center_y=(0.38 + (0.62 - 0.38) * d[3]) * size,
            center_x=(0.38 + (0.62 - 0.38) * d[4]) * size,
            scale=(0.24 + (0.34 - 0.24) * d[5]) * size,
            angle=-0.35 + (0.35 - (-0.35)) * d[6],
            fg_color=tuple(hue),
            bg_level=0.12 + (0.3 - 0.12) * d[7],
        )

    def _params_rng(self, p: ShapeParams) -> np.random.Generator:
        """RNG derived purely from the parameter values.

        Used for the sensor-noise term when explicit params are passed to
        :meth:`generate`, so re-rendering the same params gives the same
        pixels without consuming (or depending on) ``self.rng``'s stream.
        """
        fields = np.array(
            [
                p.center_y,
                p.center_x,
                p.scale,
                p.angle,
                *p.fg_color,
                p.bg_level,
            ],
            dtype=np.float64,  # repro-lint: ignore[RPR004] f64 bit patterns of the params are the SeedSequence entropy; narrowing changes derived streams
        )
        # SeedSequence entropy must be non-negative ints < 2**64; drop the
        # low bit of each float's pattern to stay in range.
        entropy = (fields.view(np.uint64) >> np.uint64(1)).tolist()
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def generate(
        self, class_id: int, params: ShapeParams | None = None
    ) -> np.ndarray:
        """Render one image of the given class, shape (3, S, S) in [0, 1].

        With explicit ``params`` the render is a pure function of
        ``(class_id, params)``: the sensor noise comes from a
        params-derived stream and ``self.rng`` is left untouched.
        """
        if not 0 <= class_id < self.num_classes:
            raise ValueError(
                f"class_id {class_id} out of range [0, {self.num_classes})"
            )
        if params is None:
            p = self.sample_params()
            noise_rng = self.rng
        else:
            p = params
            noise_rng = self._params_rng(params)
        mask = self._shape_mask(class_id, p)
        background = self._background(p)
        img = np.empty((3, self.image_size, self.image_size))
        for ch in range(3):
            img[ch] = background * (1.0 - mask) + p.fg_color[ch] * mask
        img += noise_rng.normal(0.0, 0.015, size=img.shape)
        return np.clip(img, 0.0, 1.0)

    @profiled("images.batch")
    def batch(
        self, labels: np.ndarray, *, exact_stream: bool = True
    ) -> np.ndarray:
        """Render a batch of images for the given label vector.

        ``exact_stream=True`` is bit-identical to calling :meth:`generate`
        per label with the same starting RNG state (see the module
        docstring for the two stream contracts).
        """
        labels = np.asarray(labels)
        bad = (labels < 0) | (labels >= self.num_classes)
        if labels.size and bad.any():
            offender = int(labels[bad][0])
            raise ValueError(
                f"class_id {offender} out of range [0, {self.num_classes})"
            )
        count = len(labels)
        size = self.image_size
        dtype = np.float64 if exact_stream else np.float32  # repro-lint: ignore[RPR004] exact_stream contract renders in f64 to match generate() bitwise
        if count == 0:
            return np.empty((0, 3, size, size), dtype=dtype)
        if exact_stream:
            return self._batch_exact(labels)
        return self._batch_throughput(labels)

    def _batch_exact(self, labels: np.ndarray) -> np.ndarray:
        count = len(labels)
        size = self.image_size
        rng = self.rng
        noise = np.empty((count, 3, size, size))
        noise_flat = noise.reshape(count, -1)
        draws = np.empty((count, 8))
        # Per-image draw order (params then noise) is pinned by the stream
        # contract; only the raw draws happen in the loop — the scalings
        # below match Generator.uniform bitwise (see sample_params), and
        # f64 cos/sin are elementwise-identical batched or per-scalar.
        # standard_normal(out=) + one deferred *= 0.015 produces the same
        # values as per-image normal(0, 0.015) without the alloc+copy.
        for i in range(count):
            draws[i] = rng.random(8)
            rng.standard_normal(out=noise_flat[i])
        noise *= 0.015
        hue = 0.45 + (1.0 - 0.45) * draws[:, :3]
        fg = hue / hue.max(axis=1, keepdims=True)
        cy = (0.38 + (0.62 - 0.38) * draws[:, 3]) * size
        cx = (0.38 + (0.62 - 0.38) * draws[:, 4]) * size
        scale = (0.24 + (0.34 - 0.24) * draws[:, 5]) * size
        angle = -0.35 + (0.35 - (-0.35)) * draws[:, 6]
        bg = 0.12 + (0.3 - 0.12) * draws[:, 7]
        imgs = self._render_batch(
            labels, cy, cx, scale, np.cos(angle), np.sin(angle), fg, bg,
            np.float64,  # repro-lint: ignore[RPR004] exact-stream path must accumulate in f64 to stay bit-identical to per-image generate()
        )
        imgs += noise
        return np.clip(imgs, 0.0, 1.0)

    def _batch_throughput(self, labels: np.ndarray) -> np.ndarray:
        count = len(labels)
        size = self.image_size
        rng = self.rng
        hue = rng.uniform(0.45, 1.0, size=(count, 3))
        fg = hue / hue.max(axis=1, keepdims=True)
        cy = rng.uniform(0.38, 0.62, size=count) * size
        cx = rng.uniform(0.38, 0.62, size=count) * size
        scale = rng.uniform(0.24, 0.34, size=count) * size
        angle = rng.uniform(-0.35, 0.35, size=count).astype(np.float32)
        bg = rng.uniform(0.12, 0.3, size=count)
        imgs = self._render_batch(
            labels,
            cy.astype(np.float32),
            cx.astype(np.float32),
            scale.astype(np.float32),
            np.cos(angle),
            np.sin(angle),
            fg.astype(np.float32),
            bg.astype(np.float32),
            np.float32,
        )
        noise = _gaussian_f32(rng, count * 3 * size * size)
        noise *= np.float32(0.015)
        imgs += noise.reshape(count, 3, size, size)
        return np.clip(imgs, 0.0, 1.0)

    # ------------------------------------------------------------------
    def _grids(self, dtype) -> tuple[np.ndarray, ...]:
        key = np.dtype(dtype).str
        cached = self._grid_cache.get(key)
        if cached is None:
            cached = tuple(
                a.astype(dtype, copy=False)
                for a in (
                    self._yy,
                    self._xx,
                    self._bg_grad15,
                    self._bg_texture,
                )
            )
            self._grid_cache[key] = cached
        return cached

    def _render_batch(
        self,
        labels: np.ndarray,
        cy: np.ndarray,
        cx: np.ndarray,
        scale: np.ndarray,
        cos_a: np.ndarray,
        sin_a: np.ndarray,
        fg: np.ndarray,
        bg: np.ndarray,
        dtype,
    ) -> np.ndarray:
        """Noise-free batched render: mask/background/compose over (B, S, S).

        Images are rendered in label-sorted order so each chunk covers long
        same-class runs (one mask-formula dispatch per run, contiguous
        slices, no gather copies), through preallocated chunk-sized scratch
        planes, then un-permuted once at the end.  In float64 the op
        sequence matches the per-image path exactly, so the result is
        bit-identical to a :meth:`generate` loop fed the same parameters.
        """
        count = len(labels)
        size = self.image_size
        yy, xx, bg_grad15, bg_texture = self._grids(dtype)
        yy = yy[None]
        xx = xx[None]

        order = np.argsort(labels, kind="stable")
        ls = labels[order]
        cys, cxs, ss = cy[order], cx[order], scale[order]
        cs, sn = cos_a[order], sin_a[order]
        fgs, bgs = fg[order], bg[order]

        buf = np.empty((count, 3, size, size), dtype=dtype)
        chunk = min(_RENDER_CHUNK, count)
        dy = np.empty((chunk, size, size), dtype=dtype)
        dx = np.empty_like(dy)
        ry = np.empty_like(dy)
        rx = np.empty_like(dy)
        tmp = np.empty_like(dy)
        mask = np.empty_like(dy)
        bgc = np.empty_like(dy)
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            m = hi - lo
            _dy, _dx, _ry, _rx = dy[:m], dx[:m], ry[:m], rx[:m]
            _tmp, _mask, _bg = tmp[:m], mask[:m], bgc[:m]
            np.subtract(yy, cys[lo:hi, None, None], out=_dy)
            np.subtract(xx, cxs[lo:hi, None, None], out=_dx)
            # ry = cos*dy + sin*dx ; rx = -sin*dy + cos*dx, with the same
            # operand association as _rotated_coords.
            np.multiply(_dy, cs[lo:hi, None, None], out=_ry)
            np.multiply(_dx, sn[lo:hi, None, None], out=_tmp)
            _ry += _tmp
            np.multiply(_dx, cs[lo:hi, None, None], out=_rx)
            np.multiply(_dy, sn[lo:hi, None, None], out=_tmp)
            _rx -= _tmp
            pos = 0
            while pos < m:
                cid = int(ls[lo + pos])
                end = pos
                while end < m and ls[lo + end] == cid:
                    end += 1
                raw = self._mask_raw(
                    cid,
                    _ry[pos:end],
                    _rx[pos:end],
                    ss[lo + pos : lo + end, None, None],
                )
                np.clip(raw, -1.0, 1.0, out=_mask[pos:end])
                _mask[pos:end] *= 0.5
                _mask[pos:end] += 0.5
                pos = end
            np.add(bgs[lo:hi, None, None], bg_grad15[None], out=_bg)
            _bg += bg_texture
            np.subtract(1.0, _mask, out=_tmp)
            np.multiply(_bg[:, None], _tmp[:, None], out=buf[lo:hi])
            buf[lo:hi] += fgs[lo:hi][:, :, None, None] * _mask[:, None]

        inverse = np.empty(count, dtype=np.intp)
        inverse[order] = np.arange(count)
        return buf[inverse]

    # ------------------------------------------------------------------
    def _background(self, p: ShapeParams) -> np.ndarray:
        """Soft gradient background with mild texture."""
        return p.bg_level + self._bg_grad15 + self._bg_texture

    def _rotated_coords(self, p: ShapeParams) -> tuple[np.ndarray, np.ndarray]:
        dy = self._yy - p.center_y
        dx = self._xx - p.center_x
        cos_a, sin_a = np.cos(p.angle), np.sin(p.angle)
        return cos_a * dy + sin_a * dx, -sin_a * dy + cos_a * dx

    def _shape_mask(self, class_id: int, p: ShapeParams) -> np.ndarray:
        """Binary-ish (anti-aliased) mask of the shape."""
        ry, rx = self._rotated_coords(p)
        raw = self._mask_raw(class_id, ry, rx, p.scale)
        # Smooth edge over ~1px for anti-aliasing.
        return np.clip(raw, -1.0, 1.0) * 0.5 + 0.5

    @staticmethod
    def _mask_raw(class_id: int, ry, rx, s):
        """Signed shape field; broadcasts over single images or batches.

        ``ry``/``rx`` are rotated pixel grids — ``(S, S)`` for one image or
        ``(B, S, S)`` for a batch — and ``s`` the matching scalar or
        ``(B, 1, 1)`` scale.  Pure elementwise math, so the batched result
        equals the per-image result bit-for-bit.
        """
        if class_id == 0:  # disk
            d = np.sqrt(ry**2 + rx**2)
            raw = s - d
        elif class_id == 1:  # ring
            d = np.sqrt(ry**2 + rx**2)
            raw = (s - d) * (d - 0.55 * s)
        elif class_id == 2:  # square
            raw = s * 0.85 - np.maximum(np.abs(ry), np.abs(rx))
        elif class_id == 3:  # triangle (upward)
            raw = np.minimum.reduce(
                [ry + 0.6 * s, 0.9 * s - ry - 1.2 * np.abs(rx)]
            )
        elif class_id == 4:  # plus / cross
            arm = 0.3 * s
            raw = np.maximum(
                np.minimum(arm - np.abs(ry), s - np.abs(rx)),
                np.minimum(arm - np.abs(rx), s - np.abs(ry)),
            )
        elif class_id == 5:  # horizontal stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(ry * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 6:  # vertical stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(rx * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 7:  # checkerboard in a square
            box = s * 0.9 - np.maximum(np.abs(ry), np.abs(rx))
            checker = np.sin(ry * (np.pi / (0.3 * s))) * np.sin(
                rx * (np.pi / (0.3 * s))
            )
            raw = np.minimum(box, checker * s * 0.5)
        elif class_id == 8:  # diamond
            raw = s - (np.abs(ry) + np.abs(rx))
        else:  # class_id == 9: diagonal cross (X)
            arm = 0.25 * s
            d1 = np.abs(ry - rx) / np.sqrt(2.0)
            d2 = np.abs(ry + rx) / np.sqrt(2.0)
            reach = np.sqrt(ry**2 + rx**2)
            raw = np.maximum(
                np.minimum(arm - d1, s - reach),
                np.minimum(arm - d2, s - reach),
            )
        return raw
