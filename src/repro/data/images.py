"""Procedural class-conditional image generator.

Stands in for ImageNet / Snapshot Serengeti.  Each class is a parametric
shape family drawn onto a textured background; per-sample nuisance
parameters (position, scale, hue, background) give enough intra-class
variation that classification is learnable but not trivial.  The *in-situ*
degradations (poor illumination, occlusion, random pose, close-up crops —
Fig. 2 of the paper) are applied separately by :mod:`repro.data.drift` so
"ideal" and "in-situ" conditions draw from the same underlying classes.

Images are float64 CHW arrays in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NUM_SHAPE_CLASSES", "ShapeParams", "ImageGenerator"]

NUM_SHAPE_CLASSES = 10


@dataclass(frozen=True)
class ShapeParams:
    """Per-sample nuisance parameters for one generated image."""

    center_y: float
    center_x: float
    scale: float
    angle: float
    fg_color: tuple[float, float, float]
    bg_level: float


class ImageGenerator:
    """Draws one of :data:`NUM_SHAPE_CLASSES` shape classes.

    Parameters
    ----------
    image_size:
        Square image side in pixels.  48 keeps CPU training fast while
        leaving room for a 3x3 jigsaw grid of 16x16 tiles.
    num_classes:
        How many of the shape classes to use (2..10).
    rng:
        Source of all randomness; pass a seeded generator for reproducible
        datasets.
    """

    def __init__(
        self,
        image_size: int = 48,
        num_classes: int = NUM_SHAPE_CLASSES,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if image_size < 12:
            raise ValueError("image_size must be >= 12")
        if not 2 <= num_classes <= NUM_SHAPE_CLASSES:
            raise ValueError(
                f"num_classes must be in [2, {NUM_SHAPE_CLASSES}]"
            )
        self.image_size = image_size
        self.num_classes = num_classes
        self.rng = rng if rng is not None else np.random.default_rng(0)
        grid = np.arange(image_size, dtype=np.float64)
        self._yy, self._xx = np.meshgrid(grid, grid, indexing="ij")

    # ------------------------------------------------------------------
    def sample_params(self) -> ShapeParams:
        """Draw nuisance parameters for one image."""
        size = self.image_size
        rng = self.rng
        hue = rng.uniform(0.45, 1.0, size=3)
        hue = hue / hue.max()
        return ShapeParams(
            center_y=rng.uniform(0.38, 0.62) * size,
            center_x=rng.uniform(0.38, 0.62) * size,
            scale=rng.uniform(0.24, 0.34) * size,
            angle=rng.uniform(-0.35, 0.35),
            fg_color=tuple(hue),
            bg_level=rng.uniform(0.12, 0.3),
        )

    def generate(self, class_id: int, params: ShapeParams | None = None) -> np.ndarray:
        """Render one image of the given class, shape (3, S, S) in [0, 1]."""
        if not 0 <= class_id < self.num_classes:
            raise ValueError(
                f"class_id {class_id} out of range [0, {self.num_classes})"
            )
        p = params if params is not None else self.sample_params()
        mask = self._shape_mask(class_id, p)
        background = self._background(p)
        img = np.empty((3, self.image_size, self.image_size))
        for ch in range(3):
            img[ch] = background * (1.0 - mask) + p.fg_color[ch] * mask
        img += self.rng.normal(0.0, 0.015, size=img.shape)
        return np.clip(img, 0.0, 1.0)

    def batch(self, labels: np.ndarray) -> np.ndarray:
        """Render a batch of images for the given label vector."""
        labels = np.asarray(labels)
        out = np.empty((len(labels), 3, self.image_size, self.image_size))
        for i, label in enumerate(labels):
            out[i] = self.generate(int(label))
        return out

    # ------------------------------------------------------------------
    def _background(self, p: ShapeParams) -> np.ndarray:
        """Soft gradient background with mild texture."""
        size = self.image_size
        grad = (self._yy + self._xx) / (2.0 * size)
        texture = 0.04 * np.sin(self._yy * 0.9) * np.cos(self._xx * 0.7)
        return p.bg_level + 0.15 * grad + texture

    def _rotated_coords(self, p: ShapeParams) -> tuple[np.ndarray, np.ndarray]:
        dy = self._yy - p.center_y
        dx = self._xx - p.center_x
        cos_a, sin_a = np.cos(p.angle), np.sin(p.angle)
        return cos_a * dy + sin_a * dx, -sin_a * dy + cos_a * dx

    def _shape_mask(self, class_id: int, p: ShapeParams) -> np.ndarray:
        """Binary-ish (anti-aliased) mask of the shape."""
        ry, rx = self._rotated_coords(p)
        s = p.scale
        if class_id == 0:  # disk
            d = np.sqrt(ry**2 + rx**2)
            raw = s - d
        elif class_id == 1:  # ring
            d = np.sqrt(ry**2 + rx**2)
            raw = (s - d) * (d - 0.55 * s)
        elif class_id == 2:  # square
            raw = s * 0.85 - np.maximum(np.abs(ry), np.abs(rx))
        elif class_id == 3:  # triangle (upward)
            raw = np.minimum.reduce(
                [ry + 0.6 * s, 0.9 * s - ry - 1.2 * np.abs(rx)]
            )
        elif class_id == 4:  # plus / cross
            arm = 0.3 * s
            raw = np.maximum(
                np.minimum(arm - np.abs(ry), s - np.abs(rx)),
                np.minimum(arm - np.abs(rx), s - np.abs(ry)),
            )
        elif class_id == 5:  # horizontal stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(ry * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 6:  # vertical stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(rx * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 7:  # checkerboard in a square
            box = s * 0.9 - np.maximum(np.abs(ry), np.abs(rx))
            checker = np.sin(ry * (np.pi / (0.3 * s))) * np.sin(
                rx * (np.pi / (0.3 * s))
            )
            raw = np.minimum(box, checker * s * 0.5)
        elif class_id == 8:  # diamond
            raw = s - (np.abs(ry) + np.abs(rx))
        else:  # class_id == 9: diagonal cross (X)
            arm = 0.25 * s
            d1 = np.abs(ry - rx) / np.sqrt(2.0)
            d2 = np.abs(ry + rx) / np.sqrt(2.0)
            reach = np.sqrt(ry**2 + rx**2)
            raw = np.maximum(
                np.minimum(arm - d1, s - reach),
                np.minimum(arm - d2, s - reach),
            )
        # Smooth edge over ~1px for anti-aliasing.
        return np.clip(raw, -1.0, 1.0) * 0.5 + 0.5
