"""Incremental IoT acquisition stream.

The paper's end-to-end evaluation (Table II, Fig. 25) mimics "a real in-situ
scenario, where IoT data is acquired incrementally": 100k images train an
initial model, then the model is continually updated as the cumulative
archive grows to 200k, 400k, 800k, and 1200k images.  This module reproduces
that schedule, scaled by a ``scale`` factor so laptop-size experiments keep
the stage *ratios* exact, and varies drift severity per stage to model the
ever-changing environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset, make_dataset
from repro.data.drift import DriftModel
from repro.data.images import ImageGenerator

__all__ = ["PAPER_SCHEDULE_K", "AcquisitionStage", "IoTStream"]

#: cumulative image counts of the paper's update schedule, in thousands
PAPER_SCHEDULE_K = (100, 200, 400, 800, 1200)


@dataclass
class AcquisitionStage:
    """One stage of incremental acquisition.

    ``new_data`` holds only the images acquired *since the previous stage*;
    ``cumulative_count`` is the archive size after this stage (what the
    paper's Table II columns are labeled with).
    """

    index: int
    new_data: Dataset
    cumulative_count: int
    drift_severity: float

    @property
    def new_count(self) -> int:
        return len(self.new_data)


class IoTStream:
    """Generates the staged acquisition schedule.

    Parameters
    ----------
    generator:
        Image source shared across stages (same classes throughout).
    scale:
        Images per "1k" of the paper schedule.  ``scale=1`` maps 100k -> 100
        images.
    severities:
        Drift severity for each stage.  Defaults alternate around a rising
        baseline — the environment keeps changing, which is what forces
        incremental updates.
    rng:
        All stage randomness.
    class_schedule:
        Optional per-stage tuple of allowed class ids — the
        class-incremental arrival process.  ``None`` (default) draws
        from the full label space at every stage, bit-identical to the
        historical stream.
    """

    def __init__(
        self,
        generator: ImageGenerator,
        *,
        scale: float = 1.0,
        schedule_k: tuple[int, ...] = PAPER_SCHEDULE_K,
        severities: tuple[float, ...] | None = None,
        rng: np.random.Generator | None = None,
        class_schedule: tuple[tuple[int, ...], ...] | None = None,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        if sorted(schedule_k) != list(schedule_k) or len(schedule_k) < 2:
            raise ValueError("schedule_k must be increasing with >= 2 stages")
        if severities is None:
            severities = tuple(
                0.35 + 0.1 * (i % 3) for i in range(len(schedule_k))
            )
        if len(severities) != len(schedule_k):
            raise ValueError("need one severity per stage")
        if class_schedule is not None:
            if len(class_schedule) != len(schedule_k):
                raise ValueError("need one class group per stage")
            class_schedule = tuple(
                tuple(sorted(stage_classes))
                for stage_classes in class_schedule
            )
        self.class_schedule = class_schedule
        self.generator = generator
        self.scale = scale
        self.schedule_k = tuple(schedule_k)
        self.severities = tuple(severities)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def stage_sizes(self) -> list[int]:
        """Newly acquired images per stage (differences of the cumulative schedule)."""
        sizes = []
        previous = 0
        for cumulative in self.schedule_k:
            count = max(1, int(round((cumulative - previous) * self.scale)))
            sizes.append(count)
            previous = cumulative
        return sizes

    def stages(self) -> list[AcquisitionStage]:
        """Materialize every stage of the stream."""
        result = []
        cumulative = 0
        for i, (new_count, severity) in enumerate(
            zip(self.stage_sizes(), self.severities)
        ):
            drift = DriftModel(severity, rng=self.rng)
            data = make_dataset(
                new_count,
                generator=self.generator,
                drift=drift,
                rng=self.rng,
                classes=(
                    self.class_schedule[i]
                    if self.class_schedule is not None
                    else None
                ),
            )
            cumulative += new_count
            result.append(
                AcquisitionStage(
                    index=i,
                    new_data=data,
                    cumulative_count=cumulative,
                    drift_severity=severity,
                )
            )
        return result
