"""Seed-keyed cache for procedurally generated datasets.

:func:`repro.core.simulation.prepare_assets` and
:func:`repro.fleet.simulation.prepare_fleet_assets` are pure functions of
their scenario: every RNG they consume is constructed locally from scenario
seeds.  Experiment sweeps (the four system variants over one scenario,
fleet-size sweeps sharing node seeds, benchmark reruns) therefore regenerate
literally identical stage streams and eval sets.  This module memoizes those
generation segments on a process-wide LRU cache.

Correctness rules for anything stored here:

* the key must cover **every** input the builder reads — scenario fields,
  seeds, and the framework default dtype (datasets cast to it on
  construction);
* the builder must consume only RNGs it creates itself; if a live generator
  outlives the cached segment, its end-of-segment ``bit_generator.state``
  belongs in the payload so a hit can restore the stream position;
* hits return a deep copy of the payload, so downstream in-place mutation
  can never corrupt the cache or couple two runs.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["DatasetCache", "dataset_cache"]


class DatasetCache:
    """Process-wide LRU memoization for dataset-generation segments."""

    def __init__(self, maxsize: int = 16) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        """Return a deep copy of the cached payload, building on a miss.

        The builder runs outside the lock; if two threads race on the same
        missing key the second build simply overwrites the first with an
        identical payload.
        """
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return copy.deepcopy(self._entries[key])
        value = builder()
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return copy.deepcopy(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: shared cache used by the core and fleet asset-preparation paths
dataset_cache = DatasetCache()
