"""Dataset persistence.

Edge deployments checkpoint their acquisition archives; the Cloud snapshots
its training sets next to model versions.  Datasets round-trip through a
single ``.npz`` file carrying images, labels, the labeled flag, and scalar
metadata.
"""

from __future__ import annotations

import json

import numpy as np

from repro.data.datasets import Dataset

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(data: Dataset, path: str) -> None:
    """Write a dataset to ``path`` as compressed npz."""
    np.savez_compressed(
        path,
        images=data.images,
        labels=data.labels,
        labeled=np.array(data.labeled),
        meta=np.array(json.dumps(data.meta)),
    )


def load_dataset(path: str) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        return Dataset(
            archive["images"],
            archive["labels"],
            labeled=bool(archive["labeled"]),
            meta=json.loads(str(archive["meta"])),
        )
