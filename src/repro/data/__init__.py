"""Synthetic IoT data substrate: procedural images, drift, datasets, streams."""

from repro.data.datasets import Dataset, make_dataset
from repro.data.drift import (
    DriftModel,
    close_up,
    low_illumination,
    motion_blur,
    occlude,
    random_pose,
    sensor_noise,
)
from repro.data.images import NUM_SHAPE_CLASSES, ImageGenerator, ShapeParams
from repro.data.io import load_dataset, save_dataset
from repro.data.stream import PAPER_SCHEDULE_K, AcquisitionStage, IoTStream

__all__ = [
    "AcquisitionStage",
    "Dataset",
    "DriftModel",
    "ImageGenerator",
    "IoTStream",
    "NUM_SHAPE_CLASSES",
    "PAPER_SCHEDULE_K",
    "ShapeParams",
    "close_up",
    "load_dataset",
    "low_illumination",
    "make_dataset",
    "save_dataset",
    "motion_blur",
    "occlude",
    "random_pose",
    "sensor_noise",
]
