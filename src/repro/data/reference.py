"""Reference (pre-optimization) implementations of the data hot paths.

Verbatim copies of the original per-image ``ImageGenerator`` rendering code
and the per-image ``DriftModel.apply_batch`` loop, kept as ground truth for

* the property tests in ``tests/data``, which assert the vectorized
  :mod:`repro.data.images` / :mod:`repro.data.drift` fast paths match these
  **bit-exactly** for the same seeds, and
* ``benchmarks/bench_hotpath.py``, which reports optimized-vs-reference
  speedups without checking out the old revision.

Do not optimize this module — its whole value is staying slow and obviously
correct.
"""

from __future__ import annotations

import numpy as np

from repro.data.drift import DriftModel
from repro.data.images import ShapeParams

__all__ = ["ReferenceImageGenerator", "drift_batch_reference"]


class ReferenceImageGenerator:
    """The original loop-based generator: one image at a time, per-channel
    compose, background texture recomputed per call, six uniform draws per
    parameter sample.  Mirrors ``ImageGenerator``'s constructor contract."""

    def __init__(
        self,
        image_size: int = 48,
        num_classes: int = 10,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.image_size = image_size
        self.num_classes = num_classes
        self.rng = rng if rng is not None else np.random.default_rng(0)
        grid = np.arange(image_size, dtype=np.float64)
        self._yy, self._xx = np.meshgrid(grid, grid, indexing="ij")

    def sample_params(self) -> ShapeParams:
        size = self.image_size
        rng = self.rng
        hue = rng.uniform(0.45, 1.0, size=3)
        hue = hue / hue.max()
        return ShapeParams(
            center_y=rng.uniform(0.38, 0.62) * size,
            center_x=rng.uniform(0.38, 0.62) * size,
            scale=rng.uniform(0.24, 0.34) * size,
            angle=rng.uniform(-0.35, 0.35),
            fg_color=tuple(hue),
            bg_level=rng.uniform(0.12, 0.3),
        )

    def generate(
        self, class_id: int, params: ShapeParams | None = None
    ) -> np.ndarray:
        if not 0 <= class_id < self.num_classes:
            raise ValueError(
                f"class_id {class_id} out of range [0, {self.num_classes})"
            )
        p = params if params is not None else self.sample_params()
        mask = self._shape_mask(class_id, p)
        background = self._background(p)
        img = np.empty((3, self.image_size, self.image_size))
        for ch in range(3):
            img[ch] = background * (1.0 - mask) + p.fg_color[ch] * mask
        img += self.rng.normal(0.0, 0.015, size=img.shape)
        return np.clip(img, 0.0, 1.0)

    def batch(self, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        out = np.empty((len(labels), 3, self.image_size, self.image_size))
        for i, label in enumerate(labels):
            out[i] = self.generate(int(label))
        return out

    def _background(self, p: ShapeParams) -> np.ndarray:
        size = self.image_size
        grad = (self._yy + self._xx) / (2.0 * size)
        texture = 0.04 * np.sin(self._yy * 0.9) * np.cos(self._xx * 0.7)
        return p.bg_level + 0.15 * grad + texture

    def _rotated_coords(self, p: ShapeParams) -> tuple[np.ndarray, np.ndarray]:
        dy = self._yy - p.center_y
        dx = self._xx - p.center_x
        cos_a, sin_a = np.cos(p.angle), np.sin(p.angle)
        return cos_a * dy + sin_a * dx, -sin_a * dy + cos_a * dx

    def _shape_mask(self, class_id: int, p: ShapeParams) -> np.ndarray:
        ry, rx = self._rotated_coords(p)
        s = p.scale
        if class_id == 0:  # disk
            d = np.sqrt(ry**2 + rx**2)
            raw = s - d
        elif class_id == 1:  # ring
            d = np.sqrt(ry**2 + rx**2)
            raw = (s - d) * (d - 0.55 * s)
        elif class_id == 2:  # square
            raw = s * 0.85 - np.maximum(np.abs(ry), np.abs(rx))
        elif class_id == 3:  # triangle (upward)
            raw = np.minimum.reduce(
                [ry + 0.6 * s, 0.9 * s - ry - 1.2 * np.abs(rx)]
            )
        elif class_id == 4:  # plus / cross
            arm = 0.3 * s
            raw = np.maximum(
                np.minimum(arm - np.abs(ry), s - np.abs(rx)),
                np.minimum(arm - np.abs(rx), s - np.abs(ry)),
            )
        elif class_id == 5:  # horizontal stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(ry * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 6:  # vertical stripes in a disk
            d = np.sqrt(ry**2 + rx**2)
            stripes = np.sin(rx * (np.pi / (0.22 * s)))
            raw = np.minimum(s - d, stripes * s * 0.5)
        elif class_id == 7:  # checkerboard in a square
            box = s * 0.9 - np.maximum(np.abs(ry), np.abs(rx))
            checker = np.sin(ry * (np.pi / (0.3 * s))) * np.sin(
                rx * (np.pi / (0.3 * s))
            )
            raw = np.minimum(box, checker * s * 0.5)
        elif class_id == 8:  # diamond
            raw = s - (np.abs(ry) + np.abs(rx))
        else:  # class_id == 9: diagonal cross (X)
            arm = 0.25 * s
            d1 = np.abs(ry - rx) / np.sqrt(2.0)
            d2 = np.abs(ry + rx) / np.sqrt(2.0)
            reach = np.sqrt(ry**2 + rx**2)
            raw = np.maximum(
                np.minimum(arm - d1, s - reach),
                np.minimum(arm - d2, s - reach),
            )
        return np.clip(raw, -1.0, 1.0) * 0.5 + 0.5


def drift_batch_reference(
    drift: DriftModel, images: np.ndarray
) -> np.ndarray:
    """The original ``apply_batch``: a per-image loop over ``apply``."""
    if images.ndim != 4:
        raise ValueError(f"expected (B, 3, H, W), got {images.shape}")
    return np.stack([drift.apply(img) for img in images])
