"""Per-node-group head specialization on top of a shared CONV trunk.

After every promoted fleet-wide rollout, each node group retrains the FC
head (``FreezePlan(5)`` — conv trunk locked) on the group's own current
stage data.  A specialized head is accepted only if it does not regress
against the shared model *on that same group data* by more than the
configured margin; accepted heads are published to the model registry on
a side track (``head-<g>``), so canary/rollout bookkeeping sees every
specialized lineage as distinct versions without ever activating one as
the fleet-wide model.

Only the FC-head bytes travel on the push-down: the trunk the nodes
already hold is, by construction, the just-promoted shared trunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.registry import ModelRegistry
from repro.data.datasets import Dataset
from repro.fleet.simulation import FleetAssets
from repro.fleet.uplink import model_state_bytes
from repro.models.iot_models import build_classifier
from repro.models.registry import merge_head_state, split_head_state
from repro.nn import Sequential
from repro.scenario.processes import ScenarioPlans
from repro.scenario.schema import HeadSpec, ScenarioSpec
from repro.transfer.finetune import evaluate, train_classifier
from repro.transfer.surgery import FreezePlan

__all__ = ["HeadUpdate", "build_head_net", "run_head_updates"]

#: seed-sequence salt separating head-training RNG from every other stream
_HEAD_SALT = 271


@dataclass(frozen=True)
class HeadUpdate:
    """Outcome of one group's head-specialization attempt at one stage."""

    stage_index: int
    group: int
    base_version: int  # the shared version the head sits on
    accepted: bool
    accuracy_shared: float  # shared model on the group's stage data
    accuracy_head: float  # specialized head on the same data
    version: int | None  # registry version on track head-<g> (if accepted)
    push_bytes: int  # FC-head-only bytes pushed to each member
    member_ids: tuple[int, ...]  # alive members that receive the head
    state: dict[str, np.ndarray] | None = field(repr=False, default=None)


def build_head_net(spec: ScenarioSpec) -> Sequential:
    """The scratch network head training runs on (weights always loaded)."""
    base = spec.fleet.base
    return build_classifier(
        base.num_classes,
        np.random.default_rng(base.seed + 29),
        width=base.width,
        hidden=base.hidden,
    )


def run_head_updates(
    spec: ScenarioSpec,
    plans: ScenarioPlans,
    assets: FleetAssets,
    registry: ModelRegistry,
    scratch_net: Sequential,
    *,
    stage_index: int,
    alive_ids: tuple[int, ...],
) -> list[HeadUpdate]:
    """Attempt one head specialization per group after a promoted rollout.

    Deterministic by construction: groups run in index order, each with
    its own ``SeedSequence((seed, stage, group, salt))`` RNG, and nothing
    here touches the cloud's RNG or inference network — both scenario
    engines call this identically and get identical results.
    """
    head_spec: HeadSpec | None = spec.heads
    if head_spec is None or plans.heads is None:
        return []
    shared = registry.active
    alive = frozenset(alive_ids)
    updates: list[HeadUpdate] = []
    for group in range(plans.heads.num_groups):
        members = tuple(
            i for i in plans.heads.members(group) if i in alive
        )
        if not members:
            continue
        group_data = Dataset.concat(
            [assets.node_stages[i][stage_index].new_data for i in members]
        )
        scratch_net.load_state_dict(shared.state)
        accuracy_shared = evaluate(scratch_net, group_data)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (spec.fleet.seed, stage_index, group, _HEAD_SALT)
            )
        )
        train_classifier(
            scratch_net,
            group_data,
            epochs=head_spec.epochs,
            batch_size=spec.fleet.base.batch_size,
            lr=head_spec.lr,
            rng=rng,
            freeze_plan=FreezePlan(5),
        )
        accuracy_head = evaluate(scratch_net, group_data)
        accepted = accuracy_head >= accuracy_shared - head_spec.max_regression
        version = None
        push_bytes = 0
        merged = None
        if accepted:
            _, head = split_head_state(scratch_net.state_dict())
            merged = merge_head_state(shared.state, head)
            entry = registry.publish(
                merged,
                {
                    "head_group": group,
                    "stage": stage_index,
                    "base_version": shared.version,
                    "members": list(members),
                },
                track=f"head-{group}",
            )
            version = entry.version
            push_bytes = model_state_bytes(head)
        updates.append(
            HeadUpdate(
                stage_index=stage_index,
                group=group,
                base_version=shared.version,
                accepted=accepted,
                accuracy_shared=float(accuracy_shared),
                accuracy_head=float(accuracy_head),
                version=version,
                push_bytes=push_bytes,
                member_ids=members,
                state=merged,
            )
        )
    return updates
