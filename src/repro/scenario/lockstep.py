"""Lockstep scenario engine: the flat fleet schedule plus processes.

This mirrors :func:`repro.fleet.simulation._run_fleet_schedule` stage for
stage, with three scenario deltas:

* **churn** — only alive nodes compute, upload, and receive pushes; the
  cloud sees each stage's alive subset as the whole fleet (canaries are
  restricted the same way the scheduler restricts them);
* **reconciliation** — a node whose held version went stale while it was
  down re-downloads the current model at stage start (charged to the
  downlink ledger like any push);
* **per-node heads** — after every promoted rollout, each node group
  retrains its FC head; accepted heads are published on registry side
  tracks and only the head bytes travel to the group's alive members.

Per-node model states are explicit (``node_states[i]``) instead of the
flat engine's single ``active_state``, because churn makes versions
diverge across the fleet mid-run.  Worker tasks ship each node's own
state, so any worker count is bit-identical to the serial path.
"""

from __future__ import annotations

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.core.systems import SystemConfig, system_by_id
from repro.data.datasets import Dataset
from repro.fleet.simulation import (
    FleetAssets,
    FleetReport,
    FleetRuntime,
    FleetStageRecord,
    NodeStageRecord,
    NodeTrajectory,
    _node_stage_records,
    build_fleet_runtime,
    cloud_initialize,
    cloud_try_update,
    pooled_node_stage,
    reseed_diagnoser,
    rollback_attrs,
)
from repro.fleet.uplink import SharedUplink, Transfer, model_state_bytes
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.scenario.assets import prepare_scenario_assets
from repro.scenario.heads import build_head_net, run_head_updates
from repro.scenario.processes import ScenarioPlans, build_plans
from repro.scenario.report import (
    ScenarioReport,
    ScenarioStageInfo,
    canary_pool,
    configure_cloud,
    finalize_report,
    scenario_canary_ids,
    strip_state,
)
from repro.scenario.schema import ScenarioSpec
from repro.transfer.finetune import evaluate

__all__ = ["run_scenario_lockstep"]


def run_scenario_lockstep(
    spec: ScenarioSpec,
    *,
    assets: FleetAssets | None = None,
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    system_id: str = "d",
) -> ScenarioReport:
    """Run one scenario replicate on the lockstep engine."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    config = system_by_id(system_id)
    if assets is None:
        assets = prepare_scenario_assets(spec)
    plans = build_plans(spec, assets.profiles)
    runtime = build_fleet_runtime(config, assets, metrics=metrics)
    configure_cloud(runtime, spec)
    pool = None
    if workers > 1:
        from repro.fleet.pool import FleetWorkerPool

        # Churn + per-group heads make node states diverge mid-run, so
        # one stage can reference up to (head groups + 1) distinct
        # states at once; size the weights block to hold them all live.
        groups = plans.heads.num_groups if plans.heads is not None else 0
        pool = FleetWorkerPool(assets, workers, state_slots=groups + 2)
    try:
        with obs_metrics.use(metrics):
            return _run_scenario_schedule(
                spec,
                config,
                assets,
                plans,
                runtime,
                pool,
                tracer=tracer,
            )
    finally:
        if pool is not None:
            pool.shutdown()


def _run_scenario_schedule(
    spec: ScenarioSpec,
    config: SystemConfig,
    assets: FleetAssets,
    plans: ScenarioPlans,
    runtime: FleetRuntime,
    pool,
    *,
    tracer: Tracer | None = None,
) -> ScenarioReport:
    scenario = assets.scenario
    base = scenario.base
    profiles = assets.profiles
    cloud = runtime.cloud
    registry = runtime.registry
    scheduler = runtime.scheduler
    deployed_net = runtime.deployed_net
    uplink = SharedUplink(scenario.backhaul_bps)

    fleet_report = FleetReport(
        config=config, scenario=scenario, registry=registry
    )
    fleet_report.nodes = [NodeTrajectory(profile=p) for p in profiles]
    report = ScenarioReport(
        spec=spec, mode="lockstep", fleet=fleet_report, registry=registry
    )
    num_nodes = len(profiles)
    num_stages = len(assets.node_stages[0])
    tracing = tracer is not None and tracer.enabled
    head_net = build_head_net(spec) if spec.heads is not None else None
    # Per-node deployed model state and the main-track version it is
    # based on (0 = the pre-registry warm-start state).
    node_states = [assets.initial_state for _ in range(num_nodes)]
    node_version = [0] * num_nodes
    # group -> (base main version, merged full state) of the latest
    # accepted head, so rejoining members reconcile to their own head.
    group_state: dict[int, tuple[int, dict]] = {}
    cursor = 0.0

    for s in range(num_stages):
        is_initial = s == 0
        stage_start = cursor
        trace_t0 = stage_start if tracing else None
        alive = plans.alive_indices(s, num_nodes)
        phase = plans.phase_name(s)
        extra = {"phase": phase} if phase is not None else None
        active_version = registry.active.version if len(registry) else 0

        # --- rejoin reconciliation ------------------------------------
        # A node that slept through a promotion holds a stale version;
        # it re-downloads the current model (its group head when one
        # exists for the active version) before computing.  The download
        # overlaps the stage's compute in the virtual timeline.
        reconciled: list[int] = []
        reconcile_bytes = 0
        for i in alive:
            if node_version[i] == active_version:
                continue
            target = registry.active.state if len(registry) else assets.initial_state
            if plans.heads is not None:
                group = plans.heads.group_of(i)
                held = group_state.get(group)
                if held is not None and held[0] == active_version:
                    target = held[1]
            num_bytes = model_state_bytes(target)
            node_states[i] = target
            node_version[i] = active_version
            reconciled.append(i)
            reconcile_bytes += num_bytes
            profile = profiles[i]
            trajectory = fleet_report.nodes[i]
            trajectory.ledger.record_download(s, num_bytes)
            fleet_report.ledger.record_download(s, num_bytes)
            if tracing:
                tracer.span(
                    "net",
                    "reconcile",
                    stage_start,
                    stage_start + profile.link.model_push_time_s(num_bytes),
                    node=profile.node_id,
                    stage=s,
                    system=config.system_id,
                    bytes=num_bytes,
                    version=active_version,
                )

        # --- node compute (alive only) --------------------------------
        if pool is None:
            node_reports = {}
            for i in alive:
                deployed_net.load_state_dict(node_states[i])
                reseed_diagnoser(
                    runtime.nodes[i].diagnoser,
                    base.seed,
                    profiles[i].node_id,
                    s,
                )
                node_report = runtime.nodes[i].process_stage(
                    assets.node_stages[i][s]
                )
                node_reports[i] = node_report
                if tracing:
                    tracer.extend(
                        _node_stage_records(
                            node_report,
                            stage_index=s,
                            node_id=profiles[i].node_id,
                            system_id=config.system_id,
                            t0=stage_start,
                            extra=extra,
                        )
                    )
        else:
            by_index = pooled_node_stage(
                pool,
                config.system_id,
                s,
                [(i, node_states[i]) for i in alive],
                trace_t0=trace_t0,
                extra=extra,
            )
            node_reports = {}
            for i in alive:
                node_report, records = by_index[i]
                node_reports[i] = node_report
                if tracing and records is not None:
                    tracer.extend(records)

        # --- uploads (alive only) -------------------------------------
        uploads: dict[int, Dataset] = {}
        upload_counts: dict[int, int] = {}
        for i in alive:
            node_report = node_reports[i]
            if is_initial or config.uploads_everything:
                uploads[i] = assets.node_stages[i][s].new_data
                upload_counts[i] = node_report.acquired_images
            else:
                uploads[i] = node_report.upload_data
                upload_counts[i] = len(node_report.upload_data)
        transfers = {
            i: Transfer(
                node_id=profiles[i].node_id,
                link=profiles[i].link,
                num_bytes=upload_counts[i] * JPEG_IMAGE_BYTES,
            )
            for i in alive
        }
        transfer_list = [transfers[i] for i in alive]
        upload_time_list, makespan = uplink.stage_upload_times(transfer_list)
        upload_times = dict(zip(alive, upload_time_list))
        compute_times = [
            node_reports[i].inference_time_s + node_reports[i].diagnosis_time_s
            for i in alive
        ]
        uploads_start = stage_start + max(compute_times, default=0.0)
        if tracing:
            for i in alive:
                if upload_counts[i]:
                    tracer.span(
                        "net",
                        "upload",
                        uploads_start,
                        uploads_start + upload_times[i],
                        node=profiles[i].node_id,
                        stage=s,
                        system=config.system_id,
                        bytes=transfers[i].num_bytes,
                        **(extra or {}),
                    )

        fleet_accuracy = float(
            np.mean([node_reports[i].accuracy_before_update for i in alive])
        )

        # --- cloud side (sees the alive subset as the fleet) ----------
        alive_node_ids = tuple(profiles[i].node_id for i in alive)
        if is_initial:
            outcome = cloud_initialize(
                s,
                [uploads[i] for i in alive],
                runtime=runtime,
                base=base,
                all_node_ids=alive_node_ids,
            )
        else:
            for i in alive:
                scheduler.offer(s, profiles[i].node_id, uploads[i])
            canaries = scenario_canary_ids(assets.canary_ids, alive_node_ids)
            outcome = cloud_try_update(
                s,
                fleet_accuracy,
                lambda: canary_pool(assets, s, canaries),
                runtime=runtime,
                base=base,
                all_node_ids=alive_node_ids,
            )
        push_bytes_per_node = outcome.push_bytes_per_node
        active_version = registry.active.version

        # --- stage timeline tail: cloud update, then model push-down --
        update_start = uploads_start + makespan
        update_end = update_start + outcome.modeled_update_time_s
        push_times = {
            profiles[i].node_id: profiles[i].link.model_push_time_s(
                push_bytes_per_node[profiles[i].node_id]
            )
            for i in alive
        }
        if tracing:
            if outcome.modeled_update_time_s > 0:
                tracer.span(
                    "cloud",
                    "init" if is_initial else "update",
                    update_start,
                    update_end,
                    stage=s,
                    system=config.system_id,
                    pooled=outcome.pooled_for_training,
                    promoted=outcome.promoted,
                    **(extra or {}),
                )
            tracer.event(
                "cloud",
                "decision",
                update_end,
                stage=s,
                system=config.system_id,
                updated=outcome.updated,
                promoted=outcome.promoted,
                **rollback_attrs(outcome),
                **(extra or {}),
            )
            for i in alive:
                down_bytes = push_bytes_per_node[profiles[i].node_id]
                if down_bytes:
                    tracer.span(
                        "net",
                        "push",
                        update_end,
                        update_end + push_times[profiles[i].node_id],
                        node=profiles[i].node_id,
                        stage=s,
                        system=config.system_id,
                        bytes=down_bytes,
                    )
        cursor = update_end + max(push_times.values(), default=0.0)
        for i in alive:
            if push_bytes_per_node[profiles[i].node_id]:
                node_states[i] = registry.active.state
                node_version[i] = active_version

        # --- per-node head specialization -----------------------------
        head_bytes_per_node = {i: 0 for i in alive}
        head_versions: list[int] = []
        if outcome.promoted and spec.heads is not None:
            updates = run_head_updates(
                spec,
                plans,
                assets,
                registry,
                head_net,
                stage_index=s,
                alive_ids=alive_node_ids,
            )
            head_tail = 0.0
            for update in updates:
                report.head_updates.append(strip_state(update))
                if not update.accepted:
                    continue
                head_versions.append(update.version)
                group_state[update.group] = (active_version, update.state)
                for node_id in update.member_ids:
                    i = node_id  # node_id == profile index in flat fleets
                    head_bytes_per_node[i] += update.push_bytes
                    node_states[i] = update.state
                    push_s = profiles[i].link.model_push_time_s(
                        update.push_bytes
                    )
                    head_tail = max(head_tail, push_s)
                    if tracing:
                        tracer.span(
                            "net",
                            "push-head",
                            cursor,
                            cursor + push_s,
                            node=profiles[i].node_id,
                            stage=s,
                            system=config.system_id,
                            bytes=update.push_bytes,
                            head_group=update.group,
                        )
            cursor += head_tail

        # --- per-node records -----------------------------------------
        stage_download_bytes = reconcile_bytes
        for i in alive:
            profile = profiles[i]
            node_report = node_reports[i]
            down = (
                push_bytes_per_node[profile.node_id] + head_bytes_per_node[i]
            )
            stage_download_bytes += down
            record = NodeStageRecord(
                stage_index=s,
                node_id=profile.node_id,
                acquired=node_report.acquired_images,
                uploaded=upload_counts[i],
                accuracy_on_new=node_report.accuracy_before_update,
                upload_time_s=upload_times[i],
                upload_solo_time_s=uplink.solo_time(transfers[i]),
                upload_energy_j=profile.link.image_upload_energy_j(
                    upload_counts[i]
                ),
                node_compute_time_s=(
                    node_report.inference_time_s + node_report.diagnosis_time_s
                ),
                node_compute_energy_j=node_report.node_energy_j,
                download_bytes=down,
                download_energy_j=profile.link.model_push_energy_j(down),
            )
            trajectory = fleet_report.nodes[i]
            trajectory.records.append(record)
            trajectory.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
            if down:
                trajectory.ledger.record_download(s, down)
            fleet_report.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
        if stage_download_bytes > reconcile_bytes:
            fleet_report.ledger.record_download(
                s, stage_download_bytes - reconcile_bytes
            )

        eval_accuracy = evaluate(cloud.inference_net, assets.eval_data)
        fleet_report.stages.append(
            FleetStageRecord(
                stage_index=s,
                acquired=sum(
                    node_reports[i].acquired_images for i in alive
                ),
                uploaded=sum(upload_counts[i] for i in alive),
                pooled_for_training=outcome.pooled_for_training,
                updated=outcome.updated,
                promoted=outcome.promoted,
                fleet_accuracy_on_new=fleet_accuracy,
                eval_accuracy=eval_accuracy,
                modeled_update_time_s=outcome.modeled_update_time_s,
                modeled_cloud_energy_j=outcome.modeled_cloud_energy_j,
                upload_makespan_s=makespan,
                download_bytes=stage_download_bytes,
            )
        )
        report.stage_info.append(
            ScenarioStageInfo(
                stage_index=s,
                phase=phase,
                alive=alive_node_ids,
                reconciled=tuple(reconciled),
                reconcile_bytes=reconcile_bytes,
                head_versions=tuple(head_versions),
            )
        )
        if tracing:
            tracer.event(
                "scenario",
                "stage",
                stage_start,
                stage=s,
                system=config.system_id,
                alive=len(alive),
                reconciled=len(reconciled),
                **(extra or {}),
            )
        m = runtime.metrics
        if m is not None:
            sys_id = config.system_id
            m.counter("fleet.stages", system=sys_id).inc()
            m.counter("fleet.images.acquired", system=sys_id).inc(
                sum(node_reports[i].acquired_images for i in alive)
            )
            m.counter("fleet.images.uploaded", system=sys_id).inc(
                sum(upload_counts[i] for i in alive)
            )
            m.counter("scenario.reconciliations", system=sys_id).inc(
                len(reconciled)
            )
            m.counter("scenario.reconcile_bytes", system=sys_id).inc(
                reconcile_bytes
            )
            if head_versions:
                m.counter("scenario.head_updates", system=sys_id).inc(
                    len(head_versions)
                )
            snap = fleet_report.ledger.snapshot()
            m.gauge("fleet.bytes.uploaded", system=sys_id).set(
                snap.uploaded_bytes
            )
            m.gauge("fleet.bytes.downloaded", system=sys_id).set(
                snap.downloaded_bytes
            )
    fleet_report.rollouts = list(scheduler.history)
    finalize_report(report, runtime, assets, plans)
    return report
