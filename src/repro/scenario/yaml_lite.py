"""Minimal line-anchored YAML-subset loader for scenario files.

The scenario DSL deliberately depends on no third-party YAML parser: the
container image carries only the numeric toolchain, and a full YAML 1.2
implementation is far more grammar than a scenario file needs.  This
module parses the subset the DSL actually uses and — unlike most loaders
— keeps the *source line* of every value, so :mod:`repro.scenario.schema`
can raise errors that point at the offending line of the user's file.

Supported subset:

- block mappings (``key: value`` / ``key:`` followed by an indented block)
- block sequences (``- item``, including ``- key: value`` inline mappings)
- inline sequences of scalars (``[1, 2, 3]``)
- scalars: ints, floats (incl. scientific notation), ``true``/``false``,
  ``null``/``~``, single/double-quoted strings, bare strings
- ``#`` comments (full-line and trailing)

Anchors, aliases, multi-line strings, flow mappings, and tabs are out of
scope and raise :class:`YamlError`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node", "YamlError", "load", "parse"]


class YamlError(ValueError):
    """A parse failure, carrying the 1-based source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Node:
    """One parsed value plus the source line it started on.

    ``value`` is a ``dict[str, Node]`` (mapping), ``list[Node]``
    (sequence), or a plain scalar (``int | float | bool | str | None``).
    """

    value: object
    line: int

    def strip(self) -> object:
        """Recursively drop line anchors, returning plain data."""
        if isinstance(self.value, dict):
            return {k: v.strip() for k, v in self.value.items()}
        if isinstance(self.value, list):
            return [item.strip() for item in self.value]
        return self.value


@dataclass(frozen=True)
class _Line:
    number: int
    indent: int
    content: str


def _strip_comment(raw: str, number: int) -> str:
    """Remove a trailing ``#`` comment, respecting quoted strings."""
    quote = None
    for idx, ch in enumerate(raw):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "#" and (idx == 0 or raw[idx - 1] in " \t"):
            return raw[:idx]
    if quote is not None:
        raise YamlError("unterminated quoted string", number)
    return raw


def _split_lines(text: str) -> list[_Line]:
    lines = []
    for number, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", number)
        content = _strip_comment(raw, number).rstrip()
        if not content.strip():
            continue
        indent = len(content) - len(content.lstrip(" "))
        lines.append(_Line(number, indent, content.strip()))
    return lines


def _parse_scalar(text: str, number: int) -> object:
    t = text.strip()
    if t in ("null", "~", ""):
        return None
    if t in ("true", "True"):
        return True
    if t in ("false", "False"):
        return False
    if len(t) >= 2 and t[0] == t[-1] and t[0] in ("'", '"'):
        return t[1:-1]
    if t.startswith("["):
        return _parse_inline_list(t, number)
    if t.startswith("{"):
        raise YamlError("flow mappings ({...}) are not supported", number)
    try:
        return int(t, 10)
    except ValueError:
        pass
    try:
        return float(t)
    except ValueError:
        pass
    if ":" in t and t.split(":", 1)[1].startswith(" "):
        raise YamlError(
            f"ambiguous scalar {t!r}: quote it if a literal string "
            "was intended",
            number,
        )
    return t


def _parse_inline_list(text: str, number: int) -> list[Node]:
    if not text.endswith("]"):
        raise YamlError("unterminated inline list", number)
    body = text[1:-1].strip()
    if "[" in body or "]" in body:
        raise YamlError("nested inline lists are not supported", number)
    if not body:
        return []
    items = []
    for part in body.split(","):
        part = part.strip()
        if not part:
            raise YamlError("empty item in inline list", number)
        items.append(Node(_parse_scalar(part, number), number))
    return items


_KEY_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_-.")


def _split_key(content: str, number: int) -> tuple[str, str]:
    if ":" not in content:
        raise YamlError(f"expected 'key: value', got {content!r}", number)
    key, _, rest = content.partition(":")
    key = key.strip()
    if rest and not rest.startswith(" "):
        raise YamlError(f"missing space after ':' in {content!r}", number)
    if not key or not set(key.lower()) <= _KEY_OK:
        raise YamlError(f"invalid mapping key {key!r}", number)
    return key, rest.strip()


class _Parser:
    def __init__(self, lines: list[_Line]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> _Line | None:
        if self.pos < len(self.lines):
            return self.lines[self.pos]
        return None

    def parse_block(self, indent: int) -> Node:
        line = self.peek()
        assert line is not None
        if line.content == "-" or line.content.startswith("- "):
            return self.parse_sequence(indent)
        return self.parse_mapping(indent)

    def parse_mapping(self, indent: int) -> Node:
        entries: dict[str, Node] = {}
        first_line = self.lines[self.pos].number
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlError(
                    f"unexpected indent ({line.indent} > {indent})",
                    line.number,
                )
            if line.content.startswith("- "):
                raise YamlError(
                    "sequence item where a mapping key was expected",
                    line.number,
                )
            key, rest = _split_key(line.content, line.number)
            if key in entries:
                raise YamlError(f"duplicate key {key!r}", line.number)
            self.pos += 1
            if rest:
                entries[key] = Node(_parse_scalar(rest, line.number), line.number)
            else:
                child = self.peek()
                if child is not None and child.indent > indent:
                    entries[key] = self.parse_block(child.indent)
                else:
                    entries[key] = Node(None, line.number)
        return Node(entries, first_line)

    def parse_sequence(self, indent: int) -> Node:
        items: list[Node] = []
        first_line = self.lines[self.pos].number
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                break
            if line.indent > indent:
                raise YamlError(
                    f"unexpected indent ({line.indent} > {indent})",
                    line.number,
                )
            if line.content != "-" and not line.content.startswith("- "):
                break
            rest = line.content[1:].strip()
            if not rest:
                self.pos += 1
                child = self.peek()
                if child is None or child.indent <= indent:
                    items.append(Node(None, line.number))
                else:
                    items.append(self.parse_block(child.indent))
            elif ":" in rest and _looks_like_mapping(rest):
                # "- key: value": a mapping whose first entry shares the
                # dash's line; continuation keys sit two columns deeper.
                item_indent = indent + 2
                self.lines[self.pos] = _Line(line.number, item_indent, rest)
                items.append(self.parse_mapping(item_indent))
            else:
                self.pos += 1
                items.append(Node(_parse_scalar(rest, line.number), line.number))
        return Node(items, first_line)


def _looks_like_mapping(rest: str) -> bool:
    key, _, tail = rest.partition(":")
    return bool(key) and set(key.strip().lower()) <= _KEY_OK and (
        not tail or tail.startswith(" ")
    )


def parse(text: str) -> Node:
    """Parse ``text`` into a line-anchored :class:`Node` tree."""
    lines = _split_lines(text)
    if not lines:
        return Node({}, 1)
    parser = _Parser(lines)
    root = parser.parse_block(lines[0].indent)
    leftover = parser.peek()
    if leftover is not None:
        raise YamlError(
            f"unparsed content {leftover.content!r}", leftover.number
        )
    return root


def load(text: str) -> object:
    """Parse ``text`` and return plain data (no line anchors)."""
    return parse(text).strip()
