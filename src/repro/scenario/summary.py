"""Deterministic scenario summaries: replicates and bootstrap CIs.

A scenario run is summarized as a JSON document whose bytes are a pure
function of the YAML spec: replicate ``r`` reseeds the whole fleet with
``seed + 9973*r`` (replicate 0 is the spec's own seed, so a
single-replicate summary matches a direct engine run), and the bootstrap
confidence intervals resample with their own salted ``SeedSequence``.
Two invocations of the same spec — at any worker count — must produce
byte-identical summary text; the CI job diffs exactly that.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.scenario.event import run_scenario_event
from repro.scenario.lockstep import run_scenario_lockstep
from repro.scenario.report import ScenarioReport
from repro.scenario.schema import ScenarioSpec

__all__ = [
    "replicate_seed",
    "replicate_spec",
    "run_replicate",
    "replicate_metrics",
    "bootstrap_ci",
    "build_summary",
    "summary_json",
]

#: spacing between replicate seeds (prime, so reseeded streams never
#: collide with the +1/+5/+11/+17 offsets the asset pipeline uses)
_REPLICATE_STRIDE = 9973

#: seed-sequence salt for the bootstrap resampling RNG
_BOOTSTRAP_SALT = 424243


def replicate_seed(spec: ScenarioSpec, index: int) -> int:
    return spec.seed + _REPLICATE_STRIDE * index


def replicate_spec(spec: ScenarioSpec, index: int) -> ScenarioSpec:
    """The spec with fleet and base reseeded for replicate ``index``."""
    if index == 0:
        return spec
    seed = replicate_seed(spec, index)
    fleet = replace(
        spec.fleet, seed=seed, base=replace(spec.fleet.base, seed=seed)
    )
    return replace(spec, seed=seed, fleet=fleet)


def run_replicate(
    spec: ScenarioSpec,
    *,
    engine: str | None = None,
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ScenarioReport:
    """Run one replicate on the spec's engine (or an override)."""
    engine = engine if engine is not None else spec.engine
    if engine == "lockstep":
        return run_scenario_lockstep(
            spec, workers=workers, tracer=tracer, metrics=metrics
        )
    if engine == "event":
        return run_scenario_event(
            spec, barrier=spec.barrier, tracer=tracer, metrics=metrics
        )
    raise ValueError(f"unknown engine {engine!r}")


def replicate_metrics(report: ScenarioReport) -> dict[str, float]:
    """The scalar metrics one replicate contributes to the summary."""
    fleet = report.fleet
    num_nodes = len(fleet.nodes)
    num_stages = len(report.stage_info)
    node_accuracies = [
        r.accuracy_on_new for t in fleet.nodes for r in t.records
    ]
    out = {
        "final_eval_accuracy": report.final_eval_accuracy,
        "mean_node_accuracy": float(np.mean(node_accuracies)),
        "promotions": float(report.promotions),
        "rejections": float(report.rejections),
        "uploaded_bytes": float(fleet.total_uploaded_bytes),
        "downloaded_bytes": float(fleet.total_downloaded_bytes),
        "reconciliations": float(report.reconciliations),
        "reconcile_bytes": float(report.total_reconcile_bytes),
        "head_versions": float(
            sum(len(v) for v in report.head_version_map().values())
        ),
        "downed_node_stages": float(
            num_nodes * num_stages
            - sum(len(info.alive) for info in report.stage_info)
        ),
    }
    for name, accuracy in sorted(report.phase_accuracies.items()):
        out[f"accuracy_{name}"] = accuracy
    for name, accuracy in sorted(report.head_accuracies.items()):
        out[f"accuracy_{name}"] = accuracy
    return out


def bootstrap_ci(
    values: list[float],
    *,
    samples: int,
    confidence: float,
    rng: np.random.Generator,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap CI of the mean of ``values``."""
    data = np.asarray(values, dtype=np.float64)  # repro-lint: ignore[RPR004] summary statistics accumulator, not a training hot path
    if data.size == 1:
        return float(data[0]), float(data[0])
    means = np.empty(samples, dtype=np.float64)  # repro-lint: ignore[RPR004] bootstrap means must not drift with replicate count; f64 keeps the 10-decimal rounding stable
    for b in range(samples):
        idx = rng.integers(0, data.size, size=data.size)
        means[b] = data[idx].mean()
    lo = float(np.percentile(means, (1.0 - confidence) / 2.0 * 100.0))
    hi = float(np.percentile(means, (1.0 + confidence) / 2.0 * 100.0))
    return lo, hi


def _round(x: float) -> float:
    return round(float(x), 10)


def build_summary(
    spec: ScenarioSpec,
    *,
    engine: str | None = None,
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Run every replicate and aggregate the deterministic summary dict."""
    per_replicate: list[dict] = []
    for r in range(spec.replicates.count):
        rep = replicate_spec(spec, r)
        report = run_replicate(
            rep, engine=engine, workers=workers, tracer=tracer,
            metrics=metrics,
        )
        row = {"replicate": r, "seed": rep.seed}
        row.update(
            {k: _round(v) for k, v in replicate_metrics(report).items()}
        )
        per_replicate.append(row)
    metric_names = sorted(
        {k for row in per_replicate for k in row if k not in ("replicate", "seed")}
    )
    rng = np.random.default_rng(
        np.random.SeedSequence((spec.seed, _BOOTSTRAP_SALT))
    )
    aggregated: dict[str, dict] = {}
    for name in metric_names:
        values = [row[name] for row in per_replicate if name in row]
        lo, hi = bootstrap_ci(
            values,
            samples=spec.replicates.bootstrap_samples,
            confidence=spec.replicates.confidence,
            rng=rng,
        )
        aggregated[name] = {
            "values": [_round(v) for v in values],
            "mean": _round(np.mean(values)),
            "ci_lo": _round(lo),
            "ci_hi": _round(hi),
        }
    return {
        "schema": 1,
        "scenario": {
            "name": spec.name,
            "description": spec.description,
            "engine": engine if engine is not None else spec.engine,
            "barrier": spec.barrier,
            "seed": spec.seed,
            "nodes": spec.fleet.num_nodes,
            "stages": spec.num_stages,
            "processes": list(spec.processes),
        },
        "replicates": {
            "count": spec.replicates.count,
            "bootstrap_samples": spec.replicates.bootstrap_samples,
            "confidence": spec.replicates.confidence,
        },
        "metrics": aggregated,
        "per_replicate": per_replicate,
    }


def summary_json(summary: dict) -> str:
    """Canonical byte-stable rendering of a summary dict."""
    return json.dumps(summary, sort_keys=True, indent=2) + "\n"  # repro-lint: ignore[RPR016] the canonical summary artifact itself; byte-stability is pinned by the scenario-smoke CI diff
