"""Event-driven scenario engine: churn, phases, and heads on the kernel.

:class:`ScenarioEventFleet` subclasses the flat event fleet and reuses
its epoch body verbatim (sense -> infer/diagnose -> upload as flows), so
per-node compute and transport are bit-identical with the flat engine.
The scenario deltas live in the overridden processes:

* node processes iterate the stage list by index; a **down** stage
  parks the node at that round's barrier event (it uploads nothing and
  receives nothing) — in async mode too, so a crashed node can never
  race ahead of the fleet-wide round that excludes it;
* a **rejoining** node whose held version went stale reconciles first:
  the current model (its group head when one matches) travels down the
  shared backhaul as a real flow before the node computes;
* the Cloud is strictly **round-based** over the alive subset of each
  stage (arrivals from future rounds are buffered), runs head
  specializations after every promoted rollout, and closes the round.

With ``barrier=True`` this reproduces the lockstep scenario engine's
accuracy trajectories, byte ledgers, registry history, and stage info
exactly; without it, nodes free-run between rounds like the flat async
mode, and no lockstep claim is made.
"""

from __future__ import annotations

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.core.systems import system_by_id
from repro.fleet.async_sim import EpochRecord, _EventFleet
from repro.fleet.simulation import (
    FleetAssets,
    cloud_initialize,
    cloud_try_update,
)
from repro.fleet.uplink import model_state_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.scenario.assets import prepare_scenario_assets
from repro.scenario.heads import build_head_net, run_head_updates
from repro.scenario.processes import build_plans
from repro.scenario.report import (
    ScenarioReport,
    ScenarioStageInfo,
    canary_pool,
    configure_cloud,
    finalize_report,
    scenario_canary_ids,
    strip_state,
)
from repro.scenario.schema import ScenarioSpec

__all__ = ["ScenarioEventFleet", "run_scenario_event"]


class ScenarioEventFleet(_EventFleet):
    """Flat event fleet plus churn, reconciliation, and head processes."""

    def __init__(
        self,
        spec: ScenarioSpec,
        assets: FleetAssets,
        *,
        barrier: bool,
        acquire_time_s: float = 0.0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        system_id: str = "d",
    ) -> None:
        super().__init__(
            system_by_id(system_id),
            assets,
            horizon_s=None,
            barrier=barrier,
            acquire_time_s=acquire_time_s,
            tracer=tracer,
            metrics=metrics,
        )
        self.spec = spec
        self.plans = build_plans(spec, assets.profiles)
        configure_cloud(self.runtime, spec)
        self.scenario_report = ScenarioReport(
            spec=spec,
            mode=self.report.mode,
            fleet=self.report,
            registry=self.runtime.registry,
        )
        # Main-track version each node's trunk is based on (0 = the
        # pre-registry warm-start state every node boots with).
        self.node_version = [0] * len(self.profiles)
        self.head_net = build_head_net(spec) if spec.heads is not None else None
        # group -> (base main version, merged full state) of the latest
        # accepted head, so rejoining members reconcile to their own head.
        self.group_state: dict[int, tuple[int, dict]] = {}
        #: stage -> [(node_id, bytes)] reconciliations, for stage info
        self._reconciled: dict[int, list[tuple[int, int]]] = {}
        #: arrivals that belong to a future round (async mode only)
        self._pending: dict[int, list] = {}

    # ------------------------------------------------------------------
    # Node processes
    # ------------------------------------------------------------------
    def _alive(self, i: int, s: int) -> bool:
        if self.plans.churn is None:
            return True
        return self.plans.churn.alive(i, s)

    def _node_proc(self, i: int):
        profile = self.profiles[i]
        stages = self.assets.node_stages[i]
        trajectory = self.report.nodes[i]
        num_stages = len(stages)
        for s in range(num_stages):
            if not self._alive(i, s):
                # A down node contributes nothing this round and must not
                # race ahead of it — even async nodes park here, because
                # the round that excludes them defines when they rejoin.
                yield self._round_event(s)
                continue
            yield from self._maybe_reconcile(i, s)
            stage = stages[s]
            outcome = yield from self._node_epoch_body(i, profile, stage, s)
            (
                start,
                node_report,
                compute_s,
                count,
                upload_start,
                upload_done,
                upload_energy,
            ) = outcome
            if self.barrier:
                yield self._round_event(s)
            trajectory.records.append(
                EpochRecord(
                    epoch=s,
                    stage_index=stage.index,
                    node_id=profile.node_id,
                    start_s=start,
                    acquired=node_report.acquired_images,
                    uploaded=count,
                    accuracy_on_new=node_report.accuracy_before_update,
                    compute_time_s=compute_s,
                    upload_start_s=upload_start,
                    upload_done_s=upload_done,
                    upload_bytes=count * JPEG_IMAGE_BYTES,
                    upload_energy_j=upload_energy,
                    node_compute_energy_j=node_report.node_energy_j,
                )
            )
            trajectory.ledger.record(s, node_report.acquired_images, count)
            self.report.ledger.record(s, node_report.acquired_images, count)
        trajectory.finish_s = self.sim.now

    def _maybe_reconcile(self, i: int, s: int):
        """Catch a rejoined node up to the current model, as a flow."""
        registry = self.runtime.registry
        active_version = registry.active.version if len(registry) else 0
        if self.node_version[i] == active_version:
            return
        target = (
            registry.active.state if len(registry) else self.assets.initial_state
        )
        if self.plans.heads is not None:
            held = self.group_state.get(self.plans.heads.group_of(i))
            if held is not None and held[0] == active_version:
                target = held[1]
        num_bytes = model_state_bytes(target)
        profile = self.profiles[i]
        start = self.sim.now
        yield self.downlink.transfer(
            num_bytes,
            profile.link.downlink_bps,
            latency_s=profile.link.latency_s,
            tag=profile.node_id,
        )
        self.tracer.span(
            "net",
            "reconcile",
            start,
            self.sim.now,
            node=profile.node_id,
            stage=s,
            system=self.config.system_id,
            bytes=num_bytes,
            version=active_version,
        )
        self.node_states[i] = target
        self.node_version[i] = active_version
        trajectory = self.report.nodes[i]
        trajectory.download_bytes += num_bytes
        trajectory.download_energy_j += profile.link.model_push_energy_j(
            num_bytes
        )
        trajectory.ledger.record_download(s, num_bytes)
        self.report.ledger.record_download(s, num_bytes)
        self._reconciled.setdefault(s, []).append((profile.node_id, num_bytes))
        if self.metrics is not None:
            self.metrics.counter(
                "scenario.reconciliations", system=self.config.system_id
            ).inc()
            self.metrics.counter(
                "scenario.reconcile_bytes", system=self.config.system_id
            ).inc(num_bytes)

    # ------------------------------------------------------------------
    # Cloud process: strictly round-based over the alive subset
    # ------------------------------------------------------------------
    def _spawn_processes(self) -> None:
        for i in range(len(self.profiles)):
            self.sim.process(self._node_proc(i))
        self.sim.process(self._cloud_rounds())

    def _collect_stage(self, s: int, alive_ids: tuple[int, ...]):
        """All alive arrivals for round ``s``, buffering future rounds."""
        got = list(self._pending.pop(s, []))
        while len(got) < len(alive_ids):
            arrival = yield self.arrivals.get()
            if arrival.epoch == s:
                got.append(arrival)
            else:
                self._pending.setdefault(arrival.epoch, []).append(arrival)
        got.sort(key=lambda a: a.node_id)
        return got

    def _cloud_rounds(self):
        num_stages = len(self.assets.node_stages[0])
        num_nodes = len(self.profiles)
        for r in range(num_stages):
            alive = self.plans.alive_indices(r, num_nodes)
            alive_ids = tuple(self.profiles[i].node_id for i in alive)
            arrivals = yield from self._collect_stage(r, alive_ids)
            fleet_accuracy = float(np.mean([a.accuracy for a in arrivals]))
            trigger = self.sim.now
            if r == 0:
                outcome = cloud_initialize(
                    0,
                    [a.data for a in arrivals],
                    runtime=self.runtime,
                    base=self.base,
                    all_node_ids=alive_ids,
                )
            else:
                for a in arrivals:
                    self.runtime.scheduler.offer(a.epoch, a.node_id, a.data)
                canaries = scenario_canary_ids(
                    self.assets.canary_ids, alive_ids
                )
                outcome = cloud_try_update(
                    r,
                    fleet_accuracy,
                    lambda: canary_pool(self.assets, r, canaries),
                    runtime=self.runtime,
                    base=self.base,
                    all_node_ids=alive_ids,
                )
            if outcome.modeled_update_time_s > 0:
                yield self.sim.timeout(outcome.modeled_update_time_s)
            if outcome.updated:
                self._record_update(
                    "init" if r == 0 else "rollout", trigger, outcome, stage=r
                )
            yield from self._deliver_outcome(outcome, stage_hint=r)
            active_version = self.runtime.registry.active.version
            for node_id in sorted(outcome.push_bytes_per_node):
                if outcome.push_bytes_per_node[node_id] > 0:
                    self.node_version[self.index_of[node_id]] = active_version
            head_versions = yield from self._run_heads(
                r, alive_ids, active_version, promoted=outcome.promoted
            )
            recon = sorted(self._reconciled.get(r, []))
            phase = self.plans.phase_name(r)
            self.scenario_report.stage_info.append(
                ScenarioStageInfo(
                    stage_index=r,
                    phase=phase,
                    alive=alive_ids,
                    reconciled=tuple(n for n, _ in recon),
                    reconcile_bytes=sum(b for _, b in recon),
                    head_versions=head_versions,
                )
            )
            attrs = {"phase": phase} if phase is not None else {}
            self.tracer.event(
                "scenario",
                "stage",
                self.sim.now,
                stage=r,
                system=self.config.system_id,
                alive=len(alive_ids),
                reconciled=len(recon),
                **attrs,
            )
            self._round_event(r).succeed(r + 1 < num_stages)

    def _run_heads(
        self,
        r: int,
        alive_ids: tuple[int, ...],
        active_version: int,
        *,
        promoted: bool,
    ):
        """Specialize per-group heads after a promotion; push as flows."""
        if not promoted or self.spec.heads is None:
            return ()
        updates = run_head_updates(
            self.spec,
            self.plans,
            self.assets,
            self.runtime.registry,
            self.head_net,
            stage_index=r,
            alive_ids=alive_ids,
        )
        head_versions: list[int] = []
        procs = []
        for update in updates:
            self.scenario_report.head_updates.append(strip_state(update))
            if not update.accepted:
                continue
            head_versions.append(update.version)
            self.group_state[update.group] = (active_version, update.state)
            for node_id in update.member_ids:
                procs.append(
                    self.sim.process(
                        self._head_push_proc(
                            node_id, update.push_bytes, update.state,
                            r, update.group,
                        )
                    )
                )
            if self.metrics is not None:
                self.metrics.counter(
                    "scenario.head_updates", system=self.config.system_id
                ).inc()
        for proc in procs:
            yield proc
        return tuple(head_versions)

    def _head_push_proc(
        self, node_id: int, num_bytes: int, state, stage_hint: int, group: int
    ):
        """Like the parent's push proc, but carrying a merged head state."""
        i = self.index_of[node_id]
        profile = self.profiles[i]
        push_start = self.sim.now
        yield self.downlink.transfer(
            num_bytes,
            profile.link.downlink_bps,
            latency_s=profile.link.latency_s,
            tag=node_id,
        )
        self.tracer.span(
            "net",
            "push-head",
            push_start,
            self.sim.now,
            node=node_id,
            stage=stage_hint,
            system=self.config.system_id,
            bytes=num_bytes,
            head_group=group,
        )
        self.node_states[i] = state
        trajectory = self.report.nodes[i]
        trajectory.download_bytes += num_bytes
        trajectory.download_energy_j += profile.link.model_push_energy_j(
            num_bytes
        )
        trajectory.ledger.record_download(stage_hint, num_bytes)
        self.report.ledger.record_download(stage_hint, num_bytes)

    # ------------------------------------------------------------------
    def run_scenario(self) -> ScenarioReport:
        self.run()
        finalize_report(
            self.scenario_report, self.runtime, self.assets, self.plans
        )
        return self.scenario_report


def run_scenario_event(
    spec: ScenarioSpec,
    *,
    assets: FleetAssets | None = None,
    barrier: bool = False,
    acquire_time_s: float = 0.0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    system_id: str = "d",
) -> ScenarioReport:
    """Run one scenario replicate on the event engine.

    ``barrier=True`` is the lockstep-reference mode: it reproduces
    :func:`repro.scenario.lockstep.run_scenario_lockstep` trajectories,
    ledgers, registry history, and stage info on the event kernel.
    """
    if assets is None:
        assets = prepare_scenario_assets(spec)
    engine = ScenarioEventFleet(
        spec,
        assets,
        barrier=barrier,
        acquire_time_s=acquire_time_s,
        tracer=tracer,
        metrics=metrics,
        system_id=system_id,
    )
    return engine.run_scenario()
