"""Scenario asset preparation: fleet assets with class-incremental streams.

A scenario without a class-incremental process consumes the plain
:func:`repro.fleet.simulation.prepare_fleet_assets` output — cache keys
and bytes identical to a bare fleet run.  With one, every node's stream
draws labels from the phase plan's per-stage allowed classes, so early
stages contain only the unlocked class groups; the held-out eval set
keeps the full label space (that is what makes forgetting measurable).
"""

from __future__ import annotations

import numpy as np

from repro.core.simulation import Scenario
from repro.data.cache import dataset_cache
from repro.data.datasets import Dataset, make_dataset
from repro.data.drift import DriftModel
from repro.data.images import ImageGenerator
from repro.data.stream import AcquisitionStage, IoTStream
from repro.fleet.profiles import NodeProfile
from repro.fleet.simulation import (
    FleetAssets,
    _build_cloud,
    prepare_fleet_assets,
)
from repro.nn.config import default_dtype
from repro.scenario.processes import ClassPhasePlan
from repro.scenario.schema import ScenarioSpec
from repro.selfsup.permutations import PermutationSet

__all__ = ["prepare_scenario_assets"]


def _scheduled_node_stream(
    profile: NodeProfile,
    base: Scenario,
    class_schedule: tuple[tuple[int, ...], ...],
) -> list[AcquisitionStage]:
    """One node's class-scheduled acquisition stages, cache-memoized.

    The schedule is part of the cache key: the same profile with a
    different phase plan is a different stream.
    """
    key = (
        "scenario-node-stream",
        profile.seed,
        profile.severities,
        base.image_size,
        base.num_classes,
        base.stream_scale,
        base.schedule_k,
        class_schedule,
        np.dtype(default_dtype()).str,
    )

    def build() -> list[AcquisitionStage]:
        rng = np.random.default_rng(profile.seed)
        generator = ImageGenerator(base.image_size, base.num_classes, rng=rng)
        stream = IoTStream(
            generator,
            scale=base.stream_scale,
            schedule_k=base.schedule_k,
            severities=profile.severities,
            rng=rng,
            class_schedule=class_schedule,
        )
        return stream.stages()

    return dataset_cache.get_or_build(key, build)


def prepare_scenario_assets(spec: ScenarioSpec) -> FleetAssets:
    """Fleet assets for one scenario replicate.

    Mirrors :func:`prepare_fleet_assets` step for step (pretrain on the
    pooled stage-0 data, shared warm-start weights, seeded canary draw)
    so a scenario with no class-incremental process hits the exact same
    cached artifacts as a bare fleet run.
    """
    if spec.class_incremental is None:
        return prepare_fleet_assets(spec.fleet)

    scenario = spec.fleet
    base = scenario.base
    plan = ClassPhasePlan.build(spec.class_incremental)
    schedule = plan.schedule(len(base.schedule_k))
    profiles = scenario.profiles()
    node_stages = [
        _scheduled_node_stream(p, base, schedule) for p in profiles
    ]
    eval_key = (
        "fleet-eval",
        scenario.seed,
        base.image_size,
        base.num_classes,
        base.eval_images,
        base.eval_severity,
        base.num_perms,
        np.dtype(default_dtype()).str,
    )

    def build_eval() -> dict:
        # Identical to the flat fleet's eval bundle (full label space, on
        # purpose) — and under the same key, so it is shared with it.
        rng = np.random.default_rng(scenario.seed + 11)
        eval_generator = ImageGenerator(
            base.image_size, base.num_classes, rng=rng
        )
        eval_data = make_dataset(
            base.eval_images,
            generator=eval_generator,
            drift=DriftModel(base.eval_severity, rng=rng),
            rng=rng,
        )
        permset = PermutationSet.generate(base.num_perms, rng=rng)
        return {"eval_data": eval_data, "permset": permset}

    eval_bundle = dataset_cache.get_or_build(eval_key, build_eval)
    eval_data = eval_bundle["eval_data"]
    permset = eval_bundle["permset"]
    pretrain_data = (
        Dataset.concat([stages[0].new_data for stages in node_stages])
        .take(base.pretrain_images)
        .as_unlabeled()
    )
    seed_cloud = _build_cloud(scenario, permset)
    seed_cloud.unsupervised_pretrain(
        pretrain_data, epochs=base.pretrain_epochs, batch_size=base.batch_size
    )
    trunk_state = seed_cloud.context_net.state_dict()
    stage0_pool = Dataset.concat(
        [stages[0].new_data for stages in node_stages]
    )
    seed_cloud.initialize_inference(
        stage0_pool,
        epochs=base.init_epochs,
        batch_size=base.batch_size,
        lr=base.init_lr,
    )
    initial_state = seed_cloud.model_state()
    canary_rng = np.random.default_rng(scenario.seed + 17)
    num_canary = max(
        1, int(round(scenario.canary_fraction * scenario.num_nodes))
    )
    canary_ids = tuple(
        int(i)
        for i in sorted(
            canary_rng.choice(
                scenario.num_nodes, size=num_canary, replace=False
            )
        )
    )
    return FleetAssets(
        scenario=scenario,
        profiles=profiles,
        node_stages=node_stages,
        eval_data=eval_data,
        pretrain_data=pretrain_data,
        permset=permset,
        trunk_state=trunk_state,
        initial_state=initial_state,
        canary_ids=canary_ids,
    )
