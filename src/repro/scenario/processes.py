"""Seeded scenario processes: churn, class phases, and head groups.

Each plan is a *pure function of the spec and the fleet seed*, fully
materialized before either engine starts.  That is what lets the
lockstep and event engines agree bit-for-bit: they consume identical
precomputed plans instead of sampling mid-run, so engine-internal event
ordering can never perturb who crashes, which classes arrive, or which
nodes share a head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fleet.profiles import NodeProfile
from repro.scenario.schema import (
    ChurnSpec,
    ClassIncrementalSpec,
    HeadSpec,
    ScenarioSpec,
)

__all__ = [
    "ChurnPlan",
    "ClassPhasePlan",
    "HeadGroupPlan",
    "ScenarioPlans",
    "build_plans",
]

#: salt mixed into the churn SeedSequence so churn draws never collide
#: with node/cloud streams derived from the same scenario seed
_CHURN_SALT = 99991


@dataclass(frozen=True)
class ChurnPlan:
    """Materialized crash/rejoin timetable: ``down[node][stage]``."""

    down: tuple[tuple[bool, ...], ...]

    @classmethod
    def build(
        cls, spec: ChurnSpec, *, num_nodes: int, num_stages: int, seed: int
    ) -> "ChurnPlan":
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, _CHURN_SALT))
        )
        down = [[False] * num_stages for _ in range(num_nodes)]
        remaining = [0] * num_nodes
        # Stage 0 always runs the full fleet: initialization needs every
        # node's first uploads, matching cloud_initialize's contract.
        for stage in range(1, num_stages):
            for node in range(num_nodes):
                if remaining[node] > 0:
                    down[node][stage] = True
                    remaining[node] -= 1
            for node in range(num_nodes):
                if down[node][stage]:
                    continue
                if rng.random() >= spec.rate:
                    continue
                outage = int(rng.integers(1, spec.max_outage_stages + 1))
                outage = min(outage, num_stages - stage)
                window = range(stage, stage + outage)
                # Never let a crash empty a stage: the cloud needs at
                # least one alive node to pool uploads from.
                if any(
                    sum(
                        1
                        for other in range(num_nodes)
                        if other != node and not down[other][s]
                    )
                    < 1
                    for s in window
                ):
                    continue
                for s in window:
                    down[node][s] = True
                remaining[node] = 0  # consumed by the explicit loop above
        return cls(down=tuple(tuple(row) for row in down))

    @property
    def num_stages(self) -> int:
        return len(self.down[0]) if self.down else 0

    def alive(self, node: int, stage: int) -> bool:
        return not self.down[node][stage]

    def alive_indices(self, stage: int) -> tuple[int, ...]:
        return tuple(
            i for i in range(len(self.down)) if not self.down[i][stage]
        )

    def rejoined(self, node: int, stage: int) -> bool:
        """True when ``node`` comes back up at ``stage`` after an outage."""
        return (
            stage > 0
            and not self.down[node][stage]
            and self.down[node][stage - 1]
        )

    def downed_node_stages(self) -> int:
        return sum(sum(1 for d in row if d) for row in self.down)


@dataclass(frozen=True)
class ClassPhasePlan:
    """Which class ids the stream may draw from at each stage."""

    groups: tuple[tuple[int, ...], ...]
    phase_stages: tuple[int, ...]

    @classmethod
    def build(cls, spec: ClassIncrementalSpec) -> "ClassPhasePlan":
        return cls(groups=spec.groups, phase_stages=spec.phase_stages)

    def phase_index(self, stage: int) -> int:
        idx = 0
        for k, start in enumerate(self.phase_stages):
            if stage >= start:
                idx = k
        return idx

    def phase_name(self, stage: int) -> str:
        return f"p{self.phase_index(stage)}"

    def allowed(self, stage: int) -> tuple[int, ...]:
        upto = self.phase_index(stage)
        classes: list[int] = []
        for group in self.groups[: upto + 1]:
            classes.extend(group)
        return tuple(sorted(classes))

    def schedule(self, num_stages: int) -> tuple[tuple[int, ...], ...]:
        return tuple(self.allowed(s) for s in range(num_stages))


@dataclass(frozen=True)
class HeadGroupPlan:
    """Deterministic node -> head-group assignment by drift profile."""

    assignment: tuple[int, ...]
    num_groups: int

    @classmethod
    def build(
        cls, spec: HeadSpec, profiles: list[NodeProfile]
    ) -> "HeadGroupPlan":
        # Nodes with similar drift exposure share a head: order by mean
        # severity (rounded so float noise cannot flip the sort), then by
        # node id for a total order, and chunk contiguously.
        order = sorted(
            range(len(profiles)),
            key=lambda i: (
                round(float(np.mean(profiles[i].severities)), 6),
                profiles[i].node_id,
            ),
        )
        assignment = [0] * len(profiles)
        chunk = -(-len(profiles) // spec.num_groups)  # ceil division
        for pos, node in enumerate(order):
            assignment[node] = min(pos // chunk, spec.num_groups - 1)
        return cls(assignment=tuple(assignment), num_groups=spec.num_groups)

    def group_of(self, node: int) -> int:
        return self.assignment[node]

    def members(self, group: int) -> tuple[int, ...]:
        return tuple(
            i for i, g in enumerate(self.assignment) if g == group
        )


@dataclass(frozen=True)
class ScenarioPlans:
    """The three composable processes, each optional."""

    churn: ChurnPlan | None
    phases: ClassPhasePlan | None
    heads: HeadGroupPlan | None

    def alive_indices(self, stage: int, num_nodes: int) -> tuple[int, ...]:
        if self.churn is None:
            return tuple(range(num_nodes))
        return self.churn.alive_indices(stage)

    def phase_name(self, stage: int) -> str | None:
        if self.phases is None:
            return None
        return self.phases.phase_name(stage)


def build_plans(
    spec: ScenarioSpec, profiles: list[NodeProfile]
) -> ScenarioPlans:
    """Materialize every configured process for one replicate."""
    churn = None
    if spec.churn is not None:
        churn = ChurnPlan.build(
            spec.churn,
            num_nodes=spec.fleet.num_nodes,
            num_stages=spec.num_stages,
            seed=spec.fleet.seed,
        )
    phases = None
    if spec.class_incremental is not None:
        phases = ClassPhasePlan.build(spec.class_incremental)
    heads = None
    if spec.heads is not None:
        heads = HeadGroupPlan.build(spec.heads, profiles)
    return ScenarioPlans(churn=churn, phases=phases, heads=heads)
