"""Scenario run reports and the helpers both engines share.

The engine-agnostic pieces live here on purpose: the lockstep and event
engines must call :func:`configure_cloud`, :func:`scenario_canary_ids`,
:func:`canary_pool`, and :func:`finalize_report` in the same order with
the same arguments, so every RNG stream they touch advances identically
— that is the mechanism behind the lockstep ≡ event-barrier equivalence
the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.registry import ModelRegistry
from repro.data.datasets import Dataset
from repro.fleet.simulation import FleetAssets, FleetRuntime
from repro.scenario.heads import HeadUpdate
from repro.scenario.processes import ScenarioPlans
from repro.scenario.schema import ScenarioSpec
from repro.transfer.finetune import evaluate, evaluate_on_classes
from repro.transfer.incremental import ReplayBuffer

__all__ = [
    "ScenarioStageInfo",
    "ScenarioReport",
    "configure_cloud",
    "scenario_canary_ids",
    "canary_pool",
    "strip_state",
    "finalize_report",
]

#: seed-sequence salt for the exemplar replay buffer's reservoir RNG
_REPLAY_SALT = 77171


@dataclass(frozen=True)
class ScenarioStageInfo:
    """Scenario-level view of one stage, identical across engines."""

    stage_index: int
    phase: str | None  # class-incremental phase name, if that process runs
    alive: tuple[int, ...]  # node ids that participated
    reconciled: tuple[int, ...]  # rejoined nodes that re-downloaded a model
    reconcile_bytes: int  # total stale-version catch-up download bytes
    head_versions: tuple[int, ...]  # head-track versions published this stage


@dataclass
class ScenarioReport:
    """Full outcome of one scenario replicate on either engine."""

    spec: ScenarioSpec
    mode: str  # "lockstep" | "event" | "event-barrier"
    fleet: object  # FleetReport or FleetEventReport
    registry: ModelRegistry
    stage_info: list[ScenarioStageInfo] = field(default_factory=list)
    head_updates: list[HeadUpdate] = field(default_factory=list)
    final_eval_accuracy: float = 0.0
    #: final active model's accuracy on eval images of each class group
    phase_accuracies: dict[str, float] = field(default_factory=dict)
    #: each group's latest specialized head on the full eval set
    head_accuracies: dict[str, float] = field(default_factory=dict)

    @property
    def promotions(self) -> int:
        return sum(1 for r in self.fleet.rollouts if r.promoted)

    @property
    def rejections(self) -> int:
        return sum(1 for r in self.fleet.rollouts if not r.promoted)

    @property
    def reconciliations(self) -> int:
        return sum(len(info.reconciled) for info in self.stage_info)

    @property
    def total_reconcile_bytes(self) -> int:
        return sum(info.reconcile_bytes for info in self.stage_info)

    def head_version_map(self) -> dict[int, tuple[int, ...]]:
        """Registry versions per head group, in publish order."""
        by_group: dict[int, list[int]] = {}
        for update in self.head_updates:
            if update.version is not None:
                by_group.setdefault(update.group, []).append(update.version)
        return {g: tuple(v) for g, v in sorted(by_group.items())}


def configure_cloud(runtime: FleetRuntime, spec: ScenarioSpec) -> None:
    """Arm the cloud's class-incremental machinery, if configured.

    Must be called right after :func:`build_fleet_runtime` in both
    engines: the replay buffer's RNG is seeded here, so call order is
    part of the determinism contract.
    """
    ci = spec.class_incremental
    if ci is None:
        return
    cloud = runtime.cloud
    cloud.distill_weight = ci.distill_weight
    cloud.distill_temperature = ci.temperature
    cloud.exemplar_buffer = ReplayBuffer(
        ci.exemplar_capacity,
        rng=np.random.default_rng(
            np.random.SeedSequence((spec.fleet.seed, _REPLAY_SALT))
        ),
    )


def scenario_canary_ids(
    canary_ids: tuple[int, ...], alive_ids: tuple[int, ...]
) -> tuple[int, ...]:
    """The canary subset the scheduler will actually use this stage.

    Mirrors :meth:`FleetScheduler.rollout`: configured canaries
    restricted to the alive fleet, falling back to the first alive node
    when every canary is down.
    """
    alive = frozenset(alive_ids)
    chosen = tuple(c for c in canary_ids if c in alive)
    if not chosen:
        chosen = alive_ids[:1]
    return chosen


def canary_pool(
    assets: FleetAssets, stage_index: int, canaries: tuple[int, ...]
) -> Dataset:
    """Fresh stage data of the canary nodes (validation set for the guard)."""
    return Dataset.concat(
        [assets.node_stages[i][stage_index].new_data for i in canaries]
    )


def strip_state(update: HeadUpdate) -> HeadUpdate:
    """Drop the merged weights before archiving an update in the report."""
    return replace(update, state=None)


def finalize_report(
    report: ScenarioReport,
    runtime: FleetRuntime,
    assets: FleetAssets,
    plans: ScenarioPlans,
) -> None:
    """Final-model evaluations shared by both engines (RNG-free)."""
    spec = report.spec
    registry = runtime.registry
    net = runtime.cloud.inference_net
    net.load_state_dict(registry.active.state)
    report.final_eval_accuracy = float(evaluate(net, assets.eval_data))
    if plans.phases is not None:
        for k, group in enumerate(plans.phases.groups):
            report.phase_accuracies[f"p{k}"] = float(
                evaluate_on_classes(net, assets.eval_data, group)
            )
    if spec.heads is not None and plans.heads is not None:
        for group in range(plans.heads.num_groups):
            latest = registry.latest(f"head-{group}")
            if latest is None:
                continue
            net.load_state_dict(latest.state)
            report.head_accuracies[f"head-{group}"] = float(
                evaluate(net, assets.eval_data)
            )
        net.load_state_dict(registry.active.state)
