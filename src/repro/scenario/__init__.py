"""YAML-driven scenario engine: churn, class phases, per-node heads.

A *scenario* composes seeded processes — node crash/rejoin churn,
class-incremental data arrival phases, and per-node-group head
specialization — onto the fleet engines.  The YAML spec is validated
with line-anchored errors (:mod:`repro.scenario.schema`), the processes
are materialized as pure seeded plans (:mod:`repro.scenario.processes`),
and the same plans drive both the lockstep engine
(:mod:`repro.scenario.lockstep`) and the event engine
(:mod:`repro.scenario.event`) — with ``barrier: true`` the two agree on
accuracy trajectories, byte ledgers, and registry history exactly.

``python -m repro scenario run <yaml>`` runs replicates and emits a
byte-stable summary JSON with seeded bootstrap confidence intervals.
"""

from repro.scenario.assets import prepare_scenario_assets
from repro.scenario.event import ScenarioEventFleet, run_scenario_event
from repro.scenario.heads import HeadUpdate, run_head_updates
from repro.scenario.lockstep import run_scenario_lockstep
from repro.scenario.processes import (
    ChurnPlan,
    ClassPhasePlan,
    HeadGroupPlan,
    ScenarioPlans,
    build_plans,
)
from repro.scenario.report import ScenarioReport, ScenarioStageInfo
from repro.scenario.schema import (
    ScenarioError,
    ScenarioSpec,
    load_spec,
    load_spec_file,
)
from repro.scenario.summary import build_summary, run_replicate, summary_json

__all__ = [
    "ChurnPlan",
    "ClassPhasePlan",
    "HeadGroupPlan",
    "HeadUpdate",
    "ScenarioError",
    "ScenarioEventFleet",
    "ScenarioPlans",
    "ScenarioReport",
    "ScenarioSpec",
    "ScenarioStageInfo",
    "build_plans",
    "build_summary",
    "load_spec",
    "load_spec_file",
    "prepare_scenario_assets",
    "run_head_updates",
    "run_replicate",
    "run_scenario_event",
    "run_scenario_lockstep",
    "summary_json",
]
