"""``python -m repro scenario`` — run, validate, and list scenario YAMLs.

Subcommands:

``run FILE [--out PATH] [--trace PATH] [--workers N] [--engine E]``
    Run every replicate of the scenario and print a metric table.
    ``--out`` writes the canonical summary JSON (byte-stable across
    invocations and worker counts); ``--trace`` writes the JSONL trace
    of all replicates; ``--engine`` overrides the spec's engine.

``validate FILE``
    Parse and validate only.  Exit 0 on success; on failure, print the
    ``file:line:`` anchored error and exit 1.

``list [DIR]``
    One line per scenario YAML in DIR (default ``examples/scenarios``).
"""

from __future__ import annotations

import argparse
import os

from repro.obs.trace import Tracer
from repro.scenario.schema import ScenarioError, load_spec_file
from repro.scenario.summary import build_summary, summary_json

__all__ = ["main"]


def _run(args) -> int:
    try:
        spec = load_spec_file(args.file)
    except ScenarioError as err:
        print(f"error: {err}")
        return 1
    tracer = Tracer(enabled=args.trace is not None)
    summary = build_summary(
        spec, engine=args.engine, workers=args.workers, tracer=tracer
    )
    scenario = summary["scenario"]
    print(
        f"scenario {scenario['name']!r}: engine={scenario['engine']} "
        f"nodes={scenario['nodes']} stages={scenario['stages']} "
        f"replicates={summary['replicates']['count']}"
    )
    if scenario["processes"]:
        print(f"processes: {', '.join(scenario['processes'])}")
    confidence = summary["replicates"]["confidence"]
    print(
        f"\n{'metric':<24} {'mean':>12} "
        f"{f'ci{int(round(confidence * 100))}_lo':>12} "
        f"{f'ci{int(round(confidence * 100))}_hi':>12}"
    )
    for name in sorted(summary["metrics"]):
        row = summary["metrics"][name]
        print(
            f"{name:<24} {row['mean']:>12.6f} "
            f"{row['ci_lo']:>12.6f} {row['ci_hi']:>12.6f}"
        )
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(summary_json(summary))
        print(f"\nwrote summary: {args.out}")
    if args.trace is not None:
        tracer.write_jsonl(args.trace)
        print(f"wrote trace: {args.trace} ({len(tracer.records)} records)")
    return 0


def _validate(args) -> int:
    try:
        spec = load_spec_file(args.file)
    except ScenarioError as err:
        print(f"error: {err}")
        return 1
    print(
        f"ok: {spec.name!r} (engine={spec.engine}, "
        f"nodes={spec.fleet.num_nodes}, stages={spec.num_stages}, "
        f"processes={', '.join(spec.processes) or 'none'})"
    )
    return 0


def _list(args) -> int:
    directory = args.dir
    if not os.path.isdir(directory):
        print(f"error: no such directory: {directory}")
        return 1
    paths = sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith((".yaml", ".yml"))
    )
    if not paths:
        print(f"no scenario files in {directory}")
        return 0
    for path in paths:
        try:
            spec = load_spec_file(path)
        except ScenarioError as err:
            print(f"{os.path.basename(path):<28} INVALID: {err}")
            continue
        processes = ",".join(spec.processes) or "-"
        print(
            f"{os.path.basename(path):<28} {spec.engine:<9} "
            f"{processes:<36} {spec.description or spec.name}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Run, validate, and list YAML scenario specs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a scenario end to end")
    p_run.add_argument("file", help="scenario YAML file")
    p_run.add_argument("--out", help="write summary JSON here")
    p_run.add_argument("--trace", help="write JSONL trace here")
    p_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for lockstep node stages (default: 1)",
    )
    p_run.add_argument(
        "--engine",
        choices=("lockstep", "event"),
        help="override the spec's engine",
    )
    p_run.set_defaults(func=_run)

    p_val = sub.add_parser("validate", help="parse and validate only")
    p_val.add_argument("file", help="scenario YAML file")
    p_val.set_defaults(func=_validate)

    p_list = sub.add_parser("list", help="list scenario files")
    p_list.add_argument(
        "dir",
        nargs="?",
        default=os.path.join("examples", "scenarios"),
        help="directory to scan (default: examples/scenarios)",
    )
    p_list.set_defaults(func=_list)

    args = parser.parse_args(argv)
    if getattr(args, "workers", 1) < 1:
        parser.error("--workers must be at least 1")
    return args.func(args)
