"""Scenario DSL schema: YAML tree -> validated :class:`ScenarioSpec`.

Validation is *line-anchored*: every error names the scenario file and
the 1-based line of the offending value, so a typo in a 60-line YAML
points at itself rather than at a stack trace deep in the fleet engine.

Top-level grammar (see DESIGN.md §11 for the full reference)::

    scenario:                # required
      name: <str>            # required
      description: <str>
      seed: <int >= 0>
      engine: lockstep | event
      barrier: <bool>        # event engine only
    fleet:                   # required
      nodes: <int >= 1>      # required
      stages: <int >= 1>
      lte_fraction / low_power_fraction / severity_jitter: <float>
      canary_fraction / max_regression / accuracy_drop: <float>
      policy: per-stage | threshold | accuracy-drop
      upload_threshold: <int>
      backhaul_mbps: <float>
      base:                  # overrides for core.simulation.Scenario
        <field>: <value>
    processes:               # all optional, freely composable
      churn:
        rate: <float in (0, 1)>
        max_outage_stages: <int >= 1>
      class_incremental:
        groups: [[...], ...] # class-id groups, unlocked in order
        phase_stages: [...]  # stage each group unlocks at (first == 0)
        exemplar_capacity: <int >= 1>
        distill_weight: <float >= 0>
        temperature: <float > 0>
      per_node_heads:
        groups: <int >= 1>
        epochs: <int >= 1>
        lr: <float > 0>
        max_regression: <float >= 0>
    replicates:
      count: <int >= 1>
      bootstrap_samples: <int >= 1>
      confidence: <float in (0, 1)>
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.simulation import Scenario
from repro.fleet.profiles import FleetScenario
from repro.fleet.simulation import fleet_base_scenario
from repro.scenario.yaml_lite import Node, YamlError, parse

__all__ = [
    "ChurnSpec",
    "ClassIncrementalSpec",
    "HeadSpec",
    "ReplicatesSpec",
    "ScenarioError",
    "ScenarioSpec",
    "load_spec",
    "load_spec_file",
]

ENGINES = ("lockstep", "event")
POLICIES = ("per-stage", "threshold", "accuracy-drop")


class ScenarioError(ValueError):
    """A schema violation, anchored to ``<filename>:<line>``."""

    def __init__(self, message: str, *, filename: str, line: int) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


@dataclass(frozen=True)
class ChurnSpec:
    """Seeded node crash/rejoin process."""

    rate: float
    max_outage_stages: int = 2


@dataclass(frozen=True)
class ClassIncrementalSpec:
    """Phased class arrivals with exemplar replay + distillation."""

    groups: tuple[tuple[int, ...], ...]
    phase_stages: tuple[int, ...]
    exemplar_capacity: int = 64
    distill_weight: float = 1.0
    temperature: float = 2.0


@dataclass(frozen=True)
class HeadSpec:
    """Per-node-group FC specialization on the shared CONV trunk."""

    num_groups: int
    epochs: int = 2
    lr: float = 0.02
    max_regression: float = 0.05


@dataclass(frozen=True)
class ReplicatesSpec:
    """Seeded replicate fan-out + bootstrap-CI protocol."""

    count: int = 1
    bootstrap_samples: int = 200
    confidence: float = 0.9


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully validated scenario, ready to hand to the engines."""

    name: str
    description: str
    seed: int
    engine: str
    barrier: bool
    fleet: FleetScenario
    churn: ChurnSpec | None
    class_incremental: ClassIncrementalSpec | None
    heads: HeadSpec | None
    replicates: ReplicatesSpec

    @property
    def num_stages(self) -> int:
        return len(self.fleet.base.schedule_k)

    @property
    def processes(self) -> tuple[str, ...]:
        names = []
        if self.churn is not None:
            names.append("churn")
        if self.class_incremental is not None:
            names.append("class_incremental")
        if self.heads is not None:
            names.append("per_node_heads")
        return tuple(names)


class _Checker:
    """Typed accessors over a mapping Node, with line-anchored errors."""

    def __init__(self, node: Node, path: str, filename: str) -> None:
        if not isinstance(node.value, dict):
            raise ScenarioError(
                f"{path} must be a mapping", filename=filename, line=node.line
            )
        self.node = node
        self.entries: dict[str, Node] = node.value
        self.path = path
        self.filename = filename
        self.seen: set[str] = set()

    def error(self, message: str, line: int) -> ScenarioError:
        return ScenarioError(message, filename=self.filename, line=line)

    def child(self, key: str) -> Node | None:
        self.seen.add(key)
        return self.entries.get(key)

    def mapping(self, key: str, *, required: bool = False) -> _Checker | None:
        node = self.child(key)
        if node is None:
            if required:
                raise self.error(
                    f"missing required section {self.path}.{key}",
                    self.node.line,
                )
            return None
        return _Checker(node, f"{self.path}.{key}", self.filename)

    def _scalar(self, key: str, kinds, kind_name, default, required):
        node = self.child(key)
        if node is None:
            if required:
                raise self.error(
                    f"missing required key {self.path}.{key}", self.node.line
                )
            return default
        value = node.value
        if isinstance(value, bool) and bool not in kinds:
            value = None  # bools must not satisfy int/float slots
        if not isinstance(value, kinds) or value is None:
            raise self.error(
                f"{self.path}.{key} must be {kind_name}", node.line
            )
        return value, node.line

    def str_(self, key: str, default=None, *, required=False, choices=None):
        got = self._scalar(key, (str,), "a string", default, required)
        if got is default and not isinstance(got, tuple):
            return default
        value, line = got
        if choices is not None and value not in choices:
            raise self.error(
                f"{self.path}.{key} must be one of {', '.join(choices)}",
                line,
            )
        return value

    def int_(self, key: str, default=None, *, required=False, minimum=None):
        got = self._scalar(key, (int,), "an integer", default, required)
        if got is default and not isinstance(got, tuple):
            return default
        value, line = got
        if minimum is not None and value < minimum:
            raise self.error(
                f"{self.path}.{key} must be an integer >= {minimum}", line
            )
        return value

    def float_(
        self,
        key: str,
        default=None,
        *,
        required=False,
        minimum=None,
        maximum=None,
        exclusive=False,
    ):
        got = self._scalar(
            key, (int, float), "a number", default, required
        )
        if got is default and not isinstance(got, tuple):
            return default
        value, line = got
        value = float(value)
        low_bad = minimum is not None and (
            value <= minimum if exclusive else value < minimum
        )
        high_bad = maximum is not None and (
            value >= maximum if exclusive else value > maximum
        )
        if low_bad or high_bad:
            bounds = f"{'(' if exclusive else '['}{minimum}, {maximum}"
            bounds += ")" if exclusive else "]"
            raise self.error(
                f"{self.path}.{key} must be in {bounds}", line
            )
        return value

    def bool_(self, key: str, default=None):
        got = self._scalar(key, (bool,), "a boolean", default, False)
        if got is default and not isinstance(got, tuple):
            return default
        return got[0]

    def int_list(self, key: str, *, required=False) -> tuple[tuple[int, int], ...] | None:
        """A flat list of ints; returns ((value, line), ...)."""
        node = self.child(key)
        if node is None:
            if required:
                raise self.error(
                    f"missing required key {self.path}.{key}", self.node.line
                )
            return None
        if not isinstance(node.value, list):
            raise self.error(
                f"{self.path}.{key} must be a list of integers", node.line
            )
        out = []
        for item in node.value:
            if not isinstance(item.value, int) or isinstance(item.value, bool):
                raise self.error(
                    f"{self.path}.{key} items must be integers", item.line
                )
            out.append((item.value, item.line))
        return tuple(out)

    def finish(self) -> None:
        for key, node in self.entries.items():
            if key not in self.seen:
                raise self.error(
                    f"unknown key {self.path}.{key}", node.line
                )


def _build_base(
    checker: _Checker | None, *, seed: int, num_stages: int | None, filename: str
) -> Scenario:
    """Validate ``fleet.base`` overrides against the Scenario dataclass."""
    overrides: dict[str, object] = {}
    field_types = {f.name: f for f in dataclasses.fields(Scenario)}
    if checker is not None:
        for key, node in checker.entries.items():
            checker.seen.add(key)
            if key == "seed":
                raise checker.error(
                    "set the seed via scenario.seed, not fleet.base.seed",
                    node.line,
                )
            if key not in field_types:
                known = ", ".join(sorted(field_types))
                raise checker.error(
                    f"unknown Scenario field fleet.base.{key} "
                    f"(known: {known})",
                    node.line,
                )
            value = node.strip()
            if key in ("schedule_k", "severities"):
                if not isinstance(value, list) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value
                ):
                    raise checker.error(
                        f"fleet.base.{key} must be a list of numbers",
                        node.line,
                    )
                value = tuple(
                    int(v) if key == "schedule_k" else float(v)
                    for v in value
                )
            elif isinstance(value, (list, dict)) or value is None:
                raise checker.error(
                    f"fleet.base.{key} must be a scalar", node.line
                )
            overrides[key] = value
    if num_stages is not None:
        if "schedule_k" in overrides:
            if len(overrides["schedule_k"]) != num_stages:
                raise ScenarioError(
                    "fleet.stages disagrees with len(fleet.base.schedule_k)",
                    filename=filename,
                    line=checker.node.line if checker else 1,
                )
        else:
            overrides["schedule_k"] = tuple(
                100 * (i + 1) for i in range(num_stages)
            )
    try:
        # Fleet-sized defaults (4 classes, light training knobs): a
        # scenario multiplies its base by N nodes exactly like the fleet
        # engines do, so it inherits their sizing, not the single-node one.
        return fleet_base_scenario(seed=seed, **overrides)
    except (TypeError, ValueError) as exc:  # dataclass-level rejection
        raise ScenarioError(
            f"invalid fleet.base overrides: {exc}",
            filename=filename,
            line=checker.node.line if checker else 1,
        ) from exc


def _build_class_incremental(
    checker: _Checker, *, num_classes: int, num_stages: int
) -> ClassIncrementalSpec:
    groups_node = checker.child("groups")
    if groups_node is None or not isinstance(groups_node.value, list):
        raise checker.error(
            "processes.class_incremental.groups must be a list of "
            "class-id lists",
            groups_node.line if groups_node else checker.node.line,
        )
    groups = []
    claimed: dict[int, int] = {}
    for item in groups_node.value:
        if not isinstance(item.value, list) or not item.value:
            raise checker.error(
                "each class group must be a non-empty list of class ids",
                item.line,
            )
        group = []
        for cls_node in item.value:
            cls = cls_node.value
            if not isinstance(cls, int) or isinstance(cls, bool):
                raise checker.error("class ids must be integers", cls_node.line)
            if not 0 <= cls < num_classes:
                raise checker.error(
                    f"class id {cls} out of range [0, {num_classes})",
                    cls_node.line,
                )
            if cls in claimed:
                raise checker.error(
                    f"class id {cls} appears in more than one group",
                    cls_node.line,
                )
            claimed[cls] = cls_node.line
            group.append(cls)
        groups.append(tuple(sorted(group)))
    missing = sorted(set(range(num_classes)) - set(claimed))
    if missing:
        raise checker.error(
            f"class groups must cover every class: missing {missing}",
            groups_node.line,
        )
    stages_items = checker.int_list("phase_stages", required=True)
    if len(stages_items) != len(groups):
        raise checker.error(
            "phase_stages must have one entry per class group",
            checker.node.line,
        )
    phase_stages = []
    for idx, (stage, line) in enumerate(stages_items):
        if idx == 0 and stage != 0:
            raise checker.error("the first phase must start at stage 0", line)
        if idx > 0 and stage <= phase_stages[-1]:
            raise checker.error(
                "phase_stages must be strictly increasing", line
            )
        if not 0 <= stage < num_stages:
            raise checker.error(
                f"phase stage {stage} out of range [0, {num_stages})", line
            )
        phase_stages.append(stage)
    spec = ClassIncrementalSpec(
        groups=tuple(groups),
        phase_stages=tuple(phase_stages),
        exemplar_capacity=checker.int_(
            "exemplar_capacity", 64, minimum=1
        ),
        distill_weight=checker.float_("distill_weight", 1.0, minimum=0.0),
        temperature=checker.float_(
            "temperature", 2.0, minimum=0.0, exclusive=True
        ),
    )
    checker.finish()
    return spec


def load_spec(text: str, *, filename: str = "<scenario>") -> ScenarioSpec:
    """Parse and validate scenario YAML into a :class:`ScenarioSpec`."""
    try:
        root_node = parse(text)
    except YamlError as exc:
        raise ScenarioError(
            str(exc).split(": ", 1)[1] if ": " in str(exc) else str(exc),
            filename=filename,
            line=exc.line,
        ) from exc
    root = _Checker(root_node, "top-level", filename)

    scn = root.mapping("scenario", required=True)
    name = scn.str_("name", required=True)
    description = scn.str_("description", "")
    seed = scn.int_("seed", 0, minimum=0)
    engine = scn.str_("engine", "lockstep", choices=ENGINES)
    barrier = scn.bool_("barrier", True)
    scn.finish()

    flt = root.mapping("fleet", required=True)
    num_nodes = flt.int_("nodes", required=True, minimum=1)
    num_stages = flt.int_("stages", None, minimum=1)
    base = _build_base(
        flt.mapping("base"),
        seed=seed,
        num_stages=num_stages,
        filename=filename,
    )
    fleet = FleetScenario(
        base=base,
        num_nodes=num_nodes,
        lte_fraction=flt.float_("lte_fraction", 0.5, minimum=0.0, maximum=1.0),
        low_power_fraction=flt.float_(
            "low_power_fraction", 0.25, minimum=0.0, maximum=1.0
        ),
        severity_jitter=flt.float_(
            "severity_jitter", 0.1, minimum=0.0, maximum=0.9
        ),
        backhaul_bps=flt.float_(
            "backhaul_mbps", 40.0, minimum=0.0, exclusive=True
        )
        * 1e6,
        scheduler_policy=flt.str_("policy", "per-stage", choices=POLICIES),
        upload_threshold=flt.int_("upload_threshold", 64, minimum=1),
        accuracy_drop=flt.float_("accuracy_drop", 0.05, minimum=0.0),
        canary_fraction=flt.float_(
            "canary_fraction", 0.25, minimum=0.0, maximum=1.0
        ),
        max_regression=flt.float_("max_regression", 0.02, minimum=0.0),
        seed=seed,
    )
    flt.finish()

    churn = None
    class_incremental = None
    heads = None
    procs = root.mapping("processes")
    if procs is not None:
        churn_c = procs.mapping("churn")
        if churn_c is not None:
            churn = ChurnSpec(
                rate=churn_c.float_(
                    "rate", required=True, minimum=0.0, maximum=1.0,
                    exclusive=True,
                ),
                max_outage_stages=churn_c.int_(
                    "max_outage_stages", 2, minimum=1
                ),
            )
            churn_c.finish()
        inc_c = procs.mapping("class_incremental")
        if inc_c is not None:
            class_incremental = _build_class_incremental(
                inc_c,
                num_classes=fleet.base.num_classes,
                num_stages=len(fleet.base.schedule_k),
            )
        heads_c = procs.mapping("per_node_heads")
        if heads_c is not None:
            num_groups = heads_c.int_("groups", required=True, minimum=1)
            if num_groups > num_nodes:
                raise heads_c.error(
                    f"per_node_heads.groups ({num_groups}) cannot exceed "
                    f"fleet.nodes ({num_nodes})",
                    heads_c.node.line,
                )
            heads = HeadSpec(
                num_groups=num_groups,
                epochs=heads_c.int_("epochs", 2, minimum=1),
                lr=heads_c.float_("lr", 0.02, minimum=0.0, exclusive=True),
                max_regression=heads_c.float_(
                    "max_regression", 0.05, minimum=0.0
                ),
            )
            heads_c.finish()
        procs.finish()

    reps_c = root.mapping("replicates")
    if reps_c is None:
        replicates = ReplicatesSpec()
    else:
        replicates = ReplicatesSpec(
            count=reps_c.int_("count", 1, minimum=1),
            bootstrap_samples=reps_c.int_("bootstrap_samples", 200, minimum=1),
            confidence=reps_c.float_(
                "confidence", 0.9, minimum=0.0, maximum=1.0, exclusive=True
            ),
        )
        reps_c.finish()
    root.finish()

    return ScenarioSpec(
        name=name,
        description=description,
        seed=seed,
        engine=engine,
        barrier=barrier,
        fleet=fleet,
        churn=churn,
        class_incremental=class_incremental,
        heads=heads,
        replicates=replicates,
    )


def load_spec_file(path) -> ScenarioSpec:
    """Load and validate a scenario YAML file from ``path``."""
    from pathlib import Path

    p = Path(path)
    return load_spec(p.read_text(), filename=str(p))
