"""Network surgery: weight transfer, layer locking, re-initialization.

Implements the paper's transfer-learning mechanics (Fig. 4 and the CONV-i
experiment of Fig. 6):

* copy the first *n* conv layers from the unsupervised trunk into the
  inference network,
* lock (freeze) those layers so fine-tuning never touches them, and
* randomly re-initialize the layers above the lock point ("all subsequent
  layers are randomly initialized and retrained").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.iot_models import CONV_LAYER_NAMES
from repro.nn import Conv2D, Linear, Sequential
from repro.nn.init import he_normal

__all__ = ["FreezePlan", "transfer_conv_weights", "reinitialize_above"]


@dataclass(frozen=True)
class FreezePlan:
    """CONV-i locking strategy.

    ``shared_depth`` is the *i* in the paper's CONV-i notation: conv1
    through conv_i are locked; everything above is trainable.  CONV-0 means
    nothing is locked (full fine-tuning); CONV-5 trains only the FCN head.
    The paper's sweet spot is CONV-3.
    """

    shared_depth: int

    def __post_init__(self) -> None:
        if not 0 <= self.shared_depth <= len(CONV_LAYER_NAMES):
            raise ValueError(
                f"shared_depth must be in [0, {len(CONV_LAYER_NAMES)}], "
                f"got {self.shared_depth}"
            )

    @classmethod
    def from_conv_i(cls, label: str) -> "FreezePlan":
        """Parse the paper's "CONV-3" style labels."""
        prefix = "CONV-"
        if not label.upper().startswith(prefix):
            raise ValueError(f"expected 'CONV-i' label, got {label!r}")
        return cls(int(label[len(prefix) :]))

    @property
    def label(self) -> str:
        return f"CONV-{self.shared_depth}"

    @property
    def frozen_conv_names(self) -> tuple[str, ...]:
        return CONV_LAYER_NAMES[: self.shared_depth]

    @property
    def trainable_conv_names(self) -> tuple[str, ...]:
        return CONV_LAYER_NAMES[self.shared_depth :]

    def apply(self, net: Sequential) -> None:
        """Freeze the locked conv layers; unfreeze everything else."""
        net.unfreeze_all()
        net.freeze_layers(self.frozen_conv_names)


def transfer_conv_weights(
    donor: Sequential, target: Sequential, depth: int
) -> list[str]:
    """Copy conv1..conv_depth weights from donor into target.

    Returns the copied layer names.  Conv weights are spatial-size
    independent, so the donor may be the 16x16-tile jigsaw trunk and the
    target the 48x48 inference network.
    """
    if not 0 <= depth <= len(CONV_LAYER_NAMES):
        raise ValueError(
            f"depth must be in [0, {len(CONV_LAYER_NAMES)}], got {depth}"
        )
    names = list(CONV_LAYER_NAMES[:depth])
    target.copy_layer_weights(donor, names)
    return names


def reinitialize_above(
    net: Sequential, depth: int, rng: np.random.Generator
) -> list[str]:
    """Re-initialize every conv layer above ``depth`` and all FCN layers.

    This reproduces the Fig. 6 protocol: keep conv1..conv_depth, randomly
    re-init and retrain the rest.  Returns the re-initialized layer names.
    """
    keep = set(CONV_LAYER_NAMES[:depth])
    touched = []
    for layer in net:
        if isinstance(layer, Conv2D) and layer.name not in keep:
            fan_in = layer.in_channels * layer.kernel**2
            layer.weight.data[...] = he_normal(
                layer.weight.shape, fan_in, rng
            ).astype(layer.weight.data.dtype)
            layer.bias.data[...] = 0.0
            touched.append(layer.name)
        elif isinstance(layer, Linear):
            layer.weight.data[...] = he_normal(
                layer.weight.shape, layer.in_features, rng
            ).astype(layer.weight.data.dtype)
            layer.bias.data[...] = 0.0
            touched.append(layer.name)
    return touched
