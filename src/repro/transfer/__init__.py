"""Transfer learning and incremental model updates."""

from repro.transfer.distill import DistillationLoss, distill_classifier
from repro.transfer.finetune import (
    TrainResult,
    evaluate,
    evaluate_on_classes,
    split_at_frozen_prefix,
    train_classifier,
)
from repro.transfer.incremental import (
    ReplayBuffer,
    UpdateOutcome,
    incremental_update,
)
from repro.transfer.surgery import (
    FreezePlan,
    reinitialize_above,
    transfer_conv_weights,
)

__all__ = [
    "DistillationLoss",
    "FreezePlan",
    "ReplayBuffer",
    "TrainResult",
    "UpdateOutcome",
    "distill_classifier",
    "evaluate",
    "evaluate_on_classes",
    "incremental_update",
    "reinitialize_above",
    "split_at_frozen_prefix",
    "train_classifier",
    "transfer_conv_weights",
]
