"""Supervised training / fine-tuning with frozen-prefix acceleration.

When the first *n* conv layers are locked, their activations for a fixed
dataset never change, so the trainer computes them once and trains only the
tail on cached features.  This is the mechanism behind the paper's observed
1.7X fine-tuning speedup for CONV-3 sharing (Fig. 6) and the reduced model
update time of In-situ AI (Fig. 25).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import Dataset
from repro.nn import SGD, CrossEntropyLoss, Sequential, accuracy
from repro.obs import metrics as obs_metrics
from repro.obs.clock import perf_counter
from repro.transfer.surgery import FreezePlan

__all__ = [
    "TrainResult",
    "evaluate_on_classes",
    "split_at_frozen_prefix",
    "train_classifier",
]


@dataclass
class TrainResult:
    """Outcome of a supervised training run."""

    network: Sequential
    losses: list[float] = field(default_factory=list)
    eval_accuracies: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    sample_steps: int = 0
    #: multiply-accumulate-ish work units actually spent (frozen prefix
    #: forward passes counted once, not once per epoch)
    compute_units: float = 0.0

    @property
    def final_accuracy(self) -> float:
        return self.eval_accuracies[-1] if self.eval_accuracies else 0.0


def split_at_frozen_prefix(net: Sequential) -> int:
    """Index of the first layer that must run during training.

    Layers before the index form a frozen prefix: every parameterized layer
    in it is frozen.  Stateless layers (ReLU, pooling) belong to the prefix
    as long as no trainable layer precedes them.
    """
    boundary = 0
    for i, layer in enumerate(net.layers):
        if layer.parameters:
            if layer.frozen:
                boundary = i + 1
            else:
                break
    # Extend across the stateless layers that immediately follow the last
    # frozen parameterized layer.
    while boundary < len(net.layers) and not net.layers[boundary].parameters:
        boundary += 1
    # Never swallow the whole network: the head must remain trainable.
    return min(boundary, max(0, len(net.layers) - 1))


def _layer_work(layer, batch: int) -> float:
    """Rough forward work estimate in parameter-touches per batch."""
    return float(layer.num_parameters) * batch


def train_classifier(
    net: Sequential,
    train_data: Dataset,
    *,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 0.02,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    rng: np.random.Generator | None = None,
    eval_data: Dataset | None = None,
    freeze_plan: FreezePlan | None = None,
    cache_frozen_features: bool = True,
) -> TrainResult:
    """Train or fine-tune an inference network.

    If ``freeze_plan`` locks a prefix of conv layers and
    ``cache_frozen_features`` is on, the prefix runs exactly once over the
    dataset and the optimization loop touches only the tail.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if len(train_data) == 0:
        raise ValueError("cannot train on an empty dataset")
    rng = rng if rng is not None else np.random.default_rng(0)
    if freeze_plan is not None:
        freeze_plan.apply(net)

    # Host wall time for reporting only (sanctioned obs.clock source);
    # simulated time always comes from the cost models.
    started = perf_counter()
    result = TrainResult(network=net)
    boundary = split_at_frozen_prefix(net) if cache_frozen_features else 0

    if boundary > 0:
        prefix_layers = net.layers[:boundary]
        tail = Sequential(net.layers[boundary:], net.shape_at(boundary))
        features = train_data.images
        for layer in prefix_layers:
            features = layer.forward(features, training=False)
        for layer in prefix_layers:
            result.compute_units += _layer_work(layer, len(train_data))
        trainable: Sequential = tail
        inputs, labels = features, train_data.labels
    else:
        trainable = net
        inputs, labels = train_data.images, train_data.labels

    loss_fn = CrossEntropyLoss()
    optimizer = SGD(
        trainable.parameters, lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    for _ in range(epochs):
        order = rng.permutation(len(labels))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(labels), batch_size):
            idx = order[start : start + batch_size]
            x, y = inputs[idx], labels[idx]
            logits = trainable.forward(x, training=True)
            epoch_loss += loss_fn(logits, y)
            batches += 1
            trainable.zero_grad()
            trainable.backward(loss_fn.backward())
            optimizer.step()
            result.sample_steps += len(idx)
            # Forward + ~2x backward over the trainable portion only.
            for layer in trainable.layers:
                result.compute_units += 3.0 * _layer_work(layer, len(idx))
        result.losses.append(epoch_loss / max(1, batches))
        if eval_data is not None:
            result.eval_accuracies.append(evaluate(net, eval_data))
    result.wall_time_s = perf_counter() - started
    registry = obs_metrics.active()
    if registry is not None:
        registry.counter("train.runs").inc()
        registry.counter("train.epochs").inc(epochs)
        registry.counter("train.samples").inc(result.sample_steps)
        loss_hist = registry.histogram("train.epoch_loss")
        for loss in result.losses:
            loss_hist.observe(loss)
    return result


def evaluate(net: Sequential, data: Dataset, *, batch_size: int = 128) -> float:
    """Top-1 accuracy of the network on a dataset."""
    if len(data) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    correct = 0
    for x, y in data.batches(batch_size):
        correct += int((net.predict(x).argmax(axis=1) == y).sum())
    return correct / len(data)


def evaluate_on_classes(
    net: Sequential,
    data: Dataset,
    classes,
    *,
    batch_size: int = 128,
) -> float:
    """Top-1 accuracy restricted to samples whose label is in ``classes``.

    The class-incremental scenarios report per-phase accuracy this way:
    the eval set stays fixed across phases, and each class group's slice
    is scored separately so forgetting on early groups is visible.
    """
    mask = np.isin(data.labels, np.asarray(sorted(classes), dtype=np.int64))
    if not mask.any():
        raise ValueError(f"eval data contains no samples of classes {classes}")
    subset = data.subset(np.flatnonzero(mask))
    return evaluate(net, subset, batch_size=batch_size)
