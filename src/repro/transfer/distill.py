"""Knowledge-distillation fine-tuning for class-incremental updates.

When a stream introduces new class groups mid-run, naive fine-tuning on
the new arrivals catastrophically forgets the old groups.  The standard
remedy (LwF / iCaRL-style, cf. the IncrementalLearner exemplars in
SNIPPETS.md and the on-device-learning papers in PAPERS.md) is to keep a
small exemplar buffer of old-group samples and add a distillation term
that holds the student's softened predictions close to the pre-update
teacher's.

The combined objective per batch of size ``B`` is::

    L = CE(student, labels) + w * T^2 * H(softmax(teacher/T), softmax(student/T))

whose logit gradient is ``(p - y)/B + w * T * (q_s - q_t)/B`` — both
terms are computed here in closed form and summed into one backward
pass, matching the repo's fused-loss idiom.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.nn import SGD, Sequential
from repro.nn.activations import softmax
from repro.obs.clock import perf_counter
from repro.transfer.finetune import TrainResult, evaluate
from repro.transfer.surgery import FreezePlan

__all__ = ["DistillationLoss", "distill_classifier"]


class DistillationLoss:
    """Fused cross-entropy + softened teacher cross-entropy.

    ``forward`` returns the combined mean loss; ``backward`` returns its
    gradient w.r.t. the *student* logits.  The distillation term carries
    the conventional ``T^2`` factor so its gradient magnitude stays
    comparable across temperatures.
    """

    def __init__(self, distill_weight: float, temperature: float = 2.0) -> None:
        if distill_weight < 0:
            raise ValueError("distill_weight must be >= 0")
        if temperature <= 0:
            raise ValueError("temperature must be > 0")
        self.distill_weight = distill_weight
        self.temperature = temperature
        self._cache = None

    def forward(
        self,
        student_logits: np.ndarray,
        teacher_logits: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        labels = np.asarray(labels)
        if student_logits.shape != teacher_logits.shape:
            raise ValueError("student/teacher logits shapes differ")
        if labels.shape != (student_logits.shape[0],):
            raise ValueError("labels shape does not match batch")
        probs = softmax(student_logits, axis=1)
        picked = probs[np.arange(len(labels)), labels]
        hard = float(-np.log(np.clip(picked, 1e-12, None)).mean())
        t = self.temperature
        soft_student = softmax(student_logits / t, axis=1)
        soft_teacher = softmax(teacher_logits / t, axis=1)
        soft = float(
            -(soft_teacher * np.log(np.clip(soft_student, 1e-12, None)))
            .sum(axis=1)
            .mean()
        )
        self._cache = (probs, soft_student, soft_teacher, labels)
        return hard + self.distill_weight * t * t * soft

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, soft_student, soft_teacher, labels = self._cache
        self._cache = None
        batch = len(labels)
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        # d/dz of T^2 * H(q_t, softmax(z/T)) = T * (q_s - q_t)
        grad += (
            self.distill_weight
            * self.temperature
            * (soft_student - soft_teacher)
        )
        return grad / batch

    def __call__(self, student_logits, teacher_logits, labels) -> float:
        return self.forward(student_logits, teacher_logits, labels)


def distill_classifier(
    net: Sequential,
    train_data: Dataset,
    *,
    teacher: Sequential,
    distill_weight: float = 1.0,
    temperature: float = 2.0,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 0.01,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    rng: np.random.Generator | None = None,
    eval_data: Dataset | None = None,
    freeze_plan: FreezePlan | None = None,
) -> TrainResult:
    """Fine-tune ``net`` under the combined hard + distillation loss.

    ``teacher`` is a frozen snapshot of the pre-update model; its logits
    are recomputed per batch (no feature caching — the trainable region
    usually reaches into conv layers during class-incremental updates,
    and the exemplar-augmented datasets are small).
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if len(train_data) == 0:
        raise ValueError("cannot distill on an empty dataset")
    rng = rng if rng is not None else np.random.default_rng(0)
    if freeze_plan is not None:
        freeze_plan.apply(net)

    started = perf_counter()
    result = TrainResult(network=net)
    loss_fn = DistillationLoss(distill_weight, temperature)
    optimizer = SGD(
        net.parameters, lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    inputs, labels = train_data.images, train_data.labels
    for _ in range(epochs):
        order = rng.permutation(len(labels))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(labels), batch_size):
            idx = order[start : start + batch_size]
            x, y = inputs[idx], labels[idx]
            teacher_logits = teacher.predict(x)
            logits = net.forward(x, training=True)
            epoch_loss += loss_fn(logits, teacher_logits, y)
            batches += 1
            net.zero_grad()
            net.backward(loss_fn.backward())
            optimizer.step()
            result.sample_steps += len(idx)
        result.losses.append(epoch_loss / max(1, batches))
        if eval_data is not None:
            result.eval_accuracies.append(evaluate(net, eval_data))
    result.wall_time_s = perf_counter() - started
    return result
