"""Incremental model updates on newly acquired IoT data.

Reproduces the paper's incremental training protocol (Fig. 7 and the
end-to-end evaluation): the deployed model is *fine-tuned* on new data —
optionally only the data the diagnosis task flagged as unrecognized — rather
than retrained from scratch.  A small replay buffer of earlier data guards
against catastrophic forgetting, mirroring how the Cloud archive retains
previously uploaded samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.transfer.finetune import TrainResult, train_classifier
from repro.transfer.surgery import FreezePlan

__all__ = ["UpdateOutcome", "incremental_update", "ReplayBuffer"]


class ReplayBuffer:
    """Reservoir of previously uploaded samples mixed into each update."""

    def __init__(self, capacity: int, *, rng: np.random.Generator) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.rng = rng
        self._data: Dataset | None = None

    def __len__(self) -> int:
        return 0 if self._data is None else len(self._data)

    @property
    def data(self) -> Dataset | None:
        """The whole buffer, without consuming the sampling RNG.

        Exemplar-replay distillation mixes *every* retained exemplar into
        the update (the buffer is already capacity-bounded), so drawing a
        random subset would only add nondeterminism surface.
        """
        return self._data

    def add(self, data: Dataset) -> None:
        if self.capacity == 0 or len(data) == 0:
            return
        merged = (
            data if self._data is None else Dataset.concat([self._data, data])
        )
        if len(merged) > self.capacity:
            keep = self.rng.choice(len(merged), size=self.capacity, replace=False)
            merged = merged.subset(np.sort(keep))
        self._data = merged

    def sample(self, count: int) -> Dataset | None:
        if self._data is None or count <= 0:
            return None
        count = min(count, len(self._data))
        idx = self.rng.choice(len(self._data), size=count, replace=False)
        return self._data.subset(idx)


@dataclass
class UpdateOutcome:
    """Result of one incremental update."""

    train_result: TrainResult
    update_images: int
    replay_images: int


def incremental_update(
    net,
    new_data: Dataset,
    *,
    freeze_plan: FreezePlan | None = None,
    replay: ReplayBuffer | None = None,
    replay_fraction: float = 0.5,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 0.01,
    rng: np.random.Generator | None = None,
    eval_data: Dataset | None = None,
) -> UpdateOutcome:
    """Fine-tune ``net`` on newly uploaded data.

    ``freeze_plan`` is the weight-sharing strategy: In-situ AI (system *d*
    in Fig. 24) locks the shared conv layers so the update touches only the
    upper layers, which is where its model-update speedup comes from.
    """
    if len(new_data) == 0:
        raise ValueError("incremental update needs at least one new sample")
    if not 0.0 <= replay_fraction <= 1.0:
        raise ValueError("replay_fraction must be in [0, 1]")
    rng = rng if rng is not None else np.random.default_rng(0)

    replayed = None
    if replay is not None:
        replayed = replay.sample(int(round(replay_fraction * len(new_data))))
    train_set = (
        Dataset.concat([new_data, replayed]) if replayed is not None else new_data
    )
    result = train_classifier(
        net,
        train_set,
        epochs=epochs,
        batch_size=batch_size,
        lr=lr,
        rng=rng,
        eval_data=eval_data,
        freeze_plan=freeze_plan,
    )
    if replay is not None:
        replay.add(new_data)
    return UpdateOutcome(
        train_result=result,
        update_images=len(new_data),
        replay_images=0 if replayed is None else len(replayed),
    )
