"""Hierarchical fleet topology: edge nodes -> gateways -> one cloud.

The paper's protocol assumes every node talks straight to the Cloud.
Production IoT fleets interpose *gateways*: a site-local box that
aggregates its children's uploads into amortized WAN transfers, can host
a mid-size second-opinion model, and is the natural unit of regional
canary rollout.  This module is the pure data model for that shape —
who is under which gateway, which link each hop rides, and how the
gateway batches uploads.  The engines that execute it live in
:mod:`repro.topology.lockstep` and :mod:`repro.topology.event`.

Degenerate topologies (one node per gateway, passthrough links, no
aggregation, no second opinion, no framing overhead) are *exactly* the
flat fleet; :attr:`Topology.is_passthrough` detects that case and the
fleet entry points delegate to the unmodified flat code path, so the
flat trajectories stay byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.link import FIBER, LAN, LTE, PASSTHROUGH, WIFI, NetworkLink
from repro.hw.specs import TX1, GPUSpec

__all__ = ["AggregationPolicy", "GatewayProfile", "Topology"]

#: link classes a gateway hop may draw from
_TIER_LINKS: dict[str, NetworkLink] = {
    "lan": LAN,
    "fiber": FIBER,
    "passthrough": PASSTHROUGH,
    "wifi": WIFI,
    "lte": LTE,
}

#: boards a gateway's second-opinion model may run on; a gateway is a
#: powered site box, so the full-clock TX1 is the only class for now
_GATEWAY_DEVICES: dict[str, GPUSpec] = {
    "tx1": TX1,
}


@dataclass(frozen=True)
class AggregationPolicy:
    """When a gateway flushes its buffered uploads as one WAN transfer.

    ``max_age_stages`` is denominated in stages (lockstep) / epochs
    (event mode), not virtual seconds, so the two engines make identical
    flush decisions and stay trajectory-equivalent under ``barrier=True``.
    """

    enabled: bool = True
    flush_images: int = 32  # flush when the buffer reaches this many
    max_age_stages: int = 2  # ... or when the oldest entry is this old

    def __post_init__(self) -> None:
        if self.flush_images < 1:
            raise ValueError("flush_images must be >= 1")
        if self.max_age_stages < 1:
            raise ValueError("max_age_stages must be >= 1")


@dataclass(frozen=True)
class GatewayProfile:
    """One gateway: its children and the links on both of its hops.

    ``uplink_kind="inherit"`` (single-child gateways only) reuses the
    child's own radio for the WAN hop — the degenerate wiring that makes
    a passthrough topology collapse to the flat fleet.
    """

    gateway_id: int
    child_ids: tuple[int, ...]
    local_link_kind: str = "lan"  # edge -> gateway hop
    uplink_kind: str = "fiber"  # gateway -> cloud hop, or "inherit"
    device_kind: str = "tx1"  # board running the second-opinion model

    def __post_init__(self) -> None:
        if not self.child_ids:
            raise ValueError(f"gateway {self.gateway_id} has no children")
        if len(set(self.child_ids)) != len(self.child_ids):
            raise ValueError(
                f"gateway {self.gateway_id} lists a child twice"
            )
        if self.local_link_kind not in _TIER_LINKS:
            raise ValueError(
                f"unknown local link {self.local_link_kind!r}; "
                f"available: {sorted(_TIER_LINKS)}"
            )
        if (
            self.uplink_kind not in _TIER_LINKS
            and self.uplink_kind != "inherit"
        ):
            raise ValueError(
                f"unknown uplink {self.uplink_kind!r}; "
                f"available: {sorted(_TIER_LINKS)} or 'inherit'"
            )
        if self.uplink_kind == "inherit" and len(self.child_ids) != 1:
            raise ValueError(
                f"gateway {self.gateway_id}: 'inherit' uplink requires "
                "exactly one child"
            )
        if self.device_kind not in _GATEWAY_DEVICES:
            raise ValueError(
                f"unknown gateway device {self.device_kind!r}; "
                f"available: {sorted(_GATEWAY_DEVICES)}"
            )

    @property
    def local_link(self) -> NetworkLink:
        return _TIER_LINKS[self.local_link_kind]

    @property
    def device(self) -> GPUSpec:
        return _GATEWAY_DEVICES[self.device_kind]

    def wan_link(self, profiles) -> NetworkLink:
        """The gateway->cloud link; ``inherit`` rides the child's radio."""
        if self.uplink_kind == "inherit":
            (child,) = self.child_ids
            return profiles[child].link
        return _TIER_LINKS[self.uplink_kind]


@dataclass(frozen=True)
class Topology:
    """A two-tier fleet shape: gateways partition the node id space.

    ``canary_gateway_id`` scopes the canary rollout to one gateway's
    children (regional canary; regression rolls back regionally before
    any fleet-wide push).  ``per_transfer_overhead_bytes`` is the fixed
    per-WAN-transfer framing cost aggregation amortizes away.
    """

    gateways: tuple[GatewayProfile, ...]
    aggregation: AggregationPolicy = field(default_factory=AggregationPolicy)
    second_opinion_fraction: float = 0.0
    per_transfer_overhead_bytes: int = 2_000
    canary_gateway_id: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.gateways:
            raise ValueError("topology needs at least one gateway")
        gw_ids = [g.gateway_id for g in self.gateways]
        if len(set(gw_ids)) != len(gw_ids):
            raise ValueError("duplicate gateway ids")
        children: list[int] = []
        for g in self.gateways:
            children.extend(g.child_ids)
        if len(set(children)) != len(children):
            raise ValueError("a node is claimed by more than one gateway")
        if not 0.0 <= self.second_opinion_fraction <= 1.0:
            raise ValueError("second_opinion_fraction must be in [0, 1]")
        if self.per_transfer_overhead_bytes < 0:
            raise ValueError("per_transfer_overhead_bytes must be >= 0")
        if (
            self.canary_gateway_id is not None
            and self.canary_gateway_id not in set(gw_ids)
        ):
            raise ValueError(
                f"canary gateway {self.canary_gateway_id} not in topology"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> tuple[int, ...]:
        return tuple(
            sorted(n for g in self.gateways for n in g.child_ids)
        )

    def gateway_of(self, node_id: int) -> GatewayProfile:
        for g in self.gateways:
            if node_id in g.child_ids:
                return g
        raise KeyError(f"node {node_id} is not in the topology")

    @property
    def canary_gateway(self) -> GatewayProfile:
        """The gateway whose children canary candidate models first."""
        if self.canary_gateway_id is None:
            return self.gateways[0]
        for g in self.gateways:
            if g.gateway_id == self.canary_gateway_id:
                return g
        raise KeyError(self.canary_gateway_id)  # unreachable post-init

    @property
    def canary_node_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.canary_gateway.child_ids))

    @property
    def is_passthrough(self) -> bool:
        """Does this topology change *nothing* relative to the flat fleet?

        True only when every gateway is a one-child passthrough relay
        with an inherited uplink, aggregation is off, no second opinion
        runs, and WAN transfers carry no framing overhead.  The fleet
        entry points then execute the unmodified flat code path.
        """
        return (
            not self.aggregation.enabled
            and self.second_opinion_fraction == 0.0
            and self.per_transfer_overhead_bytes == 0
            and all(
                len(g.child_ids) == 1
                and g.local_link_kind == "passthrough"
                and g.uplink_kind == "inherit"
                for g in self.gateways
            )
        )

    def validate_for(self, profiles) -> None:
        """Check the topology covers exactly the fleet's node ids."""
        fleet_ids = tuple(sorted(p.node_id for p in profiles))
        if self.node_ids != fleet_ids:
            raise ValueError(
                f"topology covers nodes {self.node_ids}, "
                f"fleet has {fleet_ids}"
            )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def single(cls, num_nodes: int) -> "Topology":
        """One passthrough gateway per node: structurally the flat fleet."""
        return cls(
            gateways=tuple(
                GatewayProfile(
                    gateway_id=i,
                    child_ids=(i,),
                    local_link_kind="passthrough",
                    uplink_kind="inherit",
                )
                for i in range(num_nodes)
            ),
            aggregation=AggregationPolicy(enabled=False),
            second_opinion_fraction=0.0,
            per_transfer_overhead_bytes=0,
        )

    @classmethod
    def fan_out(
        cls,
        num_nodes: int,
        fan_out: int,
        *,
        aggregation: AggregationPolicy | None = None,
        second_opinion_fraction: float = 0.0,
        per_transfer_overhead_bytes: int = 2_000,
        canary_gateway_id: int | None = None,
        local_link_kind: str = "lan",
        uplink_kind: str = "fiber",
        seed: int = 0,
    ) -> "Topology":
        """Group consecutive node-id blocks of size ``fan_out`` per gateway."""
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if fan_out < 1:
            raise ValueError("fan_out must be >= 1")
        gateways = tuple(
            GatewayProfile(
                gateway_id=g,
                child_ids=tuple(
                    range(g * fan_out, min((g + 1) * fan_out, num_nodes))
                ),
                local_link_kind=local_link_kind,
                uplink_kind=uplink_kind,
            )
            for g in range((num_nodes + fan_out - 1) // fan_out)
        )
        return cls(
            gateways=gateways,
            aggregation=(
                aggregation if aggregation is not None else AggregationPolicy()
            ),
            second_opinion_fraction=second_opinion_fraction,
            per_transfer_overhead_bytes=per_transfer_overhead_bytes,
            canary_gateway_id=canary_gateway_id,
            seed=seed,
        )
