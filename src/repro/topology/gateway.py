"""Gateway-side machinery: upload aggregation and the second-opinion model.

Both pieces are engine-agnostic: the lockstep schedule and the event
kernel drive the same :class:`GatewayBuffer` and :class:`SecondOpinion`
objects, which is what keeps the two modes trajectory-equivalent under
``barrier=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import Dataset
from repro.hw.specs import GPUSpec
from repro.models.layer_specs import alexnet_spec
from repro.topology.model import AggregationPolicy

__all__ = [
    "BufferedUpload",
    "GatewayBuffer",
    "GatewayStageRecord",
    "SecondOpinion",
    "SecondOpinionResult",
]


@dataclass(frozen=True)
class BufferedUpload:
    """One node's (possibly second-opinion-filtered) upload, parked at
    its gateway awaiting the next WAN flush."""

    stage_index: int
    node_id: int
    data: Dataset


@dataclass
class GatewayBuffer:
    """Holds children's uploads until the aggregation policy flushes them.

    Flush order is fixed at ``(stage_index, node_id)`` so both engines
    offer the same pool to the Cloud scheduler in the same order.
    """

    policy: AggregationPolicy
    entries: list[BufferedUpload] = field(default_factory=list)

    def offer(self, stage_index: int, node_id: int, data: Dataset) -> None:
        """Park one child's upload; empty uploads are dropped."""
        if len(data):
            self.entries.append(BufferedUpload(stage_index, node_id, data))

    @property
    def buffered_images(self) -> int:
        return sum(len(e.data) for e in self.entries)

    @property
    def oldest_stage(self) -> int | None:
        if not self.entries:
            return None
        return min(e.stage_index for e in self.entries)

    def should_flush(self, current_stage: int) -> bool:
        """Does the policy fire at this stage boundary?

        With aggregation disabled every non-empty buffer flushes
        immediately (one WAN transfer per upload — the unamortized
        baseline).  The size threshold fires at *exactly*
        ``flush_images``, not only above it.
        """
        if not self.entries:
            return False
        if not self.policy.enabled:
            return True
        if self.buffered_images >= self.policy.flush_images:
            return True
        return (
            current_stage - self.oldest_stage >= self.policy.max_age_stages
        )

    def flush(self) -> list[BufferedUpload]:
        """Pop everything, ordered by ``(stage_index, node_id)``.

        Flushing an empty buffer (the horizon force-flush on an idle
        gateway) is a no-op returning ``[]`` — no WAN transfer happens.
        """
        entries = sorted(
            self.entries, key=lambda e: (e.stage_index, e.node_id)
        )
        self.entries.clear()
        return entries


@dataclass(frozen=True)
class SecondOpinionResult:
    """Outcome of one gateway second-opinion pass over one upload."""

    escalated: Dataset  # what still travels to the Cloud
    resolved_images: int  # handled locally at the gateway
    time_s: float  # modeled gateway inference time
    energy_j: float  # modeled gateway energy


class SecondOpinion:
    """Mid-size classifier at the gateway that settles some flagged inputs.

    A configurable fraction of each flagged upload is resolved locally
    (the gateway's model is confident enough to answer without the
    Cloud); only the remainder escalates upstream.  Which images resolve
    is a pure function of ``(seed, gateway, node, stage)``, so lockstep,
    event, and any worker count agree on the escalated subset.

    Cost is modeled, not executed: the gateway pays one forward pass per
    *offered* image on its own board, exactly like node-side inference.
    """

    def __init__(
        self, fraction: float, seed: int, device: GPUSpec
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.seed = seed
        self.device = device
        self.spec = alexnet_spec()

    def resolve(
        self, gateway_id: int, node_id: int, stage_index: int, data: Dataset
    ) -> SecondOpinionResult:
        n = len(data)
        if n == 0 or self.fraction == 0.0:
            return SecondOpinionResult(data, 0, 0.0, 0.0)
        time_s = n * self.spec.total_ops / self.device.max_ops
        energy_j = time_s * self.device.peak_power_w
        k = int(self.fraction * n)
        if k == 0:
            return SecondOpinionResult(data, 0, time_s, energy_j)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (self.seed, gateway_id, node_id, stage_index)
            )
        )
        resolved = rng.choice(n, size=k, replace=False)
        keep = np.setdiff1d(np.arange(n), resolved)
        return SecondOpinionResult(
            escalated=data.subset(keep),
            resolved_images=k,
            time_s=time_s,
            energy_j=energy_j,
        )


@dataclass(frozen=True)
class GatewayStageRecord:
    """One gateway's view of one stage (lockstep) or round (event)."""

    stage_index: int
    gateway_id: int
    offered_images: int  # arrived from children this stage
    resolved_images: int  # settled by the second-opinion model
    flushed_images: int  # left for the Cloud this stage
    flushed_bytes: int  # image payload + framing overhead
    overhead_bytes: int
    buffered_images: int  # still parked after this stage
    flushed: bool
    wan_time_s: float = 0.0
    wan_energy_j: float = 0.0
    second_opinion_time_s: float = 0.0
    second_opinion_energy_j: float = 0.0
