"""Lockstep fleet schedule with a gateway tier interposed.

This mirrors :func:`repro.fleet.simulation._run_fleet_schedule` stage by
stage, with two extra hops:

1. every node ships its (full or flagged) stage data to its gateway over
   the uncontended local link;
2. the gateway optionally settles a fraction of flagged inputs with its
   second-opinion model, parks the rest in its :class:`GatewayBuffer`,
   and — when the aggregation policy fires — flushes the buffer as one
   framed WAN transfer contending on the shared backhaul.

Stage 0 (the initialization upload) and the final stage (the horizon)
force a flush, so the Cloud always initializes from the full stage-0
pool — in exactly the flat engine's node order — and no data is
stranded at the end of a run.

Model push-downs travel two hops in reverse: one WAN copy per gateway
per rollout wave (the amortization win), then one local copy per child.
All per-node accounting (records, ledgers) stays denominated at the
node's own hop, so flat and hierarchical reports remain comparable;
tier attribution lands in the fleet ledger's ``record_tier`` overlay.
"""

from __future__ import annotations

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.data.datasets import Dataset
from repro.fleet.simulation import (
    FleetAssets,
    FleetReport,
    FleetRuntime,
    FleetStageRecord,
    NodeStageRecord,
    NodeTrajectory,
    _node_stage_records,
    cloud_initialize,
    cloud_try_update,
    pooled_node_stage,
    reseed_diagnoser,
    rollback_attrs,
)
from repro.fleet.uplink import SharedUplink, Transfer
from repro.obs.trace import Tracer
from repro.topology.gateway import (
    GatewayBuffer,
    GatewayStageRecord,
    SecondOpinion,
)
from repro.topology.model import Topology
from repro.transfer.finetune import evaluate

__all__ = ["run_topology_schedule"]


def run_topology_schedule(
    config,
    assets: FleetAssets,
    runtime: FleetRuntime,
    topology: Topology,
    uplink: SharedUplink,
    pool,
    *,
    tracer: Tracer | None = None,
) -> FleetReport:
    """Replay the fleet schedule through the gateway tier (lockstep)."""
    scenario = assets.scenario
    base = scenario.base
    profiles = assets.profiles
    cloud = runtime.cloud
    registry = runtime.registry
    scheduler = runtime.scheduler
    deployed_net = runtime.deployed_net

    report = FleetReport(
        config=config, scenario=scenario, registry=registry, topology=topology
    )
    report.nodes = [NodeTrajectory(profile=p) for p in profiles]
    all_node_ids = tuple(p.node_id for p in profiles)
    num_stages = len(assets.node_stages[0])
    tracing = tracer is not None and tracer.enabled

    gateways = topology.gateways
    buffers = {
        g.gateway_id: GatewayBuffer(policy=topology.aggregation)
        for g in gateways
    }
    opinions = {
        g.gateway_id: SecondOpinion(
            topology.second_opinion_fraction, topology.seed, g.device
        )
        for g in gateways
    }
    gateway_of = {
        node_id: topology.gateway_of(node_id) for node_id in all_node_ids
    }
    cursor = 0.0

    for s in range(num_stages):
        is_initial = s == 0
        stage_start = cursor
        trace_t0 = stage_start if tracing else None
        active_state = (
            registry.active.state if len(registry) else assets.initial_state
        )
        # --- edge compute: identical to the flat engine, tier-tagged ---
        if pool is None:
            deployed_net.load_state_dict(active_state)
            node_reports = []
            for i in range(len(profiles)):
                reseed_diagnoser(
                    runtime.nodes[i].diagnoser,
                    base.seed,
                    profiles[i].node_id,
                    s,
                )
                node_report = runtime.nodes[i].process_stage(
                    assets.node_stages[i][s]
                )
                node_reports.append(node_report)
                if tracing:
                    tracer.extend(
                        _node_stage_records(
                            node_report,
                            stage_index=s,
                            node_id=profiles[i].node_id,
                            system_id=config.system_id,
                            t0=stage_start,
                            tier="edge",
                        )
                    )
        else:
            by_index = pooled_node_stage(
                pool,
                config.system_id,
                s,
                [(i, active_state) for i in range(len(profiles))],
                trace_t0=trace_t0,
                tier="edge",
            )
            node_reports = []
            for i in range(len(profiles)):
                node_report, records = by_index[i]
                node_reports.append(node_report)
                if tracing and records is not None:
                    tracer.extend(records)

        # --- node -> gateway: what each node ships off-board ----------
        uploads: list[Dataset] = []
        upload_counts: list[int] = []
        for i, node_report in enumerate(node_reports):
            if is_initial or config.uploads_everything:
                uploads.append(assets.node_stages[i][s].new_data)
                upload_counts.append(node_report.acquired_images)
            else:
                uploads.append(node_report.upload_data)
                upload_counts.append(len(node_report.upload_data))

        compute_times = [
            r.inference_time_s + r.diagnosis_time_s for r in node_reports
        ]
        uploads_start = stage_start + max(compute_times, default=0.0)
        local_times = []
        local_energies = []
        for i, profile in enumerate(profiles):
            local_link = gateway_of[profile.node_id].local_link
            num_bytes = upload_counts[i] * JPEG_IMAGE_BYTES
            local_times.append(local_link.transfer_time_s(num_bytes))
            local_energies.append(local_link.transfer_energy_j(num_bytes))
            if tracing and upload_counts[i]:
                tracer.span(
                    "net",
                    "upload",
                    uploads_start,
                    uploads_start + local_times[i],
                    node=profile.node_id,
                    stage=s,
                    system=config.system_id,
                    bytes=num_bytes,
                    tier="edge",
                    gateway=gateway_of[profile.node_id].gateway_id,
                )

        # --- gateway: second opinion, then buffer -------------------
        so_start = uploads_start + max(local_times, default=0.0)
        so_times = {g.gateway_id: 0.0 for g in gateways}
        so_energies = {g.gateway_id: 0.0 for g in gateways}
        offered = {g.gateway_id: 0 for g in gateways}
        resolved = {g.gateway_id: 0 for g in gateways}
        apply_opinion = (
            not is_initial
            and not config.uploads_everything
            and topology.second_opinion_fraction > 0.0
        )
        for i, profile in enumerate(profiles):
            g = gateway_of[profile.node_id]
            data = uploads[i]
            offered[g.gateway_id] += len(data)
            if apply_opinion and len(data):
                result = opinions[g.gateway_id].resolve(
                    g.gateway_id, profile.node_id, s, data
                )
                so_times[g.gateway_id] += result.time_s
                so_energies[g.gateway_id] += result.energy_j
                resolved[g.gateway_id] += result.resolved_images
                data = result.escalated
            buffers[g.gateway_id].offer(s, profile.node_id, data)
        if tracing:
            for g in gateways:
                if so_times[g.gateway_id] > 0:
                    tracer.span(
                        "gateway",
                        "second_opinion",
                        so_start,
                        so_start + so_times[g.gateway_id],
                        gateway=g.gateway_id,
                        stage=s,
                        system=config.system_id,
                        tier="gateway",
                        offered=offered[g.gateway_id],
                        resolved=resolved[g.gateway_id],
                    )

        # --- gateway -> cloud: amortized WAN flushes ------------------
        force_flush = is_initial or s == num_stages - 1
        flushed_entries = []
        flush_meta = []  # (gateway, images, payload+overhead bytes)
        for g in gateways:
            buffer = buffers[g.gateway_id]
            if not (force_flush or buffer.should_flush(s)):
                continue
            entries = buffer.flush()
            if not entries:
                continue  # horizon flush on an idle gateway: no-op
            images = sum(len(e.data) for e in entries)
            flushed_entries.extend(entries)
            flush_meta.append(
                (
                    g,
                    images,
                    images * JPEG_IMAGE_BYTES
                    + topology.per_transfer_overhead_bytes,
                )
            )
        flushed_entries.sort(key=lambda e: (e.stage_index, e.node_id))
        wan_transfers = [
            Transfer(
                node_id=g.gateway_id,
                link=g.wan_link(profiles),
                num_bytes=num_bytes,
            )
            for g, _, num_bytes in flush_meta
        ]
        wan_times, wan_makespan = uplink.stage_upload_times(wan_transfers)
        wan_start = so_start + max(so_times.values(), default=0.0)
        if tracing:
            for k, (g, images, num_bytes) in enumerate(flush_meta):
                tracer.span(
                    "net",
                    "flush",
                    wan_start,
                    wan_start + wan_times[k],
                    gateway=g.gateway_id,
                    stage=s,
                    system=config.system_id,
                    bytes=num_bytes,
                    images=images,
                    tier="gateway",
                )

        fleet_accuracy = float(
            np.mean([r.accuracy_before_update for r in node_reports])
        )

        # --- cloud side -----------------------------------------------
        if is_initial:
            # The forced stage-0 flush delivers every node's full data;
            # sorted by (stage, node_id) the pool order matches the flat
            # engine exactly, so v1 is the identical model.
            outcome = cloud_initialize(
                s,
                [e.data for e in flushed_entries],
                runtime=runtime,
                base=base,
                all_node_ids=all_node_ids,
            )
        else:
            for entry in flushed_entries:
                scheduler.offer(entry.stage_index, entry.node_id, entry.data)
            outcome = cloud_try_update(
                s,
                fleet_accuracy,
                lambda: Dataset.concat(
                    [
                        assets.node_stages[i][s].new_data
                        for i in topology.canary_node_ids
                    ]
                ),
                runtime=runtime,
                base=base,
                all_node_ids=all_node_ids,
            )
        push_bytes_per_node = outcome.push_bytes_per_node

        # --- push-down: one WAN copy per gateway, then local fan-out --
        update_start = wan_start + wan_makespan
        update_end = update_start + outcome.modeled_update_time_s
        # One copy of each pushed wave crosses the WAN per gateway; a
        # node's push_bytes already count every wave it received, so the
        # max over children is the per-gateway WAN payload.
        gw_wan_push = {
            g.gateway_id: max(
                (push_bytes_per_node[c] for c in g.child_ids), default=0
            )
            for g in gateways
        }
        push_times = {}
        push_energies = {}
        stage_push_tail = 0.0
        for g in gateways:
            wan_bytes = gw_wan_push[g.gateway_id]
            wan_push_s = g.wan_link(profiles).model_push_time_s(wan_bytes)
            if tracing and wan_bytes:
                tracer.span(
                    "net",
                    "push",
                    update_end,
                    update_end + wan_push_s,
                    gateway=g.gateway_id,
                    stage=s,
                    system=config.system_id,
                    bytes=wan_bytes,
                    tier="gateway",
                )
            local_tail = 0.0
            for c in g.child_ids:
                down = push_bytes_per_node[c]
                local_s = g.local_link.model_push_time_s(down)
                push_times[c] = wan_push_s + local_s
                push_energies[c] = g.local_link.model_push_energy_j(down)
                local_tail = max(local_tail, local_s)
                if tracing and down:
                    tracer.span(
                        "net",
                        "push",
                        update_end + wan_push_s,
                        update_end + wan_push_s + local_s,
                        node=c,
                        stage=s,
                        system=config.system_id,
                        bytes=down,
                        tier="edge",
                        gateway=g.gateway_id,
                    )
            stage_push_tail = max(stage_push_tail, wan_push_s + local_tail)
        if tracing:
            if outcome.modeled_update_time_s > 0:
                tracer.span(
                    "cloud",
                    "init" if is_initial else "update",
                    update_start,
                    update_end,
                    stage=s,
                    system=config.system_id,
                    pooled=outcome.pooled_for_training,
                    promoted=outcome.promoted,
                    tier="cloud",
                )
            tracer.event(
                "cloud",
                "decision",
                update_end,
                stage=s,
                system=config.system_id,
                updated=outcome.updated,
                promoted=outcome.promoted,
                tier="cloud",
                **rollback_attrs(outcome),
            )
        cursor = update_end + stage_push_tail

        # --- per-node records -----------------------------------------
        stage_download_bytes = 0
        for i, profile in enumerate(profiles):
            node_report = node_reports[i]
            down = push_bytes_per_node[profile.node_id]
            stage_download_bytes += down
            record = NodeStageRecord(
                stage_index=s,
                node_id=profile.node_id,
                acquired=node_report.acquired_images,
                uploaded=upload_counts[i],
                accuracy_on_new=node_report.accuracy_before_update,
                upload_time_s=local_times[i],
                upload_solo_time_s=local_times[i],  # LAN hop: uncontended
                upload_energy_j=local_energies[i],
                node_compute_time_s=(
                    node_report.inference_time_s + node_report.diagnosis_time_s
                ),
                node_compute_energy_j=node_report.node_energy_j,
                download_bytes=down,
                download_energy_j=push_energies[profile.node_id],
            )
            trajectory = report.nodes[i]
            trajectory.records.append(record)
            trajectory.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
            if down:
                trajectory.ledger.record_download(s, down)
            report.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
        if stage_download_bytes:
            report.ledger.record_download(s, stage_download_bytes)

        # --- tier attribution overlay ---------------------------------
        edge_up_bytes = sum(upload_counts) * JPEG_IMAGE_BYTES
        wan_up_bytes = sum(num_bytes for _, _, num_bytes in flush_meta)
        overhead = (
            len(flush_meta) * topology.per_transfer_overhead_bytes
        )
        report.ledger.record_tier(
            s,
            edge_up_bytes=edge_up_bytes,
            wan_up_bytes=wan_up_bytes,
            edge_down_bytes=stage_download_bytes,
            wan_down_bytes=sum(gw_wan_push.values()),
            edge_up_transfers=sum(1 for c in upload_counts if c),
            wan_up_transfers=len(flush_meta),
            overhead_bytes=overhead,
        )

        # --- per-gateway records --------------------------------------
        flushed_by_gateway = {
            g.gateway_id: (images, num_bytes, wan_times[j])
            for j, (g, images, num_bytes) in enumerate(flush_meta)
        }
        for g in gateways:
            flushed_here = g.gateway_id in flushed_by_gateway
            if flushed_here:
                images, num_bytes, wan_time = flushed_by_gateway[g.gateway_id]
                wan_energy = g.wan_link(profiles).transfer_energy_j(num_bytes)
            else:
                images, num_bytes, wan_time, wan_energy = 0, 0, 0.0, 0.0
            report.gateway_stages.append(
                GatewayStageRecord(
                    stage_index=s,
                    gateway_id=g.gateway_id,
                    offered_images=offered[g.gateway_id],
                    resolved_images=resolved[g.gateway_id],
                    flushed_images=images,
                    flushed_bytes=num_bytes,
                    overhead_bytes=(
                        topology.per_transfer_overhead_bytes if images else 0
                    ),
                    buffered_images=buffers[g.gateway_id].buffered_images,
                    flushed=flushed_here,
                    wan_time_s=wan_time,
                    wan_energy_j=wan_energy,
                    second_opinion_time_s=so_times[g.gateway_id],
                    second_opinion_energy_j=so_energies[g.gateway_id],
                )
            )

        eval_accuracy = evaluate(cloud.inference_net, assets.eval_data)
        report.stages.append(
            FleetStageRecord(
                stage_index=s,
                acquired=sum(r.acquired_images for r in node_reports),
                uploaded=sum(upload_counts),
                pooled_for_training=outcome.pooled_for_training,
                updated=outcome.updated,
                promoted=outcome.promoted,
                fleet_accuracy_on_new=fleet_accuracy,
                eval_accuracy=eval_accuracy,
                modeled_update_time_s=outcome.modeled_update_time_s,
                modeled_cloud_energy_j=outcome.modeled_cloud_energy_j,
                upload_makespan_s=wan_makespan,
                download_bytes=stage_download_bytes,
            )
        )
        m = runtime.metrics
        if m is not None:
            sys_id = config.system_id
            m.counter("fleet.stages", system=sys_id).inc()
            m.counter("fleet.images.acquired", system=sys_id).inc(
                sum(r.acquired_images for r in node_reports)
            )
            m.counter("fleet.images.flagged", system=sys_id).inc(
                sum(r.flagged_images for r in node_reports)
            )
            m.counter("fleet.images.uploaded", system=sys_id).inc(
                sum(upload_counts)
            )
            m.counter(
                "topology.images.resolved", system=sys_id, tier="gateway"
            ).inc(sum(resolved.values()))
            m.counter(
                "topology.flushes", system=sys_id, tier="gateway"
            ).inc(len(flush_meta))
            m.counter(
                "topology.wan_bytes", system=sys_id, tier="gateway"
            ).inc(wan_up_bytes)
            m.counter(
                "topology.overhead_bytes", system=sys_id, tier="gateway"
            ).inc(overhead)
            hist = m.histogram("fleet.upload_time_s", system=sys_id)
            for t in local_times:
                hist.observe(t)
            snap = report.ledger.snapshot()
            m.gauge("fleet.bytes.uploaded", system=sys_id).set(
                snap.uploaded_bytes
            )
            m.gauge("fleet.bytes.downloaded", system=sys_id).set(
                snap.downloaded_bytes
            )
    report.rollouts = list(scheduler.history)
    return report
