"""Hierarchical edge -> gateway -> cloud fleet tier.

The pure shape lives in :mod:`repro.topology.model`; gateway-side state
(upload buffers, the second-opinion model) in
:mod:`repro.topology.gateway`; and the two execution engines in
:mod:`repro.topology.lockstep` and :mod:`repro.topology.event`.  Users
normally pass a :class:`Topology` to ``run_fleet(..., topology=...)`` or
``run_fleet_event(..., topology=...)`` rather than importing the engines
directly.
"""

from repro.topology.gateway import (
    BufferedUpload,
    GatewayBuffer,
    GatewayStageRecord,
    SecondOpinion,
    SecondOpinionResult,
)
from repro.topology.model import AggregationPolicy, GatewayProfile, Topology

__all__ = [
    "AggregationPolicy",
    "BufferedUpload",
    "GatewayBuffer",
    "GatewayProfile",
    "GatewayStageRecord",
    "SecondOpinion",
    "SecondOpinionResult",
    "Topology",
]
