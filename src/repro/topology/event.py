"""Event-driven fleet with a gateway tier: flushes as backhaul flows.

:class:`TopologyEventFleet` subclasses the flat event engine and swaps
three things, leaving the node/cloud machinery untouched:

* **transport** — a node's upload rides the uncontended local hop to its
  gateway (a plain timeout) instead of a shared-backhaul flow;
* **gateway processes** — one kernel process per gateway runs the
  second-opinion model, parks uploads in a :class:`GatewayBuffer`, and
  flushes them as one framed flow on the shared WAN backhaul
  (:class:`~repro.events.FlowLink`); epoch-0 uploads force-flush so the
  Cloud's initialization barrier sees every node's data;
* **push-down** — one WAN flow per gateway per wave, then local copies
  fan out to the children.

In ``barrier`` mode gateways synchronize on the same round events as
the nodes and report to the Cloud once per round (flushed or not), so
the Cloud's round barrier — and therefore the lockstep-equivalence
guarantee — survives aggregation: buffered rounds simply contribute an
empty report.  With no horizon, the final round force-flushes, matching
the lockstep engine's horizon flush; horizon-bounded runs may end with
images still parked (reported in ``gateway_leftover_images``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.fleet.async_sim import _Arrival, _EventFleet
from repro.fleet.simulation import (
    FleetAssets,
    FleetRuntime,
    build_fleet_runtime,
)
from repro.events import Store
from repro.topology.gateway import GatewayBuffer, SecondOpinion
from repro.topology.model import Topology

__all__ = ["GatewayFlushRecord", "TopologyEventFleet"]


@dataclass(frozen=True)
class GatewayFlushRecord:
    """One gateway WAN flush in an event-driven run."""

    gateway_id: int
    round_index: int  # round (barrier) or triggering epoch (async)
    images: int
    payload_bytes: int  # image payload + framing overhead
    overhead_bytes: int
    start_s: float
    done_s: float


class _GatewayMsg:
    """One node's upload, landed at its gateway over the local hop."""

    __slots__ = ("node_id", "epoch", "stage_index", "data", "accuracy")

    def __init__(self, node_id, epoch, stage_index, data, accuracy):
        self.node_id = node_id
        self.epoch = epoch
        self.stage_index = stage_index
        self.data = data
        self.accuracy = accuracy


class _GatewayRound:
    """A gateway's per-round report to the barrier Cloud."""

    __slots__ = ("gateway_id", "round_index", "entries", "accuracies")

    def __init__(self, gateway_id, round_index, entries, accuracies):
        self.gateway_id = gateway_id
        self.round_index = round_index
        self.entries = entries  # BufferedUpload list flushed this round
        self.accuracies = accuracies  # [(node_id, accuracy)] all children


class TopologyEventFleet(_EventFleet):
    """The flat event engine with gateway processes interposed."""

    def __init__(self, config, assets: FleetAssets, *, topology: Topology,
                 **kwargs) -> None:
        # Set before super().__init__: _make_runtime consults it.
        self.topology = topology
        super().__init__(config, assets, **kwargs)
        self.report.topology = topology
        self.gateway_by_id = {
            g.gateway_id: g for g in topology.gateways
        }
        self.gateway_of = {
            node_id: topology.gateway_of(node_id)
            for node_id in self.all_node_ids
        }
        self.gateway_inbox = {
            g.gateway_id: Store(self.sim) for g in topology.gateways
        }
        self.gateway_reports = Store(self.sim)
        self.buffers = {
            g.gateway_id: GatewayBuffer(policy=topology.aggregation)
            for g in topology.gateways
        }
        self.opinions = {
            g.gateway_id: SecondOpinion(
                topology.second_opinion_fraction, topology.seed, g.device
            )
            for g in topology.gateways
        }

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------
    def _make_runtime(self, config, assets) -> FleetRuntime:
        return build_fleet_runtime(
            config,
            assets,
            metrics=self.metrics,
            canary_ids=self.topology.canary_node_ids,
        )

    def _canary_ids(self) -> tuple[int, ...]:
        return self.topology.canary_node_ids

    def _transport(
        self, i, profile, stage, epoch, upload_data, count, node_report
    ):
        """Ship the upload one hop, to the node's gateway (uncontended)."""
        g = self.gateway_of[profile.node_id]
        num_bytes = count * JPEG_IMAGE_BYTES
        upload_start = self.sim.now
        yield self.sim.timeout(g.local_link.transfer_time_s(num_bytes))
        upload_done = self.sim.now
        if count:
            self.tracer.span(
                "net",
                "upload",
                upload_start,
                upload_done,
                node=profile.node_id,
                stage=stage.index,
                epoch=epoch,
                system=self.config.system_id,
                bytes=num_bytes,
                tier="edge",
                gateway=g.gateway_id,
            )
        self.report.ledger.record_tier(
            epoch,
            edge_up_bytes=num_bytes,
            edge_up_transfers=1 if count else 0,
        )
        self.gateway_inbox[g.gateway_id].put(
            _GatewayMsg(
                profile.node_id,
                epoch,
                stage.index,
                upload_data,
                node_report.accuracy_before_update,
            )
        )
        return (
            upload_start,
            upload_done,
            g.local_link.transfer_energy_j(num_bytes),
        )

    def _collect_round(self, round_index: int):
        """Collect one report per gateway; flatten flushes into arrivals."""
        reports = []
        for _ in range(len(self.topology.gateways)):
            reports.append((yield self.gateway_reports.get()))
        reports.sort(key=lambda r: r.gateway_id)
        entries = [e for r in reports for e in r.entries]
        entries.sort(key=lambda e: (e.stage_index, e.node_id))
        arrivals = [
            _Arrival(e.node_id, e.stage_index, e.stage_index, e.data, 0.0)
            for e in entries
        ]
        accuracy_by_node = {}
        for r in reports:
            for node_id, accuracy in r.accuracies:
                accuracy_by_node[node_id] = accuracy
        ordered = [
            accuracy_by_node[n] for n in sorted(accuracy_by_node)
        ]
        return arrivals, float(np.mean(ordered))

    def _spawn_processes(self) -> None:
        for i in range(len(self.profiles)):
            self.sim.process(self._node_proc(i))
        for g in self.topology.gateways:
            self.sim.process(
                self._gateway_proc_barrier(g)
                if self.barrier
                else self._gateway_proc_async(g)
            )
        self.sim.process(
            self._cloud_barrier() if self.barrier else self._cloud_async()
        )

    # ------------------------------------------------------------------
    # Gateway processes
    # ------------------------------------------------------------------
    def _apply_second_opinion(self, g, node_id: int, stage_key: int, data):
        """Run the gateway model over one upload; returns escalated data.

        The modeled inference time is returned for the caller to spend as
        virtual time.  Seeded per ``(gateway, node, stage)``, exactly like
        the lockstep engine, so both modes escalate the same subsets.
        """
        if (
            stage_key == 0
            or self.config.uploads_everything
            or self.topology.second_opinion_fraction == 0.0
            or not len(data)
        ):
            return data, 0, 0.0
        result = self.opinions[g.gateway_id].resolve(
            g.gateway_id, node_id, stage_key, data
        )
        return result.escalated, result.resolved_images, result.time_s

    def _wan_flush(self, g, entries, round_index: int):
        """One framed WAN transfer carrying a flushed buffer upstream."""
        images = sum(len(e.data) for e in entries)
        payload = (
            images * JPEG_IMAGE_BYTES + self.topology.per_transfer_overhead_bytes
        )
        wan = g.wan_link(self.profiles)
        start = self.sim.now
        yield self.uplink.transfer(
            payload,
            wan.bandwidth_bps,
            latency_s=wan.latency_s,
            tag=g.gateway_id,
        )
        self.tracer.span(
            "net",
            "flush",
            start,
            self.sim.now,
            gateway=g.gateway_id,
            stage=round_index,
            system=self.config.system_id,
            bytes=payload,
            images=images,
            tier="gateway",
        )
        self.report.gateway_flushes.append(
            GatewayFlushRecord(
                gateway_id=g.gateway_id,
                round_index=round_index,
                images=images,
                payload_bytes=payload,
                overhead_bytes=self.topology.per_transfer_overhead_bytes,
                start_s=start,
                done_s=self.sim.now,
            )
        )
        self.report.ledger.record_tier(
            round_index,
            wan_up_bytes=payload,
            wan_up_transfers=1,
            overhead_bytes=self.topology.per_transfer_overhead_bytes,
        )
        m = self.metrics
        if m is not None:
            sys_id = self.config.system_id
            m.counter("topology.flushes", system=sys_id, tier="gateway").inc()
            m.counter(
                "topology.wan_bytes", system=sys_id, tier="gateway"
            ).inc(payload)
            m.counter(
                "topology.overhead_bytes", system=sys_id, tier="gateway"
            ).inc(self.topology.per_transfer_overhead_bytes)

    def _gateway_proc_barrier(self, g):
        """Round-synchronized gateway: report to the Cloud every round."""
        inbox = self.gateway_inbox[g.gateway_id]
        buffer = self.buffers[g.gateway_id]
        num_stages = len(self.assets.node_stages[0])
        round_index = 0
        while True:
            msgs = []
            for _ in range(len(g.child_ids)):
                msgs.append((yield inbox.get()))
            msgs.sort(key=lambda m: m.node_id)
            accuracies = [(m.node_id, m.accuracy) for m in msgs]
            so_time = 0.0
            resolved = 0
            for m in msgs:
                data, k, time_s = self._apply_second_opinion(
                    g, m.node_id, round_index, m.data
                )
                so_time += time_s
                resolved += k
                buffer.offer(round_index, m.node_id, data)
            if so_time > 0:
                so_start = self.sim.now
                yield self.sim.timeout(so_time)
                self.tracer.span(
                    "gateway",
                    "second_opinion",
                    so_start,
                    self.sim.now,
                    gateway=g.gateway_id,
                    stage=round_index,
                    system=self.config.system_id,
                    tier="gateway",
                    resolved=resolved,
                )
            force = round_index == 0 or (
                self.horizon_s is None and round_index == num_stages - 1
            )
            entries = []
            if force or buffer.should_flush(round_index):
                entries = buffer.flush()
            if entries:
                yield from self._wan_flush(g, entries, round_index)
            self.gateway_reports.put(
                _GatewayRound(g.gateway_id, round_index, entries, accuracies)
            )
            keep_going = yield self._round_event(round_index)
            if not keep_going:
                return
            round_index += 1

    def _gateway_proc_async(self, g):
        """Free-running gateway: flush on threshold/age, per message.

        Epoch-0 messages force an immediate flush so the Cloud's one
        required synchronization point — initialization on every node's
        first upload — is never starved by the aggregation policy.
        """
        inbox = self.gateway_inbox[g.gateway_id]
        buffer = self.buffers[g.gateway_id]
        while True:
            msg = yield inbox.get()
            data, resolved, so_time = self._apply_second_opinion(
                g, msg.node_id, msg.epoch, msg.data
            )
            if so_time > 0:
                so_start = self.sim.now
                yield self.sim.timeout(so_time)
                self.tracer.span(
                    "gateway",
                    "second_opinion",
                    so_start,
                    self.sim.now,
                    gateway=g.gateway_id,
                    stage=msg.epoch,
                    system=self.config.system_id,
                    tier="gateway",
                    resolved=resolved,
                )
            buffer.offer(msg.epoch, msg.node_id, data)
            if msg.epoch == 0 or buffer.should_flush(msg.epoch):
                entries = buffer.flush()
                if entries:
                    yield from self._wan_flush(g, entries, msg.epoch)
                    for e in entries:
                        self.arrivals.put(
                            _Arrival(
                                e.node_id,
                                e.stage_index,
                                e.stage_index,
                                e.data,
                                0.0,
                            )
                        )

    # ------------------------------------------------------------------
    # Two-hop push-down
    # ------------------------------------------------------------------
    def _push_wave(self, pushes, stage_hint: int):
        """One WAN copy per gateway, then local fan-out to the children."""
        state = self.runtime.registry.active.state
        by_gateway: dict[int, list] = {}
        for node_id, num_bytes in pushes:
            gid = self.gateway_of[node_id].gateway_id
            by_gateway.setdefault(gid, []).append((node_id, num_bytes))
        procs = [
            self.sim.process(
                self._gateway_push_proc(gid, items, state, stage_hint)
            )
            for gid, items in sorted(by_gateway.items())
        ]
        for proc in procs:
            yield proc

    def _gateway_push_proc(self, gateway_id, items, state, stage_hint):
        g = self.gateway_by_id[gateway_id]
        wan = g.wan_link(self.profiles)
        unit = max(num_bytes for _, num_bytes in items)
        start = self.sim.now
        yield self.downlink.transfer(
            unit,
            wan.downlink_bps,
            latency_s=wan.latency_s,
            tag=gateway_id,
        )
        self.tracer.span(
            "net",
            "push",
            start,
            self.sim.now,
            gateway=gateway_id,
            stage=stage_hint,
            system=self.config.system_id,
            bytes=unit,
            tier="gateway",
        )
        self.report.ledger.record_tier(stage_hint, wan_down_bytes=unit)
        procs = [
            self.sim.process(
                self._local_push_proc(g, node_id, num_bytes, state, stage_hint)
            )
            for node_id, num_bytes in items
        ]
        for proc in procs:
            yield proc

    def _local_push_proc(self, g, node_id, num_bytes, state, stage_hint):
        i = self.index_of[node_id]
        start = self.sim.now
        yield self.sim.timeout(g.local_link.model_push_time_s(num_bytes))
        self.tracer.span(
            "net",
            "push",
            start,
            self.sim.now,
            node=node_id,
            stage=stage_hint,
            system=self.config.system_id,
            bytes=num_bytes,
            tier="edge",
            gateway=g.gateway_id,
        )
        self.node_states[i] = state
        trajectory = self.report.nodes[i]
        trajectory.download_bytes += num_bytes
        trajectory.download_energy_j += g.local_link.model_push_energy_j(
            num_bytes
        )
        trajectory.ledger.record_download(stage_hint, num_bytes)
        self.report.ledger.record_download(stage_hint, num_bytes)
        self.report.ledger.record_tier(stage_hint, edge_down_bytes=num_bytes)

    # ------------------------------------------------------------------
    def run(self):
        report = super().run()
        report.gateway_leftover_images = {
            gateway_id: buffer.buffered_images
            for gateway_id, buffer in sorted(self.buffers.items())
        }
        return report
