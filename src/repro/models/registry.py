"""Named model configurations mirroring the paper's model lineup.

Table I compares AlexNet / GoogleNet / VGGNet — three capacities of ImageNet
classifier.  At IoT scale we mirror that as three width multipliers of the
shared 5-conv architecture; the ordering of capacity (and hence of accuracy,
both on ideal and drifted data) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.iot_models import build_classifier
from repro.nn import Sequential

__all__ = [
    "FC_LAYER_NAMES",
    "ModelConfig",
    "MODEL_CONFIGS",
    "build_model",
    "merge_head_state",
    "split_head_state",
]

#: the node-specific FC head of the shared-trunk classifier — the layers a
#: per-node-group specialization retrains while the CONV trunk stays shared
FC_LAYER_NAMES = ("fc6", "fc7", "fc8")


def _is_head_key(key: str) -> bool:
    return key.split(".", 1)[0] in FC_LAYER_NAMES


def split_head_state(
    state: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Split a classifier state dict into (trunk, fc-head) parts."""
    trunk = {k: v for k, v in state.items() if not _is_head_key(k)}
    head = {k: v for k, v in state.items() if _is_head_key(k)}
    return trunk, head


def merge_head_state(
    shared: dict[str, np.ndarray], head: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Overlay a specialized FC head onto a shared full state dict."""
    for key in head:
        if not _is_head_key(key):
            raise ValueError(f"{key!r} is not an FC-head parameter")
    merged = dict(shared)
    merged.update(head)
    return merged


@dataclass(frozen=True)
class ModelConfig:
    """A named trainable-model configuration."""

    name: str
    width: float
    hidden: int
    paper_counterpart: str

    def build(self, num_classes: int, rng: np.random.Generator) -> Sequential:
        return build_classifier(
            num_classes, rng, width=self.width, hidden=self.hidden
        )


MODEL_CONFIGS: dict[str, ModelConfig] = {
    "iot-alexnet": ModelConfig("iot-alexnet", 0.75, 96, "AlexNet"),
    "iot-googlenet": ModelConfig("iot-googlenet", 1.0, 128, "GoogleNet"),
    "iot-vggnet": ModelConfig("iot-vggnet", 1.5, 192, "VGGNet"),
}


def build_model(
    name: str, num_classes: int, rng: np.random.Generator
) -> Sequential:
    try:
        config = MODEL_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_CONFIGS)}"
        ) from None
    return config.build(num_classes, rng)
