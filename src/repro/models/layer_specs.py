"""Exact layer-shape tables for the networks the paper characterizes.

The analytical hardware models (Eqs. 1-14) need only layer *shapes* — the
number of filters ``M``, input feature maps ``N``, kernel side ``K``, and
output feature-map dims ``R x C`` — not trained weights.  This module records
the standard AlexNet and VGG-16 shapes (227x227 / 224x224 ImageNet inputs)
and a sequential proxy for GoogleNet used only for capacity comparisons.

It also derives the *diagnosis-network* shapes.  The diagnosis task runs the
shared trunk on each of the 9 jigsaw patches; the paper states its per-patch
output maps are half the inference network's in each spatial dimension
(55x55 vs 27x27 in conv1), i.e. a quarter of the computational load per
patch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "LayerSpec",
    "NetworkSpec",
    "alexnet_spec",
    "vgg16_spec",
    "googlenet_proxy_spec",
    "diagnosis_spec",
    "network_by_name",
]

BYTES_PER_VALUE = 4  # fp32 on both TX1 and the FPGA design


@dataclass(frozen=True)
class LayerSpec:
    """Shape of one CONV or FCN layer.

    ``kind`` is ``"conv"`` or ``"fc"``.  For FCN layers the paper's
    convention ``K = R = C = 1`` applies, so the same op/byte formulas hold.
    ``groups`` models AlexNet's two-tower convolutions: each filter sees
    only ``N/groups`` input maps.
    """

    name: str
    kind: str
    out_maps: int  # M
    in_maps: int  # N
    kernel: int  # K
    out_rows: int  # R
    out_cols: int  # C
    stride: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "fc"):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if min(self.out_maps, self.in_maps, self.kernel, self.out_rows,
               self.out_cols, self.stride, self.groups) < 1:
            raise ValueError(f"non-positive dimension in {self.name}")
        if self.kind == "fc" and (self.kernel, self.out_rows, self.out_cols) != (1, 1, 1):
            raise ValueError(f"FCN layer {self.name} must have K=R=C=1")
        if self.in_maps % self.groups or self.out_maps % self.groups:
            raise ValueError(
                f"{self.name}: channels must divide into {self.groups} groups"
            )

    @property
    def ops(self) -> int:
        """Eq. (1): 2*M*(N/groups)*K^2*R*C multiply-accumulate ops/image."""
        return (
            2
            * self.out_maps
            * (self.in_maps // self.groups)
            * self.kernel**2
            * self.out_rows
            * self.out_cols
        )

    @property
    def weight_count(self) -> int:
        return self.out_maps * (self.in_maps // self.groups) * self.kernel**2

    @property
    def weight_bytes(self) -> int:
        return self.weight_count * BYTES_PER_VALUE

    def input_values(self, batch: int = 1) -> int:
        """Dm size: N*K^2 x R*C per image (im2col-expanded, Fig. 8)."""
        return self.in_maps * self.kernel**2 * self.out_rows * self.out_cols * batch

    def output_values(self, batch: int = 1) -> int:
        return self.out_maps * self.out_rows * self.out_cols * batch

    def input_bytes(self, batch: int = 1) -> int:
        return self.input_values(batch) * BYTES_PER_VALUE

    def output_bytes(self, batch: int = 1) -> int:
        return self.output_values(batch) * BYTES_PER_VALUE


@dataclass(frozen=True)
class NetworkSpec:
    """A named stack of CONV and FCN layer shapes."""

    name: str
    layers: tuple[LayerSpec, ...]

    @property
    def conv_layers(self) -> tuple[LayerSpec, ...]:
        return tuple(s for s in self.layers if s.kind == "conv")

    @property
    def fc_layers(self) -> tuple[LayerSpec, ...]:
        return tuple(s for s in self.layers if s.kind == "fc")

    @property
    def total_ops(self) -> int:
        return sum(s.ops for s in self.layers)

    @property
    def conv_ops(self) -> int:
        return sum(s.ops for s in self.conv_layers)

    @property
    def fc_ops(self) -> int:
        return sum(s.ops for s in self.fc_layers)

    @property
    def weight_bytes(self) -> int:
        return sum(s.weight_bytes for s in self.layers)

    def layer(self, name: str) -> LayerSpec:
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no layer {name!r}")


def alexnet_spec(*, grouped: bool = False) -> NetworkSpec:
    """AlexNet on 227x227 inputs.

    ``grouped=False`` (default) is the single-tower CaffeNet variant the
    repo's hardware experiments use; ``grouped=True`` restores the original
    two-tower convolutions (groups=2 in conv2/4/5), which halves those
    layers' ops and weights.
    """
    g = 2 if grouped else 1
    return NetworkSpec(
        name="alexnet-grouped" if grouped else "alexnet",
        layers=(
            LayerSpec("conv1", "conv", 96, 3, 11, 55, 55, stride=4),
            LayerSpec("conv2", "conv", 256, 96, 5, 27, 27, groups=g),
            LayerSpec("conv3", "conv", 384, 256, 3, 13, 13),
            LayerSpec("conv4", "conv", 384, 384, 3, 13, 13, groups=g),
            LayerSpec("conv5", "conv", 256, 384, 3, 13, 13, groups=g),
            LayerSpec("fc6", "fc", 4096, 9216, 1, 1, 1),
            LayerSpec("fc7", "fc", 4096, 4096, 1, 1, 1),
            LayerSpec("fc8", "fc", 1000, 4096, 1, 1, 1),
        ),
    )


def vgg16_spec() -> NetworkSpec:
    """VGG-16 on 224x224 inputs."""
    return NetworkSpec(
        name="vgg16",
        layers=(
            LayerSpec("conv1_1", "conv", 64, 3, 3, 224, 224),
            LayerSpec("conv1_2", "conv", 64, 64, 3, 224, 224),
            LayerSpec("conv2_1", "conv", 128, 64, 3, 112, 112),
            LayerSpec("conv2_2", "conv", 128, 128, 3, 112, 112),
            LayerSpec("conv3_1", "conv", 256, 128, 3, 56, 56),
            LayerSpec("conv3_2", "conv", 256, 256, 3, 56, 56),
            LayerSpec("conv3_3", "conv", 256, 256, 3, 56, 56),
            LayerSpec("conv4_1", "conv", 512, 256, 3, 28, 28),
            LayerSpec("conv4_2", "conv", 512, 512, 3, 28, 28),
            LayerSpec("conv4_3", "conv", 512, 512, 3, 28, 28),
            LayerSpec("conv5_1", "conv", 512, 512, 3, 14, 14),
            LayerSpec("conv5_2", "conv", 512, 512, 3, 14, 14),
            LayerSpec("conv5_3", "conv", 512, 512, 3, 14, 14),
            LayerSpec("fc6", "fc", 4096, 25088, 1, 1, 1),
            LayerSpec("fc7", "fc", 4096, 4096, 1, 1, 1),
            LayerSpec("fc8", "fc", 1000, 4096, 1, 1, 1),
        ),
    )


def googlenet_proxy_spec() -> NetworkSpec:
    """Sequential proxy for GoogleNet's compute profile.

    GoogleNet's inception modules are not sequential, but the only place the
    paper uses GoogleNet is the Table I accuracy comparison.  This proxy
    matches its overall op count (~3.2 GFLOPs/image) and layer depth trend
    with a sequential stack so the same tooling applies.  Documented as a
    substitution in DESIGN.md.
    """
    return NetworkSpec(
        name="googlenet",
        layers=(
            LayerSpec("conv1", "conv", 64, 3, 7, 112, 112, stride=2),
            LayerSpec("conv2", "conv", 192, 64, 3, 56, 56),
            LayerSpec("inc3", "conv", 256, 192, 3, 28, 28),
            LayerSpec("inc4", "conv", 512, 256, 3, 14, 14),
            LayerSpec("inc5", "conv", 832, 512, 3, 7, 7),
            LayerSpec("fc", "fc", 1000, 1024, 1, 1, 1),
        ),
    )


def diagnosis_spec(inference: NetworkSpec, num_perm_classes: int = 100) -> NetworkSpec:
    """Per-patch diagnosis-network shapes derived from an inference network.

    Each of the 9 jigsaw patches runs the shared conv trunk with output
    feature maps halved in each spatial dimension (quarter load per patch,
    Section IV-B2), and the FCN head predicts the permutation index instead
    of the object class.
    """
    layers: list[LayerSpec] = []
    for spec in inference.conv_layers:
        layers.append(
            replace(
                spec,
                name=spec.name,
                out_rows=max(1, -(-spec.out_rows // 2)),
                out_cols=max(1, -(-spec.out_cols // 2)),
            )
        )
    fc_layers = inference.fc_layers
    if fc_layers:
        # Head: same hidden widths, final layer predicts permutation class.
        for spec in fc_layers[:-1]:
            layers.append(spec)
        last = fc_layers[-1]
        layers.append(replace(last, name=last.name, out_maps=num_perm_classes))
    return NetworkSpec(name=f"{inference.name}-diagnosis", layers=tuple(layers))


_REGISTRY = {
    "alexnet": alexnet_spec,
    "vgg16": vgg16_spec,
    "vggnet": vgg16_spec,
    "googlenet": googlenet_proxy_spec,
}


def network_by_name(name: str) -> NetworkSpec:
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
