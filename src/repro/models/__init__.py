"""Model zoo: trainable IoT-scale networks and full-size layer-shape specs."""

from repro.models.iot_models import (
    CONV_LAYER_NAMES,
    build_classifier,
    build_jigsaw_trunk,
    conv_trunk_layers,
    trunk_feature_size,
)
from repro.models.layer_specs import (
    LayerSpec,
    NetworkSpec,
    alexnet_spec,
    diagnosis_spec,
    googlenet_proxy_spec,
    network_by_name,
    vgg16_spec,
)
from repro.models.registry import MODEL_CONFIGS, ModelConfig, build_model

__all__ = [
    "CONV_LAYER_NAMES",
    "LayerSpec",
    "MODEL_CONFIGS",
    "ModelConfig",
    "NetworkSpec",
    "alexnet_spec",
    "build_classifier",
    "build_jigsaw_trunk",
    "build_model",
    "conv_trunk_layers",
    "diagnosis_spec",
    "googlenet_proxy_spec",
    "network_by_name",
    "trunk_feature_size",
    "vgg16_spec",
]
