"""Trainable IoT-scale networks for the learning experiments.

The paper trains full AlexNet/VGG on ImageNet-scale data with a Titan X;
offline and on CPU we reproduce the *learning dynamics* (transfer,
incremental updates, layer locking) with width-scaled 5-conv-layer networks
on 48x48 synthetic images.  Crucially the architecture keeps the paper's
structure: five named conv layers (``conv1``..``conv5``) so the CONV-i
locking sweep of Fig. 6 applies verbatim, and a 3-layer FCN head
(``fc6``/``fc7``/``fc8``).

Because convolution weights are independent of spatial input size, the same
``conv1``..``conv5`` weights serve both the full-image inference network and
the per-tile jigsaw trunk — exactly the weight sharing the paper exploits.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)

__all__ = [
    "CONV_LAYER_NAMES",
    "conv_trunk_layers",
    "build_classifier",
    "build_jigsaw_trunk",
    "trunk_feature_size",
]

#: the five conv layers every model in this repo shares, in order
CONV_LAYER_NAMES = ("conv1", "conv2", "conv3", "conv4", "conv5")

#: base channel widths for the five conv layers at width multiplier 1.0
_BASE_WIDTHS = (16, 32, 48, 48, 32)


def _widths(width: float) -> tuple[int, ...]:
    if width <= 0:
        raise ValueError(f"width multiplier must be positive, got {width}")
    return tuple(max(4, int(round(w * width))) for w in _BASE_WIDTHS)


def conv_trunk_layers(
    rng: np.random.Generator, *, width: float = 1.0, input_size: int = 48
) -> list:
    """The shared 5-conv trunk (conv1..conv5 with ReLU and pooling).

    ``input_size`` only affects how many pooling stages fit; the conv
    weights themselves are shape-compatible across input sizes, which is
    what makes trunk weights transferable between the 48x48 inference
    network and the 16x16 jigsaw-tile trunk.
    """
    w1, w2, w3, w4, w5 = _widths(width)
    layers = [
        Conv2D(3, w1, 5, pad=2, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(w1, w2, 3, pad=1, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Conv2D(w2, w3, 3, pad=1, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2D(w3, w4, 3, pad=1, rng=rng, name="conv4"),
        ReLU(name="relu4"),
        Conv2D(w4, w5, 3, pad=1, rng=rng, name="conv5"),
        ReLU(name="relu5"),
    ]
    if input_size >= 32:
        layers.append(MaxPool2D(2, name="pool5"))
    return layers


def trunk_feature_size(*, width: float = 1.0, input_size: int = 48) -> int:
    """Flattened feature size produced by the trunk for a given input size."""
    spatial = input_size // 4  # two fixed pooling stages
    if input_size >= 32:
        spatial //= 2  # pool5
    return _widths(width)[-1] * spatial * spatial


def build_classifier(
    num_classes: int,
    rng: np.random.Generator,
    *,
    width: float = 1.0,
    input_size: int = 48,
    hidden: int = 128,
    dropout: float = 0.0,
) -> Sequential:
    """Inference network: shared trunk + FCN head (fc6/fc7/fc8)."""
    if num_classes < 2:
        raise ValueError("need at least 2 classes")
    feat = trunk_feature_size(width=width, input_size=input_size)
    layers = conv_trunk_layers(rng, width=width, input_size=input_size)
    layers.append(Flatten(name="flatten"))
    layers.append(Linear(feat, hidden, rng=rng, name="fc6"))
    layers.append(ReLU(name="relu6"))
    if dropout > 0:
        layers.append(Dropout(dropout, rng=rng, name="drop6"))
    layers.append(Linear(hidden, hidden, rng=rng, name="fc7"))
    layers.append(ReLU(name="relu7"))
    layers.append(Linear(hidden, num_classes, rng=rng, name="fc8"))
    return Sequential(layers, input_shape=(3, input_size, input_size))


def build_jigsaw_trunk(
    rng: np.random.Generator, *, width: float = 1.0, tile_size: int = 16
) -> Sequential:
    """Per-tile trunk for the unsupervised context network.

    Output is the flattened conv5 feature vector of one tile; the context
    network concatenates 9 of these before its permutation-prediction head.
    """
    layers = conv_trunk_layers(rng, width=width, input_size=tile_size)
    layers.append(Flatten(name="flatten"))
    return Sequential(layers, input_shape=(3, tile_size, tile_size))
