"""In-situ AI: autonomous and incremental deep learning for IoT systems.

A full reproduction of Song et al., HPCA 2018, built from scratch in
Python: a numpy deep-learning framework, unsupervised jigsaw pre-training,
transfer/incremental learning, autonomous data diagnosis, analytical
GPU/FPGA hardware models with the two-level weight-shared (WSS)
architecture, and the end-to-end four-system evaluation.

Subpackages
-----------
``repro.nn``
    From-scratch deep-learning framework (Caffe's role in the paper).
``repro.models``
    IoT-scale trainable networks and full-size layer-shape specs.
``repro.data``
    Procedural image generator, in-situ drift model, incremental streams.
``repro.selfsup``
    Jigsaw permutations, tiling, the shared-trunk context network.
``repro.transfer``
    Weight transfer, CONV-i locking, fine-tuning, incremental updates.
``repro.diagnosis``
    Autonomous data diagnosis (jigsaw / confidence / oracle / random).
``repro.hw``
    TX1 / VX690T / Titan-X analytical models, NWS/WS/WSS architectures,
    the WSS-NWS pipeline, interference and energy models.
``repro.comm``
    Network links and data-movement accounting.
``repro.core``
    The In-situ AI framework: node, cloud, mode planners, and the
    four-system end-to-end simulation.
``repro.lint``
    Static determinism & performance contract checker (stdlib ast).
"""

from repro import (
    comm,
    core,
    data,
    diagnosis,
    hw,
    lint,
    models,
    nn,
    reports,
    selfsup,
    transfer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "comm",
    "core",
    "data",
    "diagnosis",
    "hw",
    "lint",
    "models",
    "nn",
    "reports",
    "selfsup",
    "transfer",
]
