"""Cloud <-> node network link model.

The paper's data-movement and energy claims (Table II, Fig. 25) rest on how
many bytes travel from the IoT node to the Cloud.  :class:`NetworkLink`
converts image counts into transfer time and energy using per-byte costs
typical of the radios an edge node would use.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NetworkLink",
    "WIFI",
    "LTE",
    "LAN",
    "FIBER",
    "PASSTHROUGH",
    "JPEG_IMAGE_BYTES",
]

#: typical camera-trap JPEG at modest resolution
JPEG_IMAGE_BYTES = 150_000


@dataclass(frozen=True)
class NetworkLink:
    """A node-to-cloud uplink.

    ``energy_per_byte_j`` is the *node-side* radio energy; transfer energy
    is what the battery pays for every uploaded image.
    """

    name: str
    bandwidth_bps: float
    latency_s: float
    energy_per_byte_j: float
    #: downlink rate when the radio is asymmetric; None means symmetric.
    #: Consumer radios (LTE especially) usually download much faster than
    #: they upload, so model pushes may ride a faster lane than uploads.
    down_bandwidth_bps: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.down_bandwidth_bps is not None and self.down_bandwidth_bps <= 0:
            raise ValueError("downlink bandwidth must be positive")
        if self.latency_s < 0 or self.energy_per_byte_j < 0:
            raise ValueError("latency and energy must be >= 0")

    @property
    def downlink_bps(self) -> float:
        """Cloud->node rate: the asymmetric rate if set, else symmetric."""
        if self.down_bandwidth_bps is not None:
            return self.down_bandwidth_bps
        return self.bandwidth_bps

    def transfer_time_s(self, num_bytes: int) -> float:
        """Seconds to push ``num_bytes`` upstream (one logical transfer)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if num_bytes == 0:
            return 0.0
        return self.latency_s + num_bytes * 8.0 / self.bandwidth_bps

    def transfer_energy_j(self, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return num_bytes * self.energy_per_byte_j

    def image_upload_time_s(
        self, images: int, image_bytes: int = JPEG_IMAGE_BYTES
    ) -> float:
        return self.transfer_time_s(images * image_bytes)

    def image_upload_energy_j(
        self, images: int, image_bytes: int = JPEG_IMAGE_BYTES
    ) -> float:
        return self.transfer_energy_j(images * image_bytes)

    def model_push_time_s(self, model_bytes: int) -> float:
        """Seconds to push an updated model *down* to the node.

        Fig. 25-style comparisons that only count uploads silently ignore
        deployment traffic; every model push-down travels the same radio.
        Downlink rate is ``downlink_bps`` — the uplink bandwidth unless an
        asymmetric ``down_bandwidth_bps`` is configured.
        """
        if model_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if model_bytes == 0:
            return 0.0
        return self.latency_s + model_bytes * 8.0 / self.downlink_bps

    def model_push_energy_j(self, model_bytes: int) -> float:
        """Node-side radio energy to receive a pushed-down model."""
        return self.transfer_energy_j(model_bytes)


#: 802.11n-class uplink: 20 Mbit/s sustained, ~100 nJ/byte at the radio
WIFI = NetworkLink(
    name="WiFi", bandwidth_bps=20e6, latency_s=0.05, energy_per_byte_j=100e-9
)

#: LTE Cat-4 uplink: 10 Mbit/s sustained, radios cost more per byte
LTE = NetworkLink(
    name="LTE", bandwidth_bps=10e6, latency_s=0.12, energy_per_byte_j=350e-9
)

#: edge->gateway hop: wired/short-range Ethernet-class, cheap per byte
LAN = NetworkLink(
    name="LAN", bandwidth_bps=100e6, latency_s=0.002, energy_per_byte_j=5e-9
)

#: gateway->cloud backhaul: fibre-class WAN uplink
FIBER = NetworkLink(
    name="Fiber", bandwidth_bps=200e6, latency_s=0.01, energy_per_byte_j=20e-9
)

#: degenerate link for passthrough topologies: zero latency, zero energy,
#: effectively infinite bandwidth — a gateway hop over this link adds
#: nothing, which is what makes single-child topologies collapse to flat.
PASSTHROUGH = NetworkLink(
    name="Passthrough",
    bandwidth_bps=1e18,
    latency_s=0.0,
    energy_per_byte_j=0.0,
)
