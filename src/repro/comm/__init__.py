"""Cloud <-> node communication substrate."""

from repro.comm.link import (
    FIBER,
    JPEG_IMAGE_BYTES,
    LAN,
    LTE,
    PASSTHROUGH,
    WIFI,
    NetworkLink,
)
from repro.comm.movement import DataMovementLedger, LedgerTotals, StageMovement

__all__ = [
    "DataMovementLedger",
    "FIBER",
    "JPEG_IMAGE_BYTES",
    "LAN",
    "LTE",
    "LedgerTotals",
    "NetworkLink",
    "PASSTHROUGH",
    "StageMovement",
    "WIFI",
]
