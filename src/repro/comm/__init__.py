"""Cloud <-> node communication substrate."""

from repro.comm.link import JPEG_IMAGE_BYTES, LTE, WIFI, NetworkLink
from repro.comm.movement import DataMovementLedger, LedgerTotals, StageMovement

__all__ = [
    "DataMovementLedger",
    "JPEG_IMAGE_BYTES",
    "LTE",
    "LedgerTotals",
    "NetworkLink",
    "StageMovement",
    "WIFI",
]
