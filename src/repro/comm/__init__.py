"""Cloud <-> node communication substrate."""

from repro.comm.link import JPEG_IMAGE_BYTES, LTE, WIFI, NetworkLink
from repro.comm.movement import DataMovementLedger, StageMovement

__all__ = [
    "DataMovementLedger",
    "JPEG_IMAGE_BYTES",
    "LTE",
    "NetworkLink",
    "StageMovement",
    "WIFI",
]
