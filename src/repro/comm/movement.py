"""Data-movement accounting across incremental update stages."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageMovement", "LedgerTotals", "DataMovementLedger"]


@dataclass(frozen=True)
class StageMovement:
    """Bytes and images moved during one acquisition stage.

    ``downloaded_bytes`` counts cloud->node traffic (model push-downs);
    uploads remain image-denominated because that is what the node ships.
    """

    stage_index: int
    acquired_images: int
    uploaded_images: int
    image_bytes: int
    downloaded_bytes: int = 0

    @property
    def uploaded_bytes(self) -> int:
        return self.uploaded_images * self.image_bytes

    @property
    def total_bytes(self) -> int:
        return self.uploaded_bytes + self.downloaded_bytes

    @property
    def upload_fraction(self) -> float:
        if self.acquired_images == 0:
            return 0.0
        return self.uploaded_images / self.acquired_images


@dataclass(frozen=True)
class LedgerTotals:
    """Immutable snapshot of a ledger's running totals.

    Taken mid-run (:meth:`DataMovementLedger.snapshot`) this is a
    consistent point-in-time view: the metrics layer and the reports
    read this one source instead of re-summing the stage list ad hoc.
    """

    stages_recorded: int
    acquired_images: int
    uploaded_images: int
    uploaded_bytes: int
    downloaded_bytes: int
    #: per-tier attribution; all zero for flat (single-hop) runs, which
    #: never call :meth:`DataMovementLedger.record_tier`.
    edge_to_gateway_bytes: int = 0
    gateway_to_cloud_bytes: int = 0
    gateway_to_edge_bytes: int = 0
    cloud_to_gateway_bytes: int = 0
    edge_transfer_events: int = 0
    wan_transfer_events: int = 0
    transfer_overhead_bytes: int = 0

    @property
    def total_bytes_moved(self) -> int:
        return self.uploaded_bytes + self.downloaded_bytes

    @property
    def tiered_bytes_moved(self) -> int:
        """All per-tier traffic: both hops, both directions."""
        return (
            self.edge_to_gateway_bytes
            + self.gateway_to_cloud_bytes
            + self.gateway_to_edge_bytes
            + self.cloud_to_gateway_bytes
        )

    @property
    def upload_fraction(self) -> float:
        if self.acquired_images == 0:
            return 0.0
        return self.uploaded_images / self.acquired_images


@dataclass
class DataMovementLedger:
    """Accumulates per-stage upload records for one IoT system run.

    The normalized-per-stage view is what the paper's Table II reports:
    each stage's uploads divided by that stage's acquisitions (systems that
    upload everything are the ``1.0`` rows).

    Totals are maintained incrementally as stages are recorded, so they
    are O(1) to read at any point mid-run; :meth:`snapshot` freezes them
    into an immutable :class:`LedgerTotals`.
    """

    image_bytes: int
    stages: list[StageMovement] = field(default_factory=list)
    _acquired_images: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _uploaded_images: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _downloaded_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _edge_to_gateway_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _gateway_to_cloud_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _gateway_to_edge_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _cloud_to_gateway_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _edge_transfer_events: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _wan_transfer_events: int = field(
        default=0, init=False, repr=False, compare=False
    )
    _transfer_overhead_bytes: int = field(
        default=0, init=False, repr=False, compare=False
    )

    def record(
        self,
        stage_index: int,
        acquired: int,
        uploaded: int,
        *,
        downloaded_bytes: int = 0,
    ) -> StageMovement:
        if uploaded > acquired:
            raise ValueError(
                f"stage {stage_index}: uploaded {uploaded} exceeds acquired {acquired}"
            )
        if acquired < 0 or uploaded < 0 or downloaded_bytes < 0:
            raise ValueError("counts must be >= 0")
        movement = StageMovement(
            stage_index=stage_index,
            acquired_images=acquired,
            uploaded_images=uploaded,
            image_bytes=self.image_bytes,
            downloaded_bytes=downloaded_bytes,
        )
        self.stages.append(movement)
        self._acquired_images += acquired
        self._uploaded_images += uploaded
        self._downloaded_bytes += downloaded_bytes
        return movement

    def record_download(self, stage_index: int, num_bytes: int) -> StageMovement:
        """Account cloud->node traffic (model push-down) for a stage.

        Merges into the stage's existing upload record when one exists, so
        Table II's per-stage rows keep one entry per stage.
        """
        if num_bytes < 0:
            raise ValueError("counts must be >= 0")
        self._downloaded_bytes += num_bytes
        for i in range(len(self.stages) - 1, -1, -1):
            entry = self.stages[i]
            if entry.stage_index == stage_index:
                merged = StageMovement(
                    stage_index=entry.stage_index,
                    acquired_images=entry.acquired_images,
                    uploaded_images=entry.uploaded_images,
                    image_bytes=entry.image_bytes,
                    downloaded_bytes=entry.downloaded_bytes + num_bytes,
                )
                self.stages[i] = merged
                return merged
        movement = StageMovement(
            stage_index=stage_index,
            acquired_images=0,
            uploaded_images=0,
            image_bytes=self.image_bytes,
            downloaded_bytes=num_bytes,
        )
        self.stages.append(movement)
        return movement

    def record_tier(
        self,
        stage_index: int,
        *,
        edge_up_bytes: int = 0,
        wan_up_bytes: int = 0,
        edge_down_bytes: int = 0,
        wan_down_bytes: int = 0,
        edge_up_transfers: int = 0,
        wan_up_transfers: int = 0,
        overhead_bytes: int = 0,
    ) -> None:
        """Attribute traffic to a topology tier for one stage.

        This is an additive overlay: it does not touch the stage list or
        the image-denominated totals, so flat runs (which never call it)
        keep byte-identical :meth:`snapshot` output and the tier fields
        report zero.  ``edge`` means the edge->gateway hop, ``wan`` the
        gateway->cloud hop; ``down`` variants count push-down traffic in
        the reverse direction on the same hop.
        """
        if min(
            edge_up_bytes,
            wan_up_bytes,
            edge_down_bytes,
            wan_down_bytes,
            edge_up_transfers,
            wan_up_transfers,
            overhead_bytes,
        ) < 0:
            raise ValueError("counts must be >= 0")
        if stage_index < 0:
            raise ValueError("stage_index must be >= 0")
        self._edge_to_gateway_bytes += edge_up_bytes
        self._gateway_to_cloud_bytes += wan_up_bytes
        self._gateway_to_edge_bytes += edge_down_bytes
        self._cloud_to_gateway_bytes += wan_down_bytes
        self._edge_transfer_events += edge_up_transfers
        self._wan_transfer_events += wan_up_transfers
        self._transfer_overhead_bytes += overhead_bytes

    def snapshot(self) -> LedgerTotals:
        """Freeze the running totals into an immutable point-in-time view."""
        return LedgerTotals(
            stages_recorded=len(self.stages),
            acquired_images=self._acquired_images,
            uploaded_images=self._uploaded_images,
            uploaded_bytes=self._uploaded_images * self.image_bytes,
            downloaded_bytes=self._downloaded_bytes,
            edge_to_gateway_bytes=self._edge_to_gateway_bytes,
            gateway_to_cloud_bytes=self._gateway_to_cloud_bytes,
            gateway_to_edge_bytes=self._gateway_to_edge_bytes,
            cloud_to_gateway_bytes=self._cloud_to_gateway_bytes,
            edge_transfer_events=self._edge_transfer_events,
            wan_transfer_events=self._wan_transfer_events,
            transfer_overhead_bytes=self._transfer_overhead_bytes,
        )

    @property
    def total_uploaded_bytes(self) -> int:
        return self._uploaded_images * self.image_bytes

    @property
    def total_downloaded_bytes(self) -> int:
        return self._downloaded_bytes

    @property
    def total_bytes_moved(self) -> int:
        """Uplink + downlink traffic across every recorded stage."""
        return self.total_uploaded_bytes + self.total_downloaded_bytes

    @property
    def total_uploaded_images(self) -> int:
        return self._uploaded_images

    @property
    def total_acquired_images(self) -> int:
        return self._acquired_images

    def normalized_per_stage(self) -> list[float]:
        """Table II rows: per-stage upload fraction."""
        return [s.upload_fraction for s in self.stages]

    def overall_reduction_vs_full(self) -> float:
        """Fraction of data movement avoided relative to uploading all data."""
        acquired = self._acquired_images
        if acquired == 0:
            return 0.0
        return 1.0 - self._uploaded_images / acquired
