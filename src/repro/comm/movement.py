"""Data-movement accounting across incremental update stages."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageMovement", "DataMovementLedger"]


@dataclass(frozen=True)
class StageMovement:
    """Bytes and images moved during one acquisition stage.

    ``downloaded_bytes`` counts cloud->node traffic (model push-downs);
    uploads remain image-denominated because that is what the node ships.
    """

    stage_index: int
    acquired_images: int
    uploaded_images: int
    image_bytes: int
    downloaded_bytes: int = 0

    @property
    def uploaded_bytes(self) -> int:
        return self.uploaded_images * self.image_bytes

    @property
    def total_bytes(self) -> int:
        return self.uploaded_bytes + self.downloaded_bytes

    @property
    def upload_fraction(self) -> float:
        if self.acquired_images == 0:
            return 0.0
        return self.uploaded_images / self.acquired_images


@dataclass
class DataMovementLedger:
    """Accumulates per-stage upload records for one IoT system run.

    The normalized-per-stage view is what the paper's Table II reports:
    each stage's uploads divided by that stage's acquisitions (systems that
    upload everything are the ``1.0`` rows).
    """

    image_bytes: int
    stages: list[StageMovement] = field(default_factory=list)

    def record(
        self,
        stage_index: int,
        acquired: int,
        uploaded: int,
        *,
        downloaded_bytes: int = 0,
    ) -> StageMovement:
        if uploaded > acquired:
            raise ValueError(
                f"stage {stage_index}: uploaded {uploaded} exceeds acquired {acquired}"
            )
        if acquired < 0 or uploaded < 0 or downloaded_bytes < 0:
            raise ValueError("counts must be >= 0")
        movement = StageMovement(
            stage_index=stage_index,
            acquired_images=acquired,
            uploaded_images=uploaded,
            image_bytes=self.image_bytes,
            downloaded_bytes=downloaded_bytes,
        )
        self.stages.append(movement)
        return movement

    def record_download(self, stage_index: int, num_bytes: int) -> StageMovement:
        """Account cloud->node traffic (model push-down) for a stage.

        Merges into the stage's existing upload record when one exists, so
        Table II's per-stage rows keep one entry per stage.
        """
        if num_bytes < 0:
            raise ValueError("counts must be >= 0")
        for i in range(len(self.stages) - 1, -1, -1):
            entry = self.stages[i]
            if entry.stage_index == stage_index:
                merged = StageMovement(
                    stage_index=entry.stage_index,
                    acquired_images=entry.acquired_images,
                    uploaded_images=entry.uploaded_images,
                    image_bytes=entry.image_bytes,
                    downloaded_bytes=entry.downloaded_bytes + num_bytes,
                )
                self.stages[i] = merged
                return merged
        movement = StageMovement(
            stage_index=stage_index,
            acquired_images=0,
            uploaded_images=0,
            image_bytes=self.image_bytes,
            downloaded_bytes=num_bytes,
        )
        self.stages.append(movement)
        return movement

    @property
    def total_uploaded_bytes(self) -> int:
        return sum(s.uploaded_bytes for s in self.stages)

    @property
    def total_downloaded_bytes(self) -> int:
        return sum(s.downloaded_bytes for s in self.stages)

    @property
    def total_bytes_moved(self) -> int:
        """Uplink + downlink traffic across every recorded stage."""
        return self.total_uploaded_bytes + self.total_downloaded_bytes

    @property
    def total_uploaded_images(self) -> int:
        return sum(s.uploaded_images for s in self.stages)

    @property
    def total_acquired_images(self) -> int:
        return sum(s.acquired_images for s in self.stages)

    def normalized_per_stage(self) -> list[float]:
        """Table II rows: per-stage upload fraction."""
        return [s.upload_fraction for s in self.stages]

    def overall_reduction_vs_full(self) -> float:
        """Fraction of data movement avoided relative to uploading all data."""
        acquired = self.total_acquired_images
        if acquired == 0:
            return 0.0
        return 1.0 - self.total_uploaded_images / acquired
