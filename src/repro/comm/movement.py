"""Data-movement accounting across incremental update stages."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageMovement", "DataMovementLedger"]


@dataclass(frozen=True)
class StageMovement:
    """Bytes and images uploaded during one acquisition stage."""

    stage_index: int
    acquired_images: int
    uploaded_images: int
    image_bytes: int

    @property
    def uploaded_bytes(self) -> int:
        return self.uploaded_images * self.image_bytes

    @property
    def upload_fraction(self) -> float:
        if self.acquired_images == 0:
            return 0.0
        return self.uploaded_images / self.acquired_images


@dataclass
class DataMovementLedger:
    """Accumulates per-stage upload records for one IoT system run.

    The normalized-per-stage view is what the paper's Table II reports:
    each stage's uploads divided by that stage's acquisitions (systems that
    upload everything are the ``1.0`` rows).
    """

    image_bytes: int
    stages: list[StageMovement] = field(default_factory=list)

    def record(self, stage_index: int, acquired: int, uploaded: int) -> StageMovement:
        if uploaded > acquired:
            raise ValueError(
                f"stage {stage_index}: uploaded {uploaded} exceeds acquired {acquired}"
            )
        if acquired < 0 or uploaded < 0:
            raise ValueError("counts must be >= 0")
        movement = StageMovement(
            stage_index=stage_index,
            acquired_images=acquired,
            uploaded_images=uploaded,
            image_bytes=self.image_bytes,
        )
        self.stages.append(movement)
        return movement

    @property
    def total_uploaded_bytes(self) -> int:
        return sum(s.uploaded_bytes for s in self.stages)

    @property
    def total_uploaded_images(self) -> int:
        return sum(s.uploaded_images for s in self.stages)

    @property
    def total_acquired_images(self) -> int:
        return sum(s.acquired_images for s in self.stages)

    def normalized_per_stage(self) -> list[float]:
        """Table II rows: per-stage upload fraction."""
        return [s.upload_fraction for s in self.stages]

    def overall_reduction_vs_full(self) -> float:
        """Fraction of data movement avoided relative to uploading all data."""
        acquired = self.total_acquired_images
        if acquired == 0:
            return 0.0
        return 1.0 - self.total_uploaded_images / acquired
