"""Lint engine: file walking, pragma parsing, rule dispatch, suppression.

Pragmas (all are comments, matched only at the start of a comment):

``# repro-lint: ignore[RPR004] <reason>``
    Suppress the listed codes on this physical line.  The reason is
    mandatory (RPR009) and a suppression that matches no finding is
    itself flagged (RPR010).

``# repro-lint: module=repro.fleet.fake``
    Override the module identity used for rule scoping — rule fixtures
    outside ``src/`` use this to emulate production context.

``# repro-lint: scope=benchmarks``
    Override the file-kind (src/tests/benchmarks/examples) the same way.

Directories containing a ``.repro-lint-fixtures`` marker file are skipped
when walking (they hold intentionally-bad rule fixtures); explicitly
listed *files* are always linted.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint.rules import RULES, Rule, all_codes

__all__ = [
    "FileContext",
    "Finding",
    "FIXTURE_MARKER",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

FIXTURE_MARKER = ".repro-lint-fixtures"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_IGNORE_RE = re.compile(r"ignore\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$")
_MODULE_RE = re.compile(r"module\s*=\s*(?P<module>[A-Za-z_][\w.]*)\s*$")
_SCOPE_RE = re.compile(r"scope\s*=\s*(?P<scope>[\w-]+)\s*$")
_CODE_RE = re.compile(r"RPR\d{3}$")


@dataclass
class Finding:
    """One reported contract violation.

    The JSON reporter serializes exactly these fields; the schema is
    stable (documented in DESIGN.md) so CI annotations and editor
    integrations can consume it.
    """

    file: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.col, self.code)


@dataclass
class _Suppression:
    line: int
    col: int
    codes: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)


@dataclass
class _Pragmas:
    suppressions: dict[int, list[_Suppression]] = field(default_factory=dict)
    module: str | None = None
    kind: str | None = None
    problems: list[tuple[int, int, str]] = field(default_factory=list)


class _ImportMap:
    """Local name -> fully qualified dotted path, from import statements."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports never hide stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    display: str
    source: str
    tree: ast.AST
    module: str | None
    kind: str
    imports: _ImportMap

    def qualify(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted path.

        Bare names resolve through the file's imports and fall back to
        themselves (builtins).  Attribute chains rooted at a name that
        was never imported resolve to ``None`` — an ``rng.random()`` or
        ``self.time.time()`` chain must not impersonate a module.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        mapped = self.imports.aliases.get(node.id)
        if mapped is None:
            if parts:
                return None
            return node.id
        parts.append(mapped)
        return ".".join(reversed(parts))

    def in_module(self, *prefixes: str) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    @property
    def is_reference(self) -> bool:
        return self.module is not None and (
            self.module == "reference" or self.module.endswith(".reference")
        )


def _module_from_path(parts: Sequence[str]) -> str | None:
    if "src" not in parts:
        return None
    rel = list(parts[len(parts) - parts[::-1].index("src"):])
    if not rel or not rel[-1].endswith(".py"):
        return None
    rel[-1] = rel[-1][:-3]
    if rel[-1] == "__init__":
        rel.pop()
    return ".".join(rel) if rel else None


def _kind_from_path(parts: Sequence[str]) -> str:
    for kind in ("src", "tests", "benchmarks", "examples"):
        if kind in parts:
            return kind
    return "other"


def _scan_pragmas(source: str) -> _Pragmas:
    pragmas = _Pragmas()
    known = set(all_codes())
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.match(tok.string)
        if match is None:
            continue
        line, col = tok.start
        body = match.group("body").strip()
        ignore = _IGNORE_RE.match(body)
        if ignore is not None:
            codes = tuple(
                c.strip() for c in ignore.group("codes").split(",") if c.strip()
            )
            reason = ignore.group("reason").strip()
            bad = [c for c in codes if not _CODE_RE.match(c) or c not in known]
            if not codes:
                pragmas.problems.append(
                    (line, col, "suppression lists no rule codes")
                )
            for code in bad:
                pragmas.problems.append(
                    (line, col, f"suppression names unknown rule code `{code}`")
                )
            if not reason:
                pragmas.problems.append(
                    (
                        line,
                        col,
                        "suppression must carry a human-readable reason "
                        "after the bracket",
                    )
                )
            good = tuple(c for c in codes if c not in bad)
            if good:
                pragmas.suppressions.setdefault(line, []).append(
                    _Suppression(line=line, col=col, codes=good, reason=reason)
                )
            continue
        module = _MODULE_RE.match(body)
        if module is not None:
            pragmas.module = module.group("module")
            continue
        scope = _SCOPE_RE.match(body)
        if scope is not None:
            pragmas.kind = scope.group("scope")
            continue
        pragmas.problems.append(
            (
                line,
                col,
                f"malformed repro-lint pragma `{body or tok.string}`: "
                "expected ignore[CODES] reason, module=..., or scope=...",
            )
        )
    return pragmas


def lint_source(
    source: str,
    path: Path | str,
    *,
    rules: Sequence[Rule] | None = None,
    module: str | None = None,
    kind: str | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob.

    ``module``/``kind`` override scoping context (pragmas in the source
    override these in turn, mirroring CLI behavior on fixture files).
    """
    path = Path(path)
    display = str(path)
    run = RULES if rules is None else tuple(rules)
    run_codes = {r.code for r in run}
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            file=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code="RPR000",
            message=f"syntax error: {exc.msg}",
        )
        return [finding] if "RPR000" in run_codes else []

    pragmas = _scan_pragmas(source)
    parts = path.parts
    ctx = FileContext(
        path=path,
        display=display,
        source=source,
        tree=tree,
        module=pragmas.module or module or _module_from_path(parts),
        kind=pragmas.kind or kind or _kind_from_path(parts),
        imports=_ImportMap(tree),
    )

    findings: list[Finding] = []
    for rule in run:
        if rule.meta or not rule.applies(ctx):
            continue
        findings.extend(rule.check(ctx))

    # Apply line suppressions.
    for finding in findings:
        for sup in pragmas.suppressions.get(finding.line, ()):
            if finding.code in sup.codes:
                finding.suppressed = True
                finding.suppress_reason = sup.reason or None
                sup.used.add(finding.code)

    # Meta rules: suppression hygiene and unused suppressions.
    if "RPR009" in run_codes:
        for line, col, message in pragmas.problems:
            findings.append(
                Finding(
                    file=display,
                    line=line,
                    col=col,
                    code="RPR009",
                    message=message,
                )
            )
    if "RPR010" in run_codes:
        for sups in pragmas.suppressions.values():
            for sup in sups:
                for code in sup.codes:
                    # Only judge codes whose rules actually ran: a
                    # --select'ed subset must not condemn suppressions
                    # for the rules it skipped.
                    if code in run_codes and code not in sup.used:
                        findings.append(
                            Finding(
                                file=display,
                                line=sup.line,
                                col=sup.col,
                                code="RPR010",
                                message=(
                                    f"suppression for {code} matches no "
                                    "finding on this line: remove it or "
                                    "re-anchor it"
                                ),
                            )
                        )

    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: Path | str,
    *,
    rules: Sequence[Rule] | None = None,
    module: str | None = None,
    kind: str | None = None,
) -> list[Finding]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, rules=rules, module=module, kind=kind)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories to the ordered list of files to lint.

    Directories are walked recursively in sorted order, pruning hidden
    directories, ``__pycache__``, and fixture directories (those holding
    a ``.repro-lint-fixtures`` marker).  Explicit file paths are yielded
    unconditionally.
    """
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            yield p
        elif p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                if FIXTURE_MARKER in filenames:
                    dirnames[:] = []
                    continue
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield Path(dirpath) / name
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings
