"""Lint engine: file walking, pragma parsing, rule dispatch, suppression.

Pragmas (all are comments, matched only at the start of a comment):

``# repro-lint: ignore[RPR004] <reason>``
    Suppress the listed codes on this statement.  A suppression covers
    every physical line of the *logical* statement it is attached to
    (so a pragma on any line of a parenthesized continuation, chained
    call, or multi-line ``def`` signature matches findings anywhere in
    that statement); a pragma on a standalone comment line covers only
    that line.  The reason is mandatory (RPR009) and a suppression that
    matches no finding is itself flagged (RPR010).

``# repro-lint: module=repro.fleet.fake``
    Override the module identity used for rule scoping — rule fixtures
    outside ``src/`` use this to emulate production context.

``# repro-lint: scope=benchmarks``
    Override the file-kind (src/tests/benchmarks/examples) the same way.

Directories containing a ``.repro-lint-fixtures`` marker file are skipped
when walking (they hold intentionally-bad rule fixtures); explicitly
listed *files* are always linted.

The engine is split into an *analyze* half (parse + per-file rules +
suppression application, cacheable per file content) and a *finalize*
half (unused-suppression accounting, which must wait until the
whole-program rules in :mod:`repro.lint.graph` have had their chance to
consume a suppression).  ``lint_file`` / ``lint_paths`` run both halves
plus the whole-program rules; ``lint_source`` is the single-file view
(per-file rules only — a lone source blob has no project graph).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.lint.rules import RULES, Rule, all_codes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.graph import FileSummary

__all__ = [
    "FileAnalysis",
    "FileContext",
    "Finding",
    "FIXTURE_MARKER",
    "analysis_from_cache",
    "analysis_to_cache",
    "analyze_file",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "unused_suppression_findings",
]

FIXTURE_MARKER = ".repro-lint-fixtures"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_IGNORE_RE = re.compile(r"ignore\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$")
_MODULE_RE = re.compile(r"module\s*=\s*(?P<module>[A-Za-z_][\w.]*)\s*$")
_SCOPE_RE = re.compile(r"scope\s*=\s*(?P<scope>[\w-]+)\s*$")
_CODE_RE = re.compile(r"RPR\d{3}$")


@dataclass
class Finding:
    """One reported contract violation.

    The JSON reporter serializes exactly these fields; the schema is
    stable (documented in DESIGN.md) so CI annotations and editor
    integrations can consume it.
    """

    file: str
    line: int
    col: int
    code: str
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.col, self.code)


@dataclass
class _Suppression:
    line: int
    col: int
    codes: tuple[str, ...]
    reason: str
    #: physical lines this suppression covers (its logical statement)
    covered: tuple[int, ...] = ()
    used: set[str] = field(default_factory=set)


@dataclass
class _Pragmas:
    suppressions: list[_Suppression] = field(default_factory=list)
    module: str | None = None
    kind: str | None = None
    problems: list[tuple[int, int, str]] = field(default_factory=list)


class _ImportMap:
    """Local name -> fully qualified dotted path, from import statements."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports never hide stdlib/numpy
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    display: str
    source: str
    tree: ast.AST
    module: str | None
    kind: str
    imports: _ImportMap

    def qualify(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted path.

        Bare names resolve through the file's imports and fall back to
        themselves (builtins).  Attribute chains rooted at a name that
        was never imported resolve to ``None`` — an ``rng.random()`` or
        ``self.time.time()`` chain must not impersonate a module.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        mapped = self.imports.aliases.get(node.id)
        if mapped is None:
            if parts:
                return None
            return node.id
        parts.append(mapped)
        return ".".join(reversed(parts))

    def in_module(self, *prefixes: str) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    @property
    def is_reference(self) -> bool:
        return self.module is not None and (
            self.module == "reference" or self.module.endswith(".reference")
        )


def _module_from_path(parts: Sequence[str]) -> str | None:
    if "src" not in parts:
        return None
    rel = list(parts[len(parts) - parts[::-1].index("src"):])
    if not rel or not rel[-1].endswith(".py"):
        return None
    rel[-1] = rel[-1][:-3]
    if rel[-1] == "__init__":
        rel.pop()
    return ".".join(rel) if rel else None


def _kind_from_path(parts: Sequence[str]) -> str:
    for kind in ("src", "tests", "benchmarks", "examples"):
        if kind in parts:
            return kind
    return "other"


def _logical_spans(source: str) -> dict[int, tuple[int, int]]:
    """Map each physical line of a logical statement to its line span.

    A logical statement runs from its first non-comment token to the
    ``NEWLINE`` token that terminates it, so a parenthesized
    continuation, a chained call split with ``\\``-free line breaks, or
    a multi-line ``def`` signature is one span.  Decorators terminate
    with their own ``NEWLINE`` and are therefore separate spans — a
    suppression on a decorator line does not leak onto the ``def``.
    Blank and comment-only lines belong to no span.
    """
    spans: dict[int, tuple[int, int]] = {}
    start: int | None = None
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.NEWLINE:
                if start is not None:
                    for line in range(start, tok.end[0] + 1):
                        spans[line] = (start, tok.end[0])
                    start = None
            elif tok.type in (
                tokenize.NL,
                tokenize.COMMENT,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                continue
            elif start is None:
                start = tok.start[0]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return spans


def _scan_pragmas(source: str) -> _Pragmas:
    pragmas = _Pragmas()
    known = set(all_codes())
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    spans = _logical_spans(source)
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.match(tok.string)
        if match is None:
            continue
        line, col = tok.start
        body = match.group("body").strip()
        ignore = _IGNORE_RE.match(body)
        if ignore is not None:
            codes = tuple(
                c.strip() for c in ignore.group("codes").split(",") if c.strip()
            )
            reason = ignore.group("reason").strip()
            bad = [c for c in codes if not _CODE_RE.match(c) or c not in known]
            if not codes:
                pragmas.problems.append(
                    (line, col, "suppression lists no rule codes")
                )
            for code in bad:
                pragmas.problems.append(
                    (line, col, f"suppression names unknown rule code `{code}`")
                )
            if not reason:
                pragmas.problems.append(
                    (
                        line,
                        col,
                        "suppression must carry a human-readable reason "
                        "after the bracket",
                    )
                )
            good = tuple(c for c in codes if c not in bad)
            if good:
                span = spans.get(line, (line, line))
                pragmas.suppressions.append(
                    _Suppression(
                        line=line,
                        col=col,
                        codes=good,
                        reason=reason,
                        covered=tuple(range(span[0], span[1] + 1)),
                    )
                )
            continue
        module = _MODULE_RE.match(body)
        if module is not None:
            pragmas.module = module.group("module")
            continue
        scope = _SCOPE_RE.match(body)
        if scope is not None:
            pragmas.kind = scope.group("scope")
            continue
        pragmas.problems.append(
            (
                line,
                col,
                f"malformed repro-lint pragma `{body or tok.string}`: "
                "expected ignore[CODES] reason, module=..., or scope=...",
            )
        )
    pragmas.suppressions.sort(key=lambda s: (s.line, s.col))
    return pragmas


@dataclass
class FileAnalysis:
    """Per-file lint result, independent of the rest of the project.

    Holds everything the whole-program layer needs: the per-file
    findings (suppressions already applied), the suppressions themselves
    (so graph-rule findings can still consume them), and the
    :class:`repro.lint.graph.FileSummary` feeding the project graph.
    Instances round-trip through the incremental cache via
    :func:`analysis_to_cache` / :func:`analysis_from_cache`.
    """

    display: str
    module: str | None
    kind: str
    findings: list[Finding] = field(default_factory=list)
    suppressions: list[_Suppression] = field(default_factory=list)
    summary: "FileSummary | None" = None

    def apply_suppressions(self, finding: Finding) -> None:
        for sup in self.suppressions:
            if finding.line in sup.covered and finding.code in sup.codes:
                finding.suppressed = True
                finding.suppress_reason = sup.reason or None
                sup.used.add(finding.code)
                return


def analyze_file(
    path: Path | str,
    source: str,
    *,
    rules: Sequence[Rule],
    run_codes: set[str],
    module: str | None = None,
    kind: str | None = None,
) -> FileAnalysis:
    """Run the per-file half of the engine on one source blob.

    ``rules`` must already be filtered to non-meta, non-whole-program
    rules; ``run_codes`` is the full selected code set (it gates the
    engine-enforced RPR000/RPR009 findings).
    """
    path = Path(path)
    display = str(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        analysis = FileAnalysis(display=display, module=module, kind=kind or "other")
        if "RPR000" in run_codes:
            analysis.findings.append(
                Finding(
                    file=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="RPR000",
                    message=f"syntax error: {exc.msg}",
                )
            )
        return analysis

    pragmas = _scan_pragmas(source)
    parts = path.parts
    ctx = FileContext(
        path=path,
        display=display,
        source=source,
        tree=tree,
        module=pragmas.module or module or _module_from_path(parts),
        kind=pragmas.kind or kind or _kind_from_path(parts),
        imports=_ImportMap(tree),
    )
    analysis = FileAnalysis(
        display=display,
        module=ctx.module,
        kind=ctx.kind,
        suppressions=pragmas.suppressions,
    )

    for rule in rules:
        if rule.meta or rule.whole_program or not rule.applies(ctx):
            continue
        analysis.findings.extend(rule.check(ctx))
    for finding in analysis.findings:
        analysis.apply_suppressions(finding)

    if "RPR009" in run_codes:
        for line, col, message in pragmas.problems:
            analysis.findings.append(
                Finding(
                    file=display, line=line, col=col, code="RPR009",
                    message=message,
                )
            )
    analysis.findings.sort(key=Finding.sort_key)

    from repro.lint.graph import summarize

    analysis.summary = summarize(ctx)
    return analysis


def unused_suppression_findings(
    analysis: FileAnalysis, run_codes: set[str]
) -> list[Finding]:
    """RPR010: suppressions no rule (per-file or whole-program) consumed.

    Runs *after* the whole-program rules so a pragma suppressing an
    RPR013/14/15 finding is not condemned; only codes whose rules
    actually ran are judged (a ``--select``'ed subset must not condemn
    suppressions for the rules it skipped).
    """
    findings: list[Finding] = []
    if "RPR010" not in run_codes:
        return findings
    for sup in analysis.suppressions:
        for code in sup.codes:
            if code in run_codes and code not in sup.used:
                findings.append(
                    Finding(
                        file=analysis.display,
                        line=sup.line,
                        col=sup.col,
                        code="RPR010",
                        message=(
                            f"suppression for {code} matches no "
                            "finding on this line: remove it or "
                            "re-anchor it"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# Cache (de)serialization — the storage format lives with the dataclasses
# it mirrors; the cache file itself is managed by repro.lint.graph.


def analysis_to_cache(analysis: FileAnalysis, digest: str) -> dict:
    return {
        "sha256": digest,
        "module": analysis.module,
        "kind": analysis.kind,
        "findings": [
            [f.line, f.col, f.code, f.message, f.suppressed, f.suppress_reason]
            for f in analysis.findings
        ],
        "suppressions": [
            [s.line, s.col, list(s.codes), s.reason, list(s.covered),
             sorted(s.used)]
            for s in analysis.suppressions
        ],
        "summary": None if analysis.summary is None else analysis.summary.to_dict(),
    }


def analysis_from_cache(display: str, entry: dict, summary_from_dict) -> FileAnalysis:
    analysis = FileAnalysis(
        display=display, module=entry["module"], kind=entry["kind"]
    )
    analysis.findings = [
        Finding(
            file=display, line=line, col=col, code=code, message=message,
            suppressed=suppressed, suppress_reason=reason,
        )
        for line, col, code, message, suppressed, reason in entry["findings"]
    ]
    analysis.suppressions = [
        _Suppression(
            line=line, col=col, codes=tuple(codes), reason=reason,
            covered=tuple(covered), used=set(used),
        )
        for line, col, codes, reason, covered, used in entry["suppressions"]
    ]
    if entry["summary"] is not None:
        analysis.summary = summary_from_dict(entry["summary"])
    return analysis


# ---------------------------------------------------------------------------
# Public entry points


def lint_source(
    source: str,
    path: Path | str,
    *,
    rules: Sequence[Rule] | None = None,
    module: str | None = None,
    kind: str | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob with the per-file rules.

    ``module``/``kind`` override scoping context (pragmas in the source
    override these in turn, mirroring CLI behavior on fixture files).
    Whole-program rules need a project graph and therefore do not run —
    and their codes are excluded from RPR010 judgment here.
    """
    run = RULES if rules is None else tuple(rules)
    per_file = tuple(r for r in run if not r.meta and not r.whole_program)
    run_codes = {r.code for r in run if not r.whole_program}
    analysis = analyze_file(
        path, source, rules=per_file, run_codes=run_codes,
        module=module, kind=kind,
    )
    findings = list(analysis.findings)
    findings.extend(unused_suppression_findings(analysis, run_codes))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: Path | str,
    *,
    rules: Sequence[Rule] | None = None,
    module: str | None = None,
    kind: str | None = None,
) -> list[Finding]:
    """Lint one file, whole-program rules included (a one-file project).

    When ``module``/``kind`` overrides are given the call degrades to
    :func:`lint_source` semantics (per-file rules only) — the overrides
    describe a hypothetical context, not a real project file.
    """
    path = Path(path)
    if module is not None or kind is not None:
        source = path.read_text(encoding="utf-8")
        return lint_source(source, path, rules=rules, module=module, kind=kind)
    from repro.lint.graph import lint_project

    return lint_project([path], rules=rules).findings


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories to the ordered list of files to lint.

    Directories are walked recursively in sorted order, pruning hidden
    directories, ``__pycache__``, and fixture directories (those holding
    a ``.repro-lint-fixtures`` marker).  Explicit file paths are yielded
    unconditionally.
    """
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            yield p
        elif p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                if FIXTURE_MARKER in filenames:
                    dirnames[:] = []
                    continue
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield Path(dirpath) / name
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
    cache_path: Path | str | None = None,
) -> list[Finding]:
    """Lint a file set: per-file rules plus the whole-program rules.

    ``cache_path`` enables the content-hash incremental cache (the CLI
    passes ``.repro-lint-cache.json``; the API default stays uncached so
    tests are hermetic).
    """
    from repro.lint.graph import lint_project

    return lint_project(paths, rules=rules, cache_path=cache_path).findings
