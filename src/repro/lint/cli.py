"""``python -m repro lint`` — the determinism-contract gate.

Exit status: 0 when every finding is suppressed (or none exist), 1 when
any active finding remains, 2 on usage errors.  CI runs this over
``src tests benchmarks examples`` with ``--format json`` and fails on a
non-zero exit.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_list_rules, render_text
from repro.lint.rules import all_codes, select_rules

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _parse_codes(
    parser: argparse.ArgumentParser, value: str | None, flag: str
) -> tuple[str, ...] | None:
    if value is None:
        return None
    codes = tuple(c.strip() for c in value.split(",") if c.strip())
    known = set(all_codes())
    for code in codes:
        if code not in known:
            parser.error(
                f"{flag}: unknown rule code {code!r} (see --list-rules)"
            )
    if not codes:
        parser.error(f"{flag}: expected a comma-separated list of rule codes")
    return codes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Static determinism & performance contract checker (stdlib-ast "
            "only). Lints the given files/directories; directories holding "
            "a .repro-lint-fixtures marker are skipped unless a file in "
            "them is named explicitly."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="path",
        help=(
            "files or directories to lint (default: "
            + " ".join(DEFAULT_PATHS)
            + ", those that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json schema v1 is stable; see DESIGN.md)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (code, scope, summary, rationale)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_list_rules())
        return 0

    select = _parse_codes(parser, args.select, "--select")
    ignore = _parse_codes(parser, args.ignore, "--ignore")
    rules = select_rules(select, ignore)
    if not rules:
        parser.error("--select/--ignore left no rules to run")

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        parser.error(
            "no paths given and none of the default paths "
            f"({', '.join(DEFAULT_PATHS)}) exist here"
        )
    try:
        findings = lint_paths(paths, rules=rules)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    return 1 if any(not f.suppressed for f in findings) else 0
