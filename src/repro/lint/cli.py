"""``python -m repro lint`` — the determinism-contract gate.

Exit status: 0 when every finding is suppressed (or none exist), 1 when
any active finding remains, 2 on usage errors.  CI runs this over
``src tests benchmarks examples`` with ``--format json`` (plus a SARIF
run uploaded to code scanning) and fails on a non-zero exit.

The whole-program rules always see the full file set; ``--since REV``
only *filters the report* to files changed since ``REV`` plus their
reverse dependencies on the import graph, so a layering or provenance
violation introduced by a change is still attributed even when the
finding lands in an unchanged file.  The content-hash cache
(``.repro-lint-cache.json``) makes the full-graph run cheap; disable it
with ``--no-cache`` or relocate it with ``--cache PATH``.
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path

from repro.lint.graph import (
    CACHE_DEFAULT,
    lint_project,
    reverse_dependency_closure,
)
from repro.lint.report import (
    render_json,
    render_list_rules,
    render_sarif,
    render_text,
)
from repro.lint.rules import all_codes, select_rules

__all__ = ["main"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def _parse_codes(
    parser: argparse.ArgumentParser, value: str | None, flag: str
) -> tuple[str, ...] | None:
    if value is None:
        return None
    codes = tuple(c.strip() for c in value.split(",") if c.strip())
    known = set(all_codes())
    for code in codes:
        if code not in known:
            parser.error(
                f"{flag}: unknown rule code {code!r} (see --list-rules)"
            )
    if not codes:
        parser.error(f"{flag}: expected a comma-separated list of rule codes")
    return codes


def _changed_paths(rev: str) -> set[Path]:
    """Files changed since ``rev`` (committed, staged, or untracked)."""
    root = Path(
        subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    )
    changed: set[Path] = set()
    for args in (
        ["git", "diff", "--name-only", rev, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        out = subprocess.run(
            args, capture_output=True, text=True, check=True
        ).stdout
        for line in out.splitlines():
            if line.strip():
                changed.add((root / line.strip()).resolve())
    return changed


def _filter_since(result, rev: str):
    """Keep findings in changed files and their reverse dependencies."""
    changed = _changed_paths(rev)
    changed_displays = {
        a.display
        for a in result.analyses
        if Path(a.display).resolve() in changed
    }
    changed_modules = {
        a.module
        for a in result.analyses
        if a.display in changed_displays and a.module
    }
    affected = reverse_dependency_closure(result.graph, changed_modules)
    keep = {
        a.display
        for a in result.analyses
        if a.display in changed_displays or (a.module and a.module in affected)
    }
    return [f for f in result.findings if f.file in keep]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "Static determinism & performance contract checker (stdlib-ast "
            "only). Lints the given files/directories; directories holding "
            "a .repro-lint-fixtures marker are skipped unless a file in "
            "them is named explicitly."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="path",
        help=(
            "files or directories to lint (default: "
            + " ".join(DEFAULT_PATHS)
            + ", those that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "report format (json schema v1 is stable, see DESIGN.md; "
            "sarif targets GitHub code scanning)"
        ),
    )
    parser.add_argument(
        "--since",
        metavar="REV",
        default=None,
        help=(
            "report only findings in files changed since the git revision "
            "REV, plus their reverse dependencies on the import graph "
            "(the whole-program analysis still sees every file)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=CACHE_DEFAULT,
        help=(
            "incremental cache file (default: %(default)s; content-hashed "
            "per file and invalidated when the linter itself changes)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (code, scope, summary, rationale)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_list_rules())
        return 0

    select = _parse_codes(parser, args.select, "--select")
    ignore = _parse_codes(parser, args.ignore, "--ignore")
    rules = select_rules(select, ignore)
    if not rules:
        parser.error("--select/--ignore left no rules to run")

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        parser.error(
            "no paths given and none of the default paths "
            f"({', '.join(DEFAULT_PATHS)}) exist here"
        )
    cache_path = None if args.no_cache else args.cache
    try:
        result = lint_project(paths, rules=rules, cache_path=cache_path)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    findings = result.findings
    if args.since is not None:
        try:
            findings = _filter_since(result, args.since)
        except (subprocess.CalledProcessError, FileNotFoundError) as exc:
            parser.error(f"--since {args.since}: git failed ({exc})")

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    return 1 if any(not f.suppressed for f in findings) else 0
