"""Text and JSON reporters for lint findings.

The JSON schema is stable (version 1) and documented in DESIGN.md:

.. code-block:: json

    {
      "version": 1,
      "findings": [
        {"file": "src/repro/x.py", "line": 10, "col": 4,
         "code": "RPR004", "message": "...",
         "suppressed": false, "suppress_reason": null}
      ],
      "summary": {"total": 1, "active": 1, "suppressed": 0}
    }

``findings`` is sorted by (file, line, col, code) and includes suppressed
entries so CI annotators can surface them; exit status is governed by
``summary.active`` alone.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.engine import Finding
from repro.lint.rules import RULES

__all__ = ["render_json", "render_list_rules", "render_text"]

JSON_SCHEMA_VERSION = 1


def render_text(
    findings: Sequence[Finding], *, show_suppressed: bool = False
) -> str:
    """Human-oriented report: one ``path:line:col: CODE message`` per line."""
    lines = []
    active = 0
    suppressed = 0
    for f in findings:
        if f.suppressed:
            suppressed += 1
            if not show_suppressed:
                continue
            reason = f.suppress_reason or "no reason given"
            lines.append(
                f"{f.file}:{f.line}:{f.col + 1}: {f.code} [suppressed: "
                f"{reason}] {f.message}"
            )
        else:
            active += 1
            lines.append(f"{f.file}:{f.line}:{f.col + 1}: {f.code} {f.message}")
    noun = "finding" if active == 1 else "findings"
    lines.append(f"{active} {noun} ({suppressed} suppressed)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(payload, indent=2)


def render_list_rules(rules: Iterable = RULES) -> str:
    """``--list-rules`` output: code, scope, and summary per registry entry."""
    out = []
    for rule in rules:
        kind = "meta" if rule.meta else "ast"
        out.append(f"{rule.code}  {rule.name}  [{kind}; scope: {rule.scope}]")
        out.append(f"    {rule.summary}")
        out.append(f"    why: {rule.rationale}")
    return "\n".join(out)
