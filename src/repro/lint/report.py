"""Text, JSON, and SARIF reporters for lint findings.

The JSON schema is stable (version 1) and documented in DESIGN.md:

.. code-block:: json

    {
      "version": 1,
      "findings": [
        {"file": "src/repro/x.py", "line": 10, "col": 4,
         "code": "RPR004", "message": "...",
         "suppressed": false, "suppress_reason": null}
      ],
      "summary": {"total": 1, "active": 1, "suppressed": 0}
    }

``findings`` is sorted by (file, line, col, code) and includes suppressed
entries so CI annotators can surface them; exit status is governed by
``summary.active`` alone.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.engine import Finding
from repro.lint.rules import RULES

__all__ = ["render_json", "render_list_rules", "render_sarif", "render_text"]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(
    findings: Sequence[Finding], *, show_suppressed: bool = False
) -> str:
    """Human-oriented report: one ``path:line:col: CODE message`` per line."""
    lines = []
    active = 0
    suppressed = 0
    for f in findings:
        if f.suppressed:
            suppressed += 1
            if not show_suppressed:
                continue
            reason = f.suppress_reason or "no reason given"
            lines.append(
                f"{f.file}:{f.line}:{f.col + 1}: {f.code} [suppressed: "
                f"{reason}] {f.message}"
            )
        else:
            active += 1
            lines.append(f"{f.file}:{f.line}:{f.col + 1}: {f.code} {f.message}")
    noun = "finding" if active == 1 else "findings"
    lines.append(f"{active} {noun} ({suppressed} suppressed)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(payload, indent=2)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 output for GitHub code scanning.

    Deterministic: findings arrive pre-sorted from the engine, the rule
    array follows registry (code) order, and the serialization is plain
    ``json.dumps`` with a fixed indent — two identical runs produce
    byte-identical files.  Suppressed findings are emitted with an
    ``inSource`` suppression object so code scanning shows them as
    dismissed rather than open.
    """
    rule_index = {rule.code: i for i, rule in enumerate(RULES)}
    rules_payload = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
            "properties": {"scope": rule.scope},
        }
        for rule in RULES
    ]
    results = []
    for f in findings:
        result = {
            "ruleId": f.code,
            "ruleIndex": rule_index.get(f.code, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.suppressed:
            result["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": f.suppress_reason or "",
                }
            ]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules_payload,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


def render_list_rules(rules: Iterable = RULES) -> str:
    """``--list-rules`` output: code, scope, and summary per registry entry."""
    out = []
    for rule in rules:
        kind = "meta" if rule.meta else "ast"
        out.append(f"{rule.code}  {rule.name}  [{kind}; scope: {rule.scope}]")
        out.append(f"    {rule.summary}")
        out.append(f"    why: {rule.rationale}")
    return "\n".join(out)
