"""Whole-program analysis layer for the determinism contract.

The per-file rules (RPR001...RPR012) are pattern checks: each one sees a
single ``ast`` tree.  The bugs that actually threaten bit-identical
reproduction are interprocedural — an RNG constructed three calls away
from its seed, module-level state silently mutated inside pool workers,
a low-level module growing an import of the fleet layer.  This module
builds the project-wide facts those rules need, still on stdlib ``ast``
alone:

* a **file summary** per linted file (imports with line anchors, a
  top-level symbol table, per-function call sites with argument
  classification, module-global write sites, and pool worker entry
  points), cheap to serialize;
* a **ProjectGraph** combining the summaries: module import DAG, a
  cross-module call graph resolved through each file's imports, and
  reachability/shortest-chain queries;
* a **content-hash incremental cache** (``.repro-lint-cache.json``):
  per-file summaries and per-file findings are keyed by the source's
  SHA-256 and a signature of the linter's own sources, so a warm run
  re-parses only changed files and rebuilds the graph from cached
  summaries.  Whole-program findings are recomputed every run (they
  depend on *other* files), which is cheap next to parsing.

The graph rules themselves (RPR013/RPR014/RPR015) live in
:mod:`repro.lint.rules` and :mod:`repro.lint.taint`; ``lint_project``
below is the orchestrator behind ``lint_paths`` and the CLI.
"""

from __future__ import annotations

import ast
import hashlib
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import (
    FileAnalysis,
    Finding,
    analyze_file,
    analysis_from_cache,
    analysis_to_cache,
    iter_python_files,
    unused_suppression_findings,
)
from repro.lint.rules import RULES, Rule

__all__ = [
    "CACHE_DEFAULT",
    "FunctionInfo",
    "ProjectGraph",
    "ProjectResult",
    "layering_findings",
    "lint_project",
    "reverse_dependency_closure",
    "summarize",
    "worker_state_findings",
]

CACHE_DEFAULT = ".repro-lint-cache.json"
CACHE_VERSION = 1

#: Attribute methods that mutate their receiver in place.  Calls shaped
#: ``NAME.method(...)`` where ``NAME`` is a module-level object count as
#: writes to module state for RPR014.
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: Seed sinks: calls whose first positional argument is an RNG seed.
_SEED_SINKS = ("numpy.random.default_rng", "numpy.random.SeedSequence")

#: Modules whose literal seeds are sanctioned provenance roots (RPR013):
#: the scenario/experiment definition layer and CLI entry points are
#: exactly where a run's root seed is *supposed* to be written down.
_APPROVED_SEED_PREFIXES = ("repro.core", "repro.reports")

#: The module whose executor submissions define worker entry points
#: (RPR014); mirrors RPR012's confinement.
_POOL_MODULE = "repro.fleet.pool"


# ---------------------------------------------------------------------------
# Per-file summary extraction


@dataclass
class CallSite:
    """One resolvable call inside a function body."""

    ref: str  # "f", "pkg.mod.f", or "<self>.meth"
    line: int
    col: int
    #: positional args: list of (cls, roots); cls in {"lit","prov","opq"}
    args: list
    #: keyword args: name -> (cls, roots)
    kwargs: dict
    #: True when this call is an RPR003-blessed `rng`-None fallback
    fallback: bool = False


@dataclass
class WriteSite:
    """A write to module-level state inside a function body."""

    name: str
    line: int
    col: int
    desc: str


@dataclass
class FunctionInfo:
    qualname: str  # "f" or "Cls.f"
    params: list
    is_method: bool
    calls: list = field(default_factory=list)
    writes: list = field(default_factory=list)


@dataclass
class FileSummary:
    """Serializable whole-program facts for one file."""

    module: str | None
    kind: str
    #: (target_module, line, col, module_level)
    imports: list = field(default_factory=list)
    functions: dict = field(default_factory=dict)
    module_names: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)  # name -> [method names]
    worker_entries: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "kind": self.kind,
            "imports": self.imports,
            "module_names": self.module_names,
            "classes": self.classes,
            "worker_entries": self.worker_entries,
            "functions": {
                q: {
                    "params": f.params,
                    "is_method": f.is_method,
                    "calls": [
                        [c.ref, c.line, c.col, c.args, c.kwargs, c.fallback]
                        for c in f.calls
                    ],
                    "writes": [
                        [w.name, w.line, w.col, w.desc] for w in f.writes
                    ],
                }
                for q, f in self.functions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileSummary":
        summary = cls(
            module=data["module"],
            kind=data["kind"],
            imports=[tuple(i) for i in data["imports"]],
            module_names=list(data["module_names"]),
            classes={k: list(v) for k, v in data["classes"].items()},
            worker_entries=list(data["worker_entries"]),
        )
        for qual, raw in data["functions"].items():
            info = FunctionInfo(
                qualname=qual,
                params=list(raw["params"]),
                is_method=raw["is_method"],
            )
            info.calls = [
                CallSite(
                    ref=c[0],
                    line=c[1],
                    col=c[2],
                    args=[tuple(a) for a in c[3]],
                    kwargs={k: tuple(v) for k, v in c[4].items()},
                    fallback=c[5],
                )
                for c in raw["calls"]
            ]
            info.writes = [WriteSite(*w) for w in raw["writes"]]
            summary.functions[qual] = info
        return summary


def _resolve_relative(
    module: str | None, level: int, target: str | None, is_package: bool
) -> str | None:
    """Resolve a relative import against the importing module's name.

    Level 1 refers to the containing package: the module itself for a
    package ``__init__``, its parent otherwise.
    """
    if level == 0 or module is None:
        return target
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop]
    if target:
        base.append(target)
    return ".".join(base) if base else None


def _in_type_checking_block(tree: ast.Module) -> set[int]:
    """Line numbers of statements guarded by ``if TYPE_CHECKING:``."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = None
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                lines.add(stmt.lineno)
    return lines


def _binding_names(target: ast.AST, names: set[str]) -> None:
    """Collect names a target expression *binds* (not mutation targets).

    ``x = ...`` binds ``x``; ``x[k] = ...`` and ``x.attr = ...`` mutate
    an existing object and bind nothing — treating their root as local
    would hide writes to module-level state.
    """
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _binding_names(elt, names)
    elif isinstance(target, ast.Starred):
        _binding_names(target.value, names)


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally inside ``func`` (params + binding targets)."""
    from repro.lint.rules import _arg_names, _walk_function_shallow

    names = _arg_names(func)
    for node in _walk_function_shallow(func):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars
                for item in node.items
                if item.optional_vars is not None
            ]
        elif isinstance(node, ast.comprehension):
            targets = [node.target]
        elif isinstance(node, ast.NamedExpr):
            targets = [node.target]
        for target in targets:
            _binding_names(target, names)
    return names


def _globals_declared(func: ast.AST) -> set[str]:
    from repro.lint.rules import _walk_function_shallow

    out: set[str] = set()
    for node in _walk_function_shallow(func):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def _subscript_root(node: ast.AST) -> ast.AST:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


class _FunctionScanner:
    """Extracts calls, seed-argument classes, and global writes."""

    def __init__(self, ctx, func, qualname, is_method, module_names, fallback_calls):
        self.ctx = ctx
        self.func = func
        self.info = FunctionInfo(
            qualname=qualname,
            params=self._params(func, is_method),
            is_method=is_method,
        )
        self.module_names = module_names
        self.fallback_calls = fallback_calls
        self.locals = _local_names(func)
        self.globals_decl = _globals_declared(func)
        # Names derived (transitively) from parameters, mapped to the
        # originating parameter names — the intra-function half of the
        # seed taint.
        self.derived: dict[str, tuple[str, ...]] = {
            p: (p,) for p in self.info.params
        }
        for implicit in ("self", "cls"):
            if implicit in _local_names(func) or is_method:
                self.derived.setdefault(implicit, (implicit,))

    @staticmethod
    def _params(func, is_method: bool) -> list:
        a = func.args
        names = [p.arg for p in (*a.posonlyargs, *a.args)]
        if is_method and names:
            names = names[1:]
        return names + [p.arg for p in a.kwonlyargs]

    # -- expression classification -------------------------------------
    def classify(self, expr: ast.AST) -> tuple[str, tuple[str, ...]]:
        """Classify an argument expression for the seed taint.

        Returns ``(cls, roots)`` with ``cls`` one of ``"prov"`` (contains
        a provenance-carrying atom: a parameter-derived name, ``self``/
        ``cls``, a ``SeedSequence`` construction, or a name imported from
        an approved seed-root module), ``"lit"`` (built purely from
        constants and same-module names — a locally seeded, globally
        unseeded value), or ``"opq"`` (anything the analysis cannot
        track; never flagged).  ``roots`` lists the parameters the
        provenance traces to.
        """
        roots: list[str] = []
        literal_only = True
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                if node.id in self.derived:
                    for root in self.derived[node.id]:
                        if root not in roots:
                            roots.append(root)
                    continue
                qualified = self.ctx.imports.aliases.get(node.id)
                if qualified is not None:
                    if qualified.startswith(_APPROVED_SEED_PREFIXES):
                        return "prov", ()
                    if qualified in _SEED_SINKS or qualified == "numpy":
                        continue
                    literal_only = False
                elif node.id not in self.module_names and node.id not in (
                    "int",
                    "tuple",
                    "len",
                    "abs",
                    "hash",
                ):
                    literal_only = False
            elif isinstance(node, ast.Call):
                qualified = self.ctx.qualify(node.func)
                if qualified == "numpy.random.SeedSequence":
                    continue  # judged by its own arguments
                if qualified not in _SEED_SINKS:
                    literal_only = False
            elif isinstance(node, ast.Attribute):
                literal_only = False
        if roots:
            return "prov", tuple(roots)
        return ("lit" if literal_only else "opq"), ()

    # -- statement walk -------------------------------------------------
    def scan(self) -> FunctionInfo:
        from repro.lint.rules import _walk_function_shallow

        for node in _walk_function_shallow(self.func):
            if isinstance(node, ast.Assign):
                self._track_assign(node.targets, node.value)
                self._check_write_targets(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._track_assign([node.target], node.value)
                self._check_write_targets([node.target])
            elif isinstance(node, ast.AugAssign):
                self._check_write_targets([node.target], aug=True)
            elif isinstance(node, ast.Call):
                self._record_call(node)
        return self.info

    def _track_assign(self, targets, value) -> None:
        cls, roots = self.classify(value)
        if cls != "prov":
            return
        for target in targets:
            elts = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    merged = tuple(
                        dict.fromkeys(self.derived.get(elt.id, ()) + roots)
                    )
                    self.derived[elt.id] = merged

    def _check_write_targets(self, targets, *, aug: bool = False) -> None:
        for target in targets:
            root = _subscript_root(target)
            if isinstance(root, ast.Attribute):
                base = root.value
                if isinstance(base, ast.Name) and base.id not in self.locals:
                    qualified = self.ctx.imports.aliases.get(base.id)
                    if qualified is not None and "." not in base.id:
                        self._write(
                            target, base.id, f"sets attribute on module `{qualified}`"
                        )
                    elif base.id in self.module_names:
                        self._write(
                            target, base.id, "sets attribute on module-level object"
                        )
                continue
            if not isinstance(root, ast.Name):
                continue
            name = root.id
            if isinstance(target, ast.Name):
                if name in self.globals_decl:
                    self._write(target, name, "rebinds module-level name via `global`")
                continue
            # subscript store (possibly nested)
            if name in self.locals and name not in self.globals_decl:
                continue
            if name in self.module_names or name in self.globals_decl:
                verb = "augments" if aug else "writes"
                self._write(target, name, f"{verb} item of module-level object")

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        ref = None
        if isinstance(func, ast.Name):
            ref = self.ctx.qualify(func)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
                ref = f"<self>.{func.attr}"
            else:
                ref = self.ctx.qualify(func)
                if (
                    ref is None
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATOR_METHODS
                    and func.value.id not in self.locals
                    and func.value.id in self.module_names
                ):
                    self._write(
                        node,
                        func.value.id,
                        f"mutates module-level object via `.{func.attr}()`",
                    )
        if ref is None:
            return
        args = []
        has_star = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                has_star = True
                break
            cls, roots = self.classify(arg)
            args.append((cls, roots, arg.lineno, arg.col_offset))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                continue
            cls, roots = self.classify(kw.value)
            kwargs[kw.arg] = (cls, roots, kw.value.lineno, kw.value.col_offset)
        if has_star:
            args = []
        self.info.calls.append(
            CallSite(
                ref=ref,
                line=node.lineno,
                col=node.col_offset,
                args=args,
                kwargs=kwargs,
                fallback=node in self.fallback_calls,
            )
        )

    def _write(self, node: ast.AST, name: str, desc: str) -> None:
        self.info.writes.append(
            WriteSite(
                name=name,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                desc=desc,
            )
        )


def summarize(ctx) -> FileSummary:
    """Extract the whole-program facts from one parsed file."""
    from repro.lint.rules import _NoShadowedRngParam

    tree = ctx.tree
    summary = FileSummary(module=ctx.module, kind=ctx.kind)
    type_checking = _in_type_checking_block(tree)

    # Imports (module-level flag distinguishes layering-relevant edges
    # from deferred escape-hatch imports inside functions).
    module_level_lines = {stmt.lineno for stmt in tree.body} | {
        stmt.lineno
        for top in tree.body
        if isinstance(top, (ast.If, ast.Try))
        for stmt in ast.walk(top)
        if isinstance(stmt, (ast.Import, ast.ImportFrom))
        and stmt.lineno not in type_checking
    }
    is_package = ctx.path.name == "__init__.py"
    for node in ast.walk(tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            resolved = _resolve_relative(
                ctx.module, node.level, node.module, is_package
            )
            if resolved:
                # Record one target per alias: `from repro import fleet`
                # depends on repro.fleet, not on the repro package — the
                # tier/cycle checks and --since closure all want the
                # finest-grained dotted name available.
                targets = [
                    f"{resolved}.{alias.name}"
                    for alias in node.names
                    if alias.name != "*"
                ]
        for target in targets:
            if not target.startswith("repro"):
                continue
            summary.imports.append(
                (
                    target,
                    node.lineno,
                    node.col_offset,
                    node.lineno in module_level_lines
                    and node.lineno not in type_checking,
                )
            )

    # Top-level symbol table.
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.module_names.append(node.name)
        elif isinstance(node, ast.ClassDef):
            summary.module_names.append(node.name)
            summary.classes[node.name] = [
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        summary.module_names.append(sub.id)

    # Functions and methods.
    def scan_function(func, qualname, is_method):
        fallback = _NoShadowedRngParam._fallback_idiom_calls(ctx, func)
        scanner = _FunctionScanner(
            ctx, func, qualname, is_method, set(summary.module_names), fallback
        )
        summary.functions[qualname] = scanner.scan()

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, node.name, False)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(stmt, f"{node.name}.{stmt.name}", True)

    # Worker entry points: functions handed to executor.submit(...) or an
    # initializer= keyword inside the sanctioned pool module.
    if ctx.module == _POOL_MODULE:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            candidates: list[ast.AST] = []
            if isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
                if node.args:
                    candidates.append(node.args[0])
            for kw in node.keywords:
                if kw.arg == "initializer":
                    candidates.append(kw.value)
            for cand in candidates:
                if isinstance(cand, ast.Name):
                    summary.worker_entries.append(cand.id)
                elif isinstance(cand, ast.Attribute):
                    summary.worker_entries.append(f"<self>.{cand.attr}")
    return summary


# ---------------------------------------------------------------------------
# Project graph


class ProjectGraph:
    """Import DAG + cross-module call graph over a set of file summaries."""

    def __init__(self, analyses: Sequence[FileAnalysis]) -> None:
        self.analyses = list(analyses)
        #: module name -> FileAnalysis (last one wins on duplicates,
        #: deterministic because analyses arrive in walk order)
        self.by_module: dict[str, FileAnalysis] = {}
        for analysis in self.analyses:
            summary = analysis.summary
            if summary is not None and summary.module:
                self.by_module[summary.module] = analysis
        #: function id "module::qualname" -> (FunctionInfo, FileAnalysis)
        self.functions: dict[str, tuple[FunctionInfo, FileAnalysis]] = {}
        for module in sorted(self.by_module):
            analysis = self.by_module[module]
            for qual, info in analysis.summary.functions.items():
                self.functions[f"{module}::{qual}"] = (info, analysis)
        self._edges_cache: dict[str, list[str]] | None = None

    # -- imports --------------------------------------------------------
    def import_edges(self, *, module_level_only: bool) -> dict[str, list]:
        """module -> sorted list of (target, line, col) import edges."""
        edges: dict[str, list] = {}
        for module, analysis in self.by_module.items():
            seen = {}
            for target, line, col, top in analysis.summary.imports:
                if module_level_only and not top:
                    continue
                if target not in seen:
                    seen[target] = (target, line, col)
            edges[module] = [seen[k] for k in sorted(seen)]
        return edges

    def known_module(self, dotted: str) -> str | None:
        """Longest known module prefix of a dotted import target."""
        parts = dotted.split(".")
        for stop in range(len(parts), 0, -1):
            candidate = ".".join(parts[:stop])
            if candidate in self.by_module:
                return candidate
        return None

    # -- call graph -----------------------------------------------------
    def resolve_call(self, caller_module: str, caller_qual: str, ref: str) -> str | None:
        """Resolve a call-site ref to a function id, or None."""
        analysis = self.by_module.get(caller_module)
        if analysis is None:
            return None
        summary = analysis.summary
        if ref.startswith("<self>."):
            method = ref.split(".", 1)[1]
            cls = caller_qual.split(".")[0]
            if method in summary.classes.get(cls, ()):
                return f"{caller_module}::{cls}.{method}"
            return None
        if "." not in ref:
            if ref in summary.classes:
                if "__init__" in summary.classes[ref]:
                    return f"{caller_module}::{ref}.__init__"
                return None
            if ref in summary.functions:
                return f"{caller_module}::{ref}"
            return None
        # Dotted: "pkg.mod.symbol" or "pkg.mod.Class" — split at the
        # longest known module prefix.
        module = self.known_module(ref)
        if module is None or module == ref:
            return None
        symbol = ref[len(module) + 1 :]
        target = self.by_module[module].summary
        head = symbol.split(".")[0]
        if head in target.classes:
            if "__init__" in target.classes[head]:
                return f"{module}::{head}.__init__"
            return None
        if symbol in target.functions:
            return f"{module}::{symbol}"
        return None

    def call_edges(self) -> dict[str, list[str]]:
        """function id -> sorted unique callee function ids."""
        if self._edges_cache is not None:
            return self._edges_cache
        edges: dict[str, list[str]] = {}
        for fid in sorted(self.functions):
            module, qual = fid.split("::", 1)
            info, _ = self.functions[fid]
            seen = set()
            for call in info.calls:
                target = self.resolve_call(module, qual, call.ref)
                if target is not None and target != fid:
                    seen.add(target)
            edges[fid] = sorted(seen)
        self._edges_cache = edges
        return edges

    def reachable_from(self, entries: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """BFS over the call graph; maps function id -> shortest chain."""
        edges = self.call_edges()
        chains: dict[str, tuple[str, ...]] = {}
        frontier = []
        for entry in sorted(set(entries)):
            if entry in self.functions:
                chains[entry] = (entry,)
                frontier.append(entry)
        while frontier:
            nxt = []
            for fid in frontier:
                for callee in edges.get(fid, ()):
                    if callee not in chains:
                        chains[callee] = chains[fid] + (callee,)
                        nxt.append(callee)
            frontier = nxt
        return chains

    def worker_entries(self) -> list[str]:
        """Function ids submitted to pool executors in repro.fleet.pool."""
        out = []
        analysis = self.by_module.get(_POOL_MODULE)
        if analysis is None:
            return out
        for ref in analysis.summary.worker_entries:
            fid = self.resolve_call(_POOL_MODULE, ref, ref)
            if fid is None and ref in analysis.summary.functions:
                fid = f"{_POOL_MODULE}::{ref}"
            if fid is not None:
                out.append(fid)
        return sorted(set(out))


def reverse_dependency_closure(
    graph: ProjectGraph, modules: Iterable[str]
) -> set[str]:
    """Modules importing (transitively) any of ``modules`` — plus them.

    Uses *all* import edges, deferred ones included: a function-level
    import is still a behavioral dependency for ``--since`` purposes.
    """
    importers: dict[str, set[str]] = {}
    edges = graph.import_edges(module_level_only=False)
    for module, targets in edges.items():
        for target, _, _ in targets:
            known = graph.known_module(target)
            if known is not None:
                importers.setdefault(known, set()).add(module)
    closure = set()
    frontier = [m for m in modules if m]
    while frontier:
        module = frontier.pop()
        if module in closure:
            continue
        closure.add(module)
        frontier.extend(importers.get(module, ()))
    return closure


# ---------------------------------------------------------------------------
# RPR014 — worker-mutable state


def worker_state_findings(rule, graph: ProjectGraph) -> Iterable[Finding]:
    """Writes to module-level state reachable from pool worker entries.

    Workers are separate processes: anything a worker-reachable function
    writes at module level diverges per process and never syncs back to
    the parent, so results come to depend on worker count and task
    placement.  Findings cite the call chain from the entry point.
    """
    entries = graph.worker_entries()
    if not entries:
        return
    chains = graph.reachable_from(entries)
    seen: set[tuple] = set()
    for fid in sorted(chains):
        info, analysis = graph.functions[fid]
        module = analysis.module
        if module is None or not (
            module == "repro" or module.startswith("repro.")
        ):
            continue
        for write in info.writes:
            key = (analysis.display, write.line, write.col)
            if key in seen:
                continue
            seen.add(key)
            chain = " -> ".join(chains[fid])
            yield Finding(
                file=analysis.display,
                line=write.line,
                col=write.col,
                code=rule.code,
                message=(
                    f"worker-reachable function `{fid}` {write.desc} "
                    f"`{write.name}`: module-level state written in a "
                    "pool worker diverges per process and never syncs "
                    f"back (worker chain: {chain})"
                ),
            )


# ---------------------------------------------------------------------------
# RPR015 — layering contract


#: The declared tier order, lowest first.  A module's tier comes from its
#: second dotted component (``repro.fleet.pool`` -> ``fleet``); imports at
#: module level may only point at the same or a lower tier.  Function-level
#: (deferred) imports are the sanctioned inversion seam and stay off this
#: graph; ``repro`` itself and ``repro.__main__`` are dispatchers and
#: exempt.  This table refines ISSUE/DESIGN's coarse
#: ``core/nn/data -> events/hw -> fleet -> topology/scenario`` contract
#: into a full topological order of the actual subpackages.
_TIERS = (
    ("lint", "obs", "comm"),
    ("nn", "events"),
    ("data", "models"),
    ("hw", "selfsup", "transfer"),
    ("diagnosis",),
    ("core",),
    ("fleet",),
    ("topology",),
    ("scenario", "reports"),
)

_TIER_OF = {name: i for i, group in enumerate(_TIERS) for name in group}


def _module_tier(module: str) -> int | None:
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return _TIER_OF.get(parts[1])


def _highest_reachable_chain(
    graph: ProjectGraph, edges: dict, start: str
) -> tuple[str, ...]:
    """Shortest module-level import chain from ``start`` to the
    highest-tier module it reaches (itself, if nothing higher)."""
    start_tier = _module_tier(start) or 0
    best = (start_tier, (start,))
    seen = {start}
    frontier = [(start,)]
    while frontier:
        nxt = []
        for chain in frontier:
            known = graph.known_module(chain[-1])
            if known is None:
                continue
            for target, _, _ in edges.get(known, ()):
                if target in seen:
                    continue
                seen.add(target)
                extended = chain + (target,)
                tier = _module_tier(target)
                if tier is not None and tier > best[0]:
                    best = (tier, extended)
                nxt.append(extended)
        frontier = nxt
    return best[1]


def _strongly_connected(adjacency: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan SCCs (iterative), deterministic under sorted adjacency."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in sorted(adjacency):
        if root in index:
            continue
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in adjacency:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


def layering_findings(rule, graph: ProjectGraph) -> Iterable[Finding]:
    """Upward module-level imports and import cycles across tiers."""
    edges = graph.import_edges(module_level_only=True)

    # Upward imports (tier inversion).  Tiers are judged on the dotted
    # names alone, so an import of a module outside the linted file set
    # is still checked.
    for module in sorted(edges):
        src_tier = _module_tier(module)
        if src_tier is None:
            continue
        analysis = graph.by_module[module]
        for target, line, col in edges[module]:
            dst_tier = _module_tier(target)
            if dst_tier is None or dst_tier <= src_tier:
                continue
            chain = _highest_reachable_chain(graph, edges, target)
            group = "/".join(_TIERS[src_tier])
            yield Finding(
                file=analysis.display,
                line=line,
                col=col,
                code=rule.code,
                message=(
                    f"layering violation: `{module}` (tier {src_tier}: "
                    f"{group}) imports `{target}` (tier {dst_tier}) at "
                    "module level; import chain: "
                    f"{' -> '.join((module,) + chain)} — defer the import "
                    "into the function that needs it, or move the "
                    "dependency down a tier"
                ),
            )

    # Cycles among the linted modules (any tier — even within one).
    adjacency: dict[str, list[str]] = {}
    self_loop: set[str] = set()
    for module, targets in edges.items():
        succ = set()
        for target, _, _ in targets:
            known = graph.known_module(target)
            if known is None:
                continue
            if known == module:
                self_loop.add(module)
            else:
                succ.add(known)
        adjacency[module] = sorted(succ)
    for scc in sorted(_strongly_connected(adjacency)):
        cycle = scc if len(scc) > 1 else [m for m in scc if m in self_loop]
        if not cycle:
            continue
        anchor = cycle[0]
        analysis = graph.by_module[anchor]
        member = next(
            (t for t, _, _ in edges[anchor] if graph.known_module(t) in cycle),
            None,
        )
        line, col = 1, 0
        for target, tline, tcol in edges[anchor]:
            if target == member:
                line, col = tline, tcol
                break
        yield Finding(
            file=analysis.display,
            line=line,
            col=col,
            code=rule.code,
            message=(
                "import cycle at module level: "
                f"{' -> '.join(cycle + [cycle[0]])} — the layering "
                "contract requires an acyclic module-level import graph; "
                "break the cycle with a deferred (function-level) import"
            ),
        )


# ---------------------------------------------------------------------------
# Incremental cache


def _lint_signature(codes: Iterable[str]) -> str:
    """Hash of the linter's own sources plus the selected rule codes.

    Any change to the lint package, the interpreter minor version, or
    the rule selection (``--select``/``--ignore``) invalidates the whole
    cache — cached findings are only replayable for the run shape that
    produced them.
    """
    digest = hashlib.sha256()
    digest.update(f"{CACHE_VERSION}:{sys.version_info[:2]}".encode())
    digest.update(",".join(sorted(codes)).encode())
    package = Path(__file__).parent
    for name in sorted(p.name for p in package.glob("*.py")):
        digest.update((package / name).read_bytes())
    return digest.hexdigest()


class ProjectCache:
    """Content-hash cache of per-file analyses (summaries + findings)."""

    def __init__(self, path: Path, codes: Iterable[str] = ()) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._sig = _lint_signature(codes)
        self._files: dict[str, dict] = {}
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if raw.get("version") == CACHE_VERSION and raw.get("sig") == self._sig:
            self._files = raw.get("files", {})

    def load(self, display: str, digest: str) -> FileAnalysis | None:
        entry = self._files.get(display)
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return analysis_from_cache(display, entry, FileSummary.from_dict)

    def store(self, display: str, digest: str, analysis: FileAnalysis) -> None:
        self._files[display] = analysis_to_cache(analysis, digest)
        self._dirty = True

    def flush(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "sig": self._sig,
            "files": {k: self._files[k] for k in sorted(self._files)},
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # read-only checkout: run uncached
        self._dirty = False


# ---------------------------------------------------------------------------
# Project orchestration


@dataclass
class ProjectResult:
    findings: list
    analyses: list
    graph: ProjectGraph
    cache_hits: int = 0
    cache_misses: int = 0

    def files_for_modules(self, modules: Iterable[str]) -> set[str]:
        wanted = set(modules)
        out = set()
        for analysis in self.analyses:
            summary = analysis.summary
            if summary is None:
                continue
            if summary.module in wanted:
                out.add(analysis.display)
                continue
            for target, _, _, _ in summary.imports:
                known = self.graph.known_module(target)
                if known in wanted:
                    out.add(analysis.display)
                    break
        return out


def lint_project(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
    cache_path: Path | str | None = None,
) -> ProjectResult:
    """Lint a file set with per-file *and* whole-program rules.

    This is the engine behind ``lint_paths`` and the CLI: per-file rules
    run (or load from cache) first, the project graph is assembled from
    the file summaries, the whole-program rules run over the graph, and
    suppression accounting (RPR010) is settled last so a pragma may
    suppress either kind of finding.
    """
    run = RULES if rules is None else tuple(rules)
    per_file = tuple(r for r in run if not r.meta and not r.whole_program)
    graph_rules = tuple(r for r in run if r.whole_program)
    run_codes = {r.code for r in run}

    cache = (
        ProjectCache(Path(cache_path), run_codes)
        if cache_path is not None
        else None
    )
    analyses: list[FileAnalysis] = []
    for path in iter_python_files(paths):
        display = str(path)
        source = path.read_bytes()
        digest = hashlib.sha256(source).hexdigest()
        analysis = cache.load(display, digest) if cache is not None else None
        if analysis is None:
            analysis = analyze_file(
                path, source.decode("utf-8"), rules=per_file, run_codes=run_codes
            )
            if cache is not None:
                cache.store(display, digest, analysis)
        analyses.append(analysis)
    if cache is not None:
        cache.flush()

    graph = ProjectGraph(analyses)
    findings: list[Finding] = []
    for analysis in analyses:
        findings.extend(analysis.findings)
    for rule in graph_rules:
        for finding in rule.check_project(graph):
            analysis = next(
                (a for a in analyses if a.display == finding.file), None
            )
            if analysis is not None:
                analysis.apply_suppressions(finding)
            findings.append(finding)
    for analysis in analyses:
        findings.extend(unused_suppression_findings(analysis, run_codes))

    findings.sort(key=Finding.sort_key)
    return ProjectResult(
        findings=findings,
        analyses=analyses,
        graph=graph,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
