"""The determinism & performance contract rules (``RPR001``...).

Every rule has a stable code, a one-line summary, and a rationale tied to
a concrete reproduction invariant (see DESIGN.md, "Determinism contract &
static enforcement").  Rules are pure AST passes: they never import or
execute the code under analysis.

Scopes use the linted file's *module identity* (``repro.fleet.uplink``)
derived from its path under ``src/``, or overridden by a
``# repro-lint: module=...`` / ``# repro-lint: scope=...`` pragma so rule
fixtures outside ``src/`` can emulate production context.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, Finding
    from repro.lint.graph import ProjectGraph

__all__ = ["RULES", "Rule", "all_codes", "get_rule", "select_rules"]


@dataclass(frozen=True)
class Rule:
    """A registered contract check.

    ``meta=True`` marks rules enforced by the engine itself (syntax
    errors, suppression hygiene) rather than by an AST pass; they still
    occupy registry codes so reporters and ``--list-rules`` describe them.

    ``whole_program=True`` marks rules that need the project graph
    (import DAG + call graph from :mod:`repro.lint.graph`): they
    implement :meth:`check_project` instead of :meth:`check`, run once
    per lint invocation rather than once per file, and are skipped by
    ``lint_source`` (a lone source blob has no project).
    """

    code: str
    name: str
    summary: str
    rationale: str
    scope: str
    meta: bool = False
    whole_program: bool = False

    def applies(self, ctx: "FileContext") -> bool:
        return True

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator["Finding"]:
        return iter(())

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> "Finding":
        from repro.lint.engine import Finding

        return Finding(
            file=ctx.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.code in _REGISTRY:  # pragma: no cover - registry invariant
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule


def all_codes() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


def select_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> tuple[Rule, ...]:
    """Resolve ``--select`` / ``--ignore`` code lists to an ordered rule set."""
    codes = sorted(_REGISTRY)
    if select is not None:
        wanted = set(select)
        codes = [c for c in codes if c in wanted]
    if ignore is not None:
        dropped = set(ignore)
        codes = [c for c in codes if c not in dropped]
    return tuple(_REGISTRY[c] for c in codes)


# ---------------------------------------------------------------------------
# Shared AST helpers


def _walk_function_shallow(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested def/class."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _arg_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = func.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return set(names)


def _is_default_rng(ctx: "FileContext", node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and ctx.qualify(node.func) == "numpy.random.default_rng"
    )


def _mentions_rng_none_test(test: ast.AST) -> bool:
    """True for tests of the shape ``rng is None`` / ``rng is not None``."""
    has_rng = any(
        isinstance(n, ast.Name) and n.id == "rng" for n in ast.walk(test)
    )
    has_none = any(
        isinstance(n, ast.Constant) and n.value is None
        for n in ast.walk(test)
    )
    return has_rng and has_none


# ---------------------------------------------------------------------------
# RPR000 / RPR009 / RPR010 — engine-enforced meta rules


_register(
    Rule(
        code="RPR000",
        name="syntax-error",
        summary="file must parse with the stdlib ast module",
        rationale=(
            "a file the linter cannot parse is a file whose contract "
            "nobody is checking"
        ),
        scope="all files",
        meta=True,
    )
)

_register(
    Rule(
        code="RPR009",
        name="suppression-hygiene",
        summary=(
            "repro-lint pragmas must be well-formed; every suppression "
            "must name known codes and carry a reason"
        ),
        rationale=(
            "a suppression without a reason is tribal knowledge again — "
            "the next editor cannot tell intent from accident"
        ),
        scope="all files",
        meta=True,
    )
)

_register(
    Rule(
        code="RPR010",
        name="unused-suppression",
        summary="suppressions must match a finding on their line",
        rationale=(
            "stale suppressions hide future regressions at exactly the "
            "line someone once deemed dangerous"
        ),
        scope="all files (relative to the rules actually run)",
        meta=True,
    )
)


# ---------------------------------------------------------------------------
# RPR001 — no legacy global NumPy RNG


# numpy.random attributes that are part of the explicit-Generator API and
# therefore allowed; everything else on the module is legacy global-state
# or distribution sugar that consumes the hidden global stream.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class _NoLegacyNumpyRandom(Rule):
    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                qualified = ctx.qualify(node)
                if qualified is None:
                    continue
                prefix, _, attr = qualified.rpartition(".")
                if prefix == "numpy.random" and attr not in _NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global NumPy RNG `{qualified}`: use an "
                        "explicitly passed np.random.Generator (or derive "
                        "one from SeedSequence)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module != "numpy.random":
                    continue
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield self.finding(
                            ctx,
                            node,
                            f"legacy global NumPy RNG import "
                            f"`numpy.random.{alias.name}`: use the "
                            "Generator API",
                        )


_register(
    _NoLegacyNumpyRandom(
        code="RPR001",
        name="no-legacy-numpy-rng",
        summary="ban the legacy global numpy.random API",
        rationale=(
            "the hidden global stream couples results to import/call "
            "order; explicit Generator objects are the only way the "
            "fleet's per-(node,stage) reseeding stays bit-identical"
        ),
        scope="all files",
    )
)


# ---------------------------------------------------------------------------
# RPR002 — no OS-entropy sources in simulation code
# RPR011 — wall-clock reads only inside repro.obs.clock


_TIMING_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
_ENTROPY_PREFIXES = ("random.", "secrets.")

#: The one module where stdlib timing calls are sanctioned: every
#: wall-time consumer routes through its helpers (see DESIGN.md §9).
_OBS_CLOCK_MODULE = "repro.obs.clock"


class _NoEntropy(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        # The general OS-entropy ban is a production-code rule; the
        # argless-default_rng check below runs everywhere.
        return True

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        in_src = ctx.in_module("repro")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualify(node.func)
            if qualified is None:
                continue
            if qualified == "numpy.random.default_rng" and not (
                node.args or node.keywords
            ):
                # An unseeded Generator draws from OS entropy — this is
                # nondeterministic anywhere, so it is flagged in tests,
                # benchmarks, and examples too.
                yield self.finding(
                    ctx,
                    node,
                    "argless default_rng() seeds from OS entropy: pass a "
                    "seed or a SeedSequence",
                )
                continue
            if not in_src:
                continue
            if qualified in _ENTROPY_CALLS or qualified.startswith(
                _ENTROPY_PREFIXES
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"OS-entropy source `{qualified}` in simulation code: "
                    "all randomness derives from seeded Generators",
                )


_register(
    _NoEntropy(
        code="RPR002",
        name="no-os-entropy",
        summary=(
            "ban OS-entropy sources inside src/repro; ban argless "
            "default_rng() everywhere"
        ),
        rationale=(
            "one unseeded draw breaks bit-identical trajectories across "
            "reruns, worker counts, and CI machines"
        ),
        scope="src/repro (argless default_rng: all files)",
    )
)


class _WallClockViaObsClock(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        # obs.clock is the sanctioned wrapper — the exception that keeps
        # every other module honest.
        return ctx.in_module("repro") and ctx.module != _OBS_CLOCK_MODULE

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualify(node.func)
            if qualified in _TIMING_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{qualified}` outside "
                    f"{_OBS_CLOCK_MODULE}: simulated time comes from the "
                    "event kernel; host timings route through the "
                    "sanctioned repro.obs.clock helpers so they stay in "
                    "the segregated observability channel",
                )


_register(
    _WallClockViaObsClock(
        code="RPR011",
        name="wallclock-via-obs-clock",
        summary=(
            "wall-clock / perf_counter calls are sanctioned only inside "
            "repro.obs.clock"
        ),
        rationale=(
            "a stray wall-clock read either leaks host time into "
            "simulated state (breaking bit-identical trajectories) or "
            "scatters unauditable timing exceptions; one wrapper module "
            "keeps the exception list greppable"
        ),
        scope="src/repro, excluding repro.obs.clock",
    )
)


# ---------------------------------------------------------------------------
# RPR003 — functions taking `rng` must not build their own


class _NoShadowedRngParam(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        # Tests legitimately build many seeded streams side by side to
        # prove determinism properties; production and example code must
        # thread the caller's Generator through.
        return ctx.kind in ("src", "examples")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if "rng" not in _arg_names(func):
                continue
            allowed = self._fallback_idiom_calls(ctx, func)
            for node in _walk_function_shallow(func):
                if _is_default_rng(ctx, node) and node not in allowed:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{func.name}` accepts an `rng` parameter but "
                        "constructs its own default_rng: thread the "
                        "caller's Generator through (the seeded "
                        "`rng if rng is not None else default_rng(seed)` "
                        "fallback is the one allowed shape)",
                    )

    @staticmethod
    def _fallback_idiom_calls(
        ctx: "FileContext", func: ast.AST
    ) -> set[ast.AST]:
        """default_rng calls forming the allowed seeded None-fallback."""
        allowed: set[ast.AST] = set()
        for node in _walk_function_shallow(func):
            branches: tuple[ast.AST, ...] = ()
            if isinstance(node, ast.IfExp) and _mentions_rng_none_test(
                node.test
            ):
                branches = (node.body, node.orelse)
            elif isinstance(node, ast.If) and _mentions_rng_none_test(
                node.test
            ):
                branches = tuple(
                    stmt.value
                    for stmt in node.body
                    if isinstance(stmt, ast.Assign)
                )
            for branch in branches:
                if _is_default_rng(ctx, branch) and (
                    branch.args or branch.keywords
                ):
                    allowed.add(branch)
        return allowed


_register(
    _NoShadowedRngParam(
        code="RPR003",
        name="no-shadowed-rng-param",
        summary=(
            "functions accepting `rng` must not construct a fresh "
            "default_rng internally"
        ),
        rationale=(
            "an internally built Generator silently ignores the stream "
            "the caller is accounting for, desynchronizing consumption "
            "order between code paths"
        ),
        scope="src/repro and examples/",
    )
)


# ---------------------------------------------------------------------------
# RPR004 — no float64 promotion markers on hot paths


def _is_float64_marker(ctx: "FileContext", node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Constant) and node.value in ("float64", ">f8", "f8"):
        return True
    return isinstance(node, ast.Attribute) and ctx.qualify(node) in (
        "numpy.float64",
        "numpy.double",
    )


class _NoFloat64Promotion(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        return ctx.in_module("repro") and not ctx.is_reference

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if ctx.qualify(node) in ("numpy.float64", "numpy.double"):
                    yield self.finding(
                        ctx,
                        node,
                        "float64 promotion marker on a hot path: the "
                        "framework dtype is float32; widen only in an "
                        "annotated accumulator (suppress with a reason)",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                if not isinstance(node.value, ast.Attribute) and (
                    _is_float64_marker(ctx, node.value)
                ):
                    yield self.finding(
                        ctx,
                        node.value,
                        "dtype widens to float64 (`dtype=float` / "
                        "'float64'): hot paths are float32",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "astype"
                    and node.args
                    and not isinstance(node.args[0], ast.Attribute)
                    and _is_float64_marker(ctx, node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "astype(float)/astype('float64') promotes to "
                        "float64: hot paths are float32",
                    )


_register(
    _NoFloat64Promotion(
        code="RPR004",
        name="no-float64-promotion",
        summary="ban float64 dtype markers outside annotated accumulators",
        rationale=(
            "silent f64 widening doubles bandwidth on the hot paths PR 3 "
            "optimized and changes reduction results, breaking the "
            "bit-exact trajectory goldens"
        ),
        scope="src/repro, excluding *.reference oracle modules",
    )
)


# ---------------------------------------------------------------------------
# RPR005 — production code must not import the oracle modules


_ORACLES = ("repro.data.reference", "repro.nn.reference")


class _NoOracleImport(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        return ctx.in_module("repro") and not ctx.is_reference

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_ORACLES):
                        yield self._flag(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                module = self._resolve(ctx, node)
                if module.startswith(_ORACLES):
                    yield self._flag(ctx, node, module)
                    continue
                if module in ("repro.data", "repro.nn"):
                    for alias in node.names:
                        if alias.name == "reference":
                            yield self._flag(
                                ctx, node, f"{module}.reference"
                            )

    @staticmethod
    def _resolve(ctx: "FileContext", node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = (ctx.module or "").split(".")
        base = parts[: len(parts) - node.level]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def _flag(
        self, ctx: "FileContext", node: ast.AST, module: str
    ) -> "Finding":
        return self.finding(
            ctx,
            node,
            f"production code imports the oracle module `{module}`: the "
            "pre-optimization references are for tests/benchmarks only",
        )


_register(
    _NoOracleImport(
        code="RPR005",
        name="no-oracle-import",
        summary="production modules must not import *.reference oracles",
        rationale=(
            "the oracles pin pre-optimization behavior; if production "
            "code leans on them, the equivalence tests stop being an "
            "independent check"
        ),
        scope="src/repro, excluding the *.reference modules themselves",
    )
)


# ---------------------------------------------------------------------------
# RPR006 — no iteration over sets in scheduling code


_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate", "iter", "sum"}


def _is_set_expr(ctx: "FileContext", node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if ctx.qualify(node.func) == "set":
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(ctx, node.func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(ctx, node.left) or _is_set_expr(ctx, node.right)
    return False


class _NoSetIteration(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        # repro.topology schedules gateway flushes and WAN flows, and
        # repro.scenario drives churn/phase/head schedules into both
        # fleet engines, so both are scheduling code in exactly the
        # RPR006 sense.
        return ctx.in_module(
            "repro.fleet", "repro.events", "repro.topology", "repro.scenario"
        )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and ctx.qualify(node.func) in _ORDER_SENSITIVE_CONSUMERS
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(ctx, it):
                    yield self.finding(
                        ctx,
                        it,
                        "iteration over a set in scheduling code: set "
                        "order is hash-dependent (PYTHONHASHSEED), so "
                        "event/flow ordering would vary per process — "
                        "iterate `sorted(...)` instead",
                    )


_register(
    _NoSetIteration(
        code="RPR006",
        name="no-set-iteration",
        summary="ban direct iteration over set values in fleet/events",
        rationale=(
            "the DES kernel breaks ties by schedule order; feeding it "
            "hash-ordered sets couples trajectories to PYTHONHASHSEED "
            "and process boundaries"
        ),
        scope="repro.fleet, repro.events, repro.topology, and repro.scenario",
    )
)


# ---------------------------------------------------------------------------
# RPR007 — gradient writes go through Parameter.accumulate


def _writes_grad(target: ast.AST) -> bool:
    if isinstance(target, ast.Attribute):
        return target.attr == "grad"
    if isinstance(target, ast.Subscript):
        return _writes_grad(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_writes_grad(el) for el in target.elts)
    if isinstance(target, ast.Starred):
        return _writes_grad(target.value)
    return False


class _GradViaAccumulate(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        return ctx.in_module("repro.nn") and not ctx.is_reference

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            if any(_writes_grad(t) for t in targets):
                yield self.finding(
                    ctx,
                    node,
                    "raw write to `.grad`: route gradient updates through "
                    "Parameter.accumulate / zero_grad so freezing "
                    "semantics stay centralized",
                )


_register(
    _GradViaAccumulate(
        code="RPR007",
        name="grad-via-accumulate",
        summary="gradient buffers are written only via Parameter.accumulate",
        rationale=(
            "accumulate() is where frozen layers skip work (the paper's "
            "1.7x locked-layer speedup); a raw `.grad +=` bypasses "
            "freezing and the single float32 accumulation point"
        ),
        scope="src/repro/nn, excluding nn.reference",
    )
)


# ---------------------------------------------------------------------------
# RPR008 — pytest-collected benchmarks must be marked slow


class _BenchmarkSlowMarker(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        return ctx.kind == "benchmarks" and ctx.path.name.startswith("bench_")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.startswith(("bench_", "test_")):
                continue
            if not any(self._is_slow_marker(ctx, d) for d in node.decorator_list):
                yield self.finding(
                    ctx,
                    node,
                    f"pytest-collected benchmark `{node.name}` lacks "
                    "@pytest.mark.slow: unmarked benchmarks leak into the "
                    "PR-blocking fast lane (the perf-smoke --quick script "
                    "path is the one exemption)",
                )

    @staticmethod
    def _is_slow_marker(ctx: "FileContext", deco: ast.AST) -> bool:
        if isinstance(deco, ast.Call):
            deco = deco.func
        qualified = ctx.qualify(deco)
        return qualified is not None and qualified.endswith("mark.slow")


_register(
    _BenchmarkSlowMarker(
        code="RPR008",
        name="benchmark-slow-marker",
        summary="benchmarks/ test functions must carry @pytest.mark.slow",
        rationale=(
            "CI's fast lane deselects `slow`; an unmarked bench silently "
            "adds minutes of training to every PR (or never runs at all)"
        ),
        scope="benchmarks/bench_*.py",
    )
)


# ---------------------------------------------------------------------------
# RPR012 — process pools / shared memory only inside repro.fleet.pool


#: Constructors that create OS-level parallelism resources.  Everything
#: in src/repro routes through the one pool module that guarantees
#: segment unlink on shutdown and bit-identical dispatch (DESIGN §12).
_POOL_CONFINED_CALLS = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.shared_memory.SharedMemory",
}

_FLEET_POOL_MODULE = "repro.fleet.pool"


class _ParallelismViaFleetPool(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        # fleet.pool is the sanctioned owner of worker processes and
        # shared-memory segments — the one place whose lifecycle
        # guarantees (unlink on shutdown and on exception) are tested.
        return ctx.in_module("repro") and ctx.module != _FLEET_POOL_MODULE

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualify(node.func)
            if qualified in _POOL_CONFINED_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"`{qualified}` constructed outside "
                    f"{_FLEET_POOL_MODULE}: ad-hoc pools re-pickle state "
                    "per task and leak segments on exception; go through "
                    "FleetWorkerPool, whose dispatch is bit-identical "
                    "and whose cleanup is guaranteed",
                )


_register(
    _ParallelismViaFleetPool(
        code="RPR012",
        name="parallelism-via-fleet-pool",
        summary=(
            "ProcessPoolExecutor / SharedMemory construction is "
            "sanctioned only inside repro.fleet.pool"
        ),
        rationale=(
            "a stray process pool reintroduces the per-task pickling "
            "pessimization and a stray segment leaks /dev/shm on "
            "exception; one owner module keeps worker lifecycle and "
            "cleanup guarantees auditable"
        ),
        scope="src/repro, excluding repro.fleet.pool",
    )
)


# ---------------------------------------------------------------------------
# RPR016 — run telemetry goes through repro.obs, not raw print/json.dump


#: The simulation/orchestration layers whose run telemetry must flow
#: through the observability channel (Tracer spans/events and the
#: MetricsRegistry) instead of ad-hoc stdout/file writes.  ``*.cli``
#: modules are the sanctioned human-facing print surface.
_ENGINE_TELEMETRY_MODULES = (
    "repro.core",
    "repro.events",
    "repro.fleet",
    "repro.scenario",
    "repro.topology",
)

_RAW_TELEMETRY_CALLS = {"print", "json.dump", "json.dumps"}


class _TelemetryViaObs(Rule):
    def applies(self, ctx: "FileContext") -> bool:
        if not ctx.in_module(*_ENGINE_TELEMETRY_MODULES):
            return False
        return not (ctx.module or "").endswith(".cli")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualify(node.func)
            if qualified in _RAW_TELEMETRY_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"raw telemetry emission `{qualified}` in an engine "
                    "module: run telemetry flows through repro.obs "
                    "(Tracer spans/events, MetricsRegistry dumps) so it "
                    "stays byte-stable and analyzable by obs "
                    "critical-path/diff/health; *.cli modules are the "
                    "sanctioned print surface",
                )


_register(
    _TelemetryViaObs(
        code="RPR016",
        name="telemetry-via-obs",
        summary=(
            "engine modules must not emit run telemetry via raw "
            "print/json.dump"
        ),
        rationale=(
            "a stray print or json.dump scatters run telemetry outside "
            "the schema-v1 trace and the metrics registry, where it is "
            "neither byte-stable across reruns nor reachable by the "
            "streaming trace analyses"
        ),
        scope=(
            "repro.core/events/fleet/scenario/topology, "
            "excluding *.cli modules"
        ),
    )
)


# ---------------------------------------------------------------------------
# RPR013 / RPR014 / RPR015 — whole-program rules (repro.lint.graph)
#
# These need the project-wide import DAG and call graph, so their logic
# lives in repro.lint.graph / repro.lint.taint (imported lazily: the
# graph module imports the engine, which imports this registry).


class _SeedProvenance(Rule):
    def check_project(self, graph: "ProjectGraph") -> Iterator["Finding"]:
        from repro.lint.taint import seed_findings

        yield from seed_findings(self, graph)


_register(
    _SeedProvenance(
        code="RPR013",
        name="seed-provenance",
        summary=(
            "RNG seeds inside simulation functions must trace, through "
            "the call graph, to a SeedSequence-derived parameter or an "
            "approved root module"
        ),
        rationale=(
            "a Generator seeded from a function-local literal is locally "
            "deterministic but globally unseeded: the experiment's "
            "SeedSequence tree cannot reach it, so per-(node,stage) "
            "spawning silently forks a stream no seed plumbing controls"
        ),
        scope=(
            "src/repro functions, excluding repro.core, repro.reports, "
            "and CLI entry points"
        ),
        whole_program=True,
    )
)


class _WorkerMutableState(Rule):
    def check_project(self, graph: "ProjectGraph") -> Iterator["Finding"]:
        from repro.lint.graph import worker_state_findings

        yield from worker_state_findings(self, graph)


_register(
    _WorkerMutableState(
        code="RPR014",
        name="worker-mutable-state",
        summary=(
            "module-level mutable state must not be written by functions "
            "reachable from repro.fleet.pool worker entry points"
        ),
        rationale=(
            "a module-level object mutated inside a pool worker diverges "
            "per process and never syncs back to the parent, so results "
            "silently depend on worker count and task placement — the "
            "exact divergence class the shared-memory runtime enables"
        ),
        scope="functions reachable from repro.fleet.pool worker entries",
        whole_program=True,
    )
)


class _LayeringContract(Rule):
    def check_project(self, graph: "ProjectGraph") -> Iterator["Finding"]:
        from repro.lint.graph import layering_findings

        yield from layering_findings(self, graph)


_register(
    _LayeringContract(
        code="RPR015",
        name="layering-contract",
        summary=(
            "module-level imports must respect the declared tier order "
            "(core/nn/data below fleet below topology/scenario) and stay "
            "acyclic"
        ),
        rationale=(
            "an upward import couples a low tier to engine/orchestration "
            "internals, turning every scenario change into a potential "
            "kernel change; deferred function-level imports are the one "
            "sanctioned inversion seam and stay off this graph"
        ),
        scope="module-level imports between src/repro tiers",
        whole_program=True,
    )
)


RULES: tuple[Rule, ...] = tuple(
    _REGISTRY[code] for code in sorted(_REGISTRY)
)
