"""RPR013: forward seed-provenance taint over the project call graph.

The per-file rules can ban *unseeded* Generators (RPR002) and *shadowed*
``rng`` parameters (RPR003), but they cannot see a Generator that is
locally seeded yet globally unseeded — ``default_rng(1234)`` buried in a
fleet helper, or a literal passed three calls down into a parameter that
eventually seeds an RNG.  Such a stream is deterministic in isolation
but unreachable from the experiment's ``SeedSequence`` tree, so the
per-(node,stage) reseeding discipline silently loses control of it.

The analysis is a two-phase fixpoint over the
:class:`repro.lint.graph.ProjectGraph`:

1. **Sink discovery.**  Every ``numpy.random.default_rng`` /
   ``numpy.random.SeedSequence`` call is a sink; its first positional
   argument was classified during summary extraction as ``prov``
   (derived from a parameter / ``self`` / an approved-root import),
   ``lit`` (built purely from constants), or ``opq`` (untrackable,
   never flagged).  A ``prov`` argument promotes the originating
   parameters to *seed parameters* of their function.

2. **Propagation.**  A call site binding an argument to a callee's seed
   parameter is itself a sink one level removed: ``prov`` arguments
   promote the caller's parameters in turn (to fixpoint), recording the
   shortest call chain down to the concrete sink.

After convergence, every ``lit`` argument feeding a sink — directly or
through seed parameters — is a violation, unless the containing module
is an approved seed root (``repro.core``, ``repro.reports``, a ``*.cli``
module, or ``repro.__main__``: exactly the places a run's root seed is
*supposed* to be written down) or the call is the RPR003-blessed
``rng if rng is not None else default_rng(seed)`` fallback.  Only
function bodies are analyzed: a module-level constant Generator is
import-time, greppable state and stays per-file rules' territory.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding
from repro.lint.graph import _APPROVED_SEED_PREFIXES, _SEED_SINKS, ProjectGraph

__all__ = ["seed_findings"]


def _flaggable_module(module: str | None) -> bool:
    """True when literal seeds in ``module`` violate the contract."""
    if module is None:
        return False
    if module != "repro" and not module.startswith("repro."):
        return False
    for prefix in _APPROVED_SEED_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return False
    if module.endswith(".cli") or module == "repro.__main__":
        return False
    return True


def _bindings(call, params):
    """Yield (param_name, (cls, roots, line, col)) for a call's arguments."""
    for pos, arg in enumerate(call.args):
        if pos >= len(params):
            break
        yield params[pos], arg
    for name, value in sorted(call.kwargs.items()):
        if name in params:
            yield name, value


def seed_findings(rule, graph: ProjectGraph) -> Iterable[Finding]:
    # (function id, param name) -> call chain from that param down to the
    # sink, ending with the sink's qualified name.
    seed_params: dict[tuple[str, str], tuple[str, ...]] = {}

    # Phase 1: direct sinks promote parameters.
    for fid in sorted(graph.functions):
        info, _ = graph.functions[fid]
        for call in info.calls:
            if call.ref not in _SEED_SINKS or call.fallback or not call.args:
                continue
            cls, roots = call.args[0][0], call.args[0][1]
            if cls != "prov":
                continue
            for root in roots:
                key = (fid, root)
                if root in info.params and key not in seed_params:
                    seed_params[key] = (fid, call.ref)

    # Phase 2: propagate seed parameters up the call graph to fixpoint.
    changed = True
    while changed:
        changed = False
        for fid in sorted(graph.functions):
            info, _ = graph.functions[fid]
            module, qual = fid.split("::", 1)
            for call in info.calls:
                target = graph.resolve_call(module, qual, call.ref)
                if target is None:
                    continue
                tinfo, _ = graph.functions[target]
                for pname, (cls, roots, _line, _col) in _bindings(
                    call, tinfo.params
                ):
                    chain = seed_params.get((target, pname))
                    if chain is None or cls != "prov":
                        continue
                    for root in roots:
                        key = (fid, root)
                        if root in info.params and key not in seed_params:
                            seed_params[key] = (fid,) + chain
                            changed = True

    # Collection: literal arguments feeding any sink, after convergence.
    violations: dict[tuple[str, int, int], tuple[str, ...]] = {}
    for fid in sorted(graph.functions):
        info, analysis = graph.functions[fid]
        if not _flaggable_module(analysis.module):
            continue
        module, qual = fid.split("::", 1)
        for call in info.calls:
            if (
                call.ref in _SEED_SINKS
                and not call.fallback
                and call.args
                and call.args[0][0] == "lit"
            ):
                key = (analysis.display, call.args[0][2], call.args[0][3])
                violations.setdefault(key, (fid, call.ref))
            target = graph.resolve_call(module, qual, call.ref)
            if target is None:
                continue
            tinfo, _ = graph.functions[target]
            for pname, (cls, _roots, line, col) in _bindings(
                call, tinfo.params
            ):
                chain = seed_params.get((target, pname))
                if chain is not None and cls == "lit":
                    key = (analysis.display, line, col)
                    violations.setdefault(key, (fid,) + chain)

    for (display, line, col) in sorted(violations):
        chain = violations[(display, line, col)]
        path = " -> ".join(chain[:-1])
        yield Finding(
            file=display,
            line=line,
            col=col,
            code=rule.code,
            message=(
                f"literal seed reaches `{chain[-1]}` via {path}: derive "
                "the seed from a SeedSequence-threaded parameter, or "
                "define the root seed in repro.core / a CLI entry point "
                "(the seeded `rng if rng is not None else "
                "default_rng(seed)` fallback is exempt)"
            ),
        )
