"""Static enforcement of the repo's determinism & performance contract.

The reproduction's correctness rests on invariants that no runtime test
can fully pin down: bit-identical RNG streams at any ``--workers`` count,
no silent float64 promotion on hot paths, and strict isolation of the
``*.reference`` oracle modules.  ``repro.lint`` makes those invariants
machine-checked: a zero-dependency (stdlib ``ast``) analysis pass with a
stable rule registry (``RPR001``...), per-statement suppressions that
must carry a reason, and text/JSON/SARIF reporters wired into CI.

Beyond the per-file rules, a whole-program layer (``repro.lint.graph``)
builds the project import DAG and call graph to enforce interprocedural
invariants: seed provenance (RPR013), worker-mutable state (RPR014), and
the module layering contract (RPR015).  A content-hash incremental cache
(``.repro-lint-cache.json``) keeps warm runs fast.

Usage::

    python -m repro lint [paths ...] [--format json|sarif] [--since REV]
    python -m repro lint --list-rules

Programmatic::

    from repro.lint import lint_paths
    findings = lint_paths(["src", "tests"])
    active = [f for f in findings if not f.suppressed]
"""

from repro.lint.engine import (
    Finding,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.graph import ProjectGraph, lint_project
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import RULES, Rule, all_codes, get_rule, select_rules

__all__ = [
    "Finding",
    "ProjectGraph",
    "RULES",
    "Rule",
    "all_codes",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
    "select_rules",
]
