"""Static enforcement of the repo's determinism & performance contract.

The reproduction's correctness rests on invariants that no runtime test
can fully pin down: bit-identical RNG streams at any ``--workers`` count,
no silent float64 promotion on hot paths, and strict isolation of the
``*.reference`` oracle modules.  ``repro.lint`` makes those invariants
machine-checked: a zero-dependency (stdlib ``ast``) analysis pass with a
stable rule registry (``RPR001``...), per-line suppressions that must
carry a reason, and text/JSON reporters wired into CI.

Usage::

    python -m repro lint [paths ...] [--format json] [--select/--ignore]
    python -m repro lint --list-rules

Programmatic::

    from repro.lint import lint_paths
    findings = lint_paths(["src", "tests"])
    active = [f for f in findings if not f.suppressed]
"""

from repro.lint.engine import (
    Finding,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.report import render_json, render_text
from repro.lint.rules import RULES, Rule, all_codes, get_rule, select_rules

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "all_codes",
    "get_rule",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "select_rules",
]
