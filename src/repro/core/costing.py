"""Node cost models for the two working modes.

The :class:`~repro.core.node.InSituNode` separates *decisions* (made by the
trainable IoT-scale networks) from *costs* (time and energy of running the
full-size networks on the node device).  A costing object maps image counts
to modeled (seconds, joules) pairs for each task:

* :class:`GPUSingleRunningCost` — the TX1 in Single-running mode: tasks
  time-share the device at their planner-chosen batch sizes.
* :class:`FPGACoRunningCost` — the VX690T running a WSS-NWS pipeline
  design: both tasks advance together at the pipeline's throughput, at flat
  board power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import network_time
from repro.hw.pipeline import PipelineTiming
from repro.hw.specs import FPGASpec, GPUSpec
from repro.models.layer_specs import NetworkSpec

__all__ = ["TaskCost", "GPUSingleRunningCost", "FPGACoRunningCost"]


@dataclass(frozen=True)
class TaskCost:
    """Modeled cost of running one task over some images."""

    seconds: float
    joules: float


class GPUSingleRunningCost:
    """Single-running mode costing on a mobile GPU."""

    def __init__(
        self,
        inference_spec: NetworkSpec,
        diagnosis_spec: NetworkSpec,
        gpu: GPUSpec,
        *,
        inference_batch: int = 4,
        diagnosis_batch: int = 32,
        num_patches: int = 9,
    ) -> None:
        self.inference_spec = inference_spec
        self.diagnosis_spec = diagnosis_spec
        self.gpu = gpu
        self.inference_batch = inference_batch
        self.diagnosis_batch = diagnosis_batch
        self.num_patches = num_patches

    def inference_cost(self, images: int) -> TaskCost:
        if images < 0:
            raise ValueError("images must be >= 0")
        timing = network_time(self.inference_spec, self.gpu, self.inference_batch)
        batches = -(-images // self.inference_batch) if images else 0
        busy = batches * timing.total_s
        return TaskCost(busy, busy * self.gpu.power(timing.mean_utilization))

    def diagnosis_cost(self, images: int) -> TaskCost:
        if images < 0:
            raise ValueError("images must be >= 0")
        if images == 0:
            return TaskCost(0.0, 0.0)
        timing = network_time(self.diagnosis_spec, self.gpu, self.diagnosis_batch)
        per_image = (
            timing.conv_s * self.num_patches + timing.fc_s
        ) / self.diagnosis_batch
        busy = per_image * images
        return TaskCost(busy, busy * self.gpu.power(timing.mean_utilization))


class FPGACoRunningCost:
    """Co-running mode costing on the FPGA pipeline.

    The pipeline processes inference and diagnosis for every image in the
    same rounds, so both tasks' per-image time is the pipeline's inverse
    throughput; the board draws flat power while busy.  Diagnosis is
    reported at zero marginal cost — its engines are dedicated silicon that
    runs concurrently inside the same rounds.
    """

    def __init__(self, timing: PipelineTiming, fpga: FPGASpec) -> None:
        self.timing = timing
        self.fpga = fpga

    def inference_cost(self, images: int) -> TaskCost:
        if images < 0:
            raise ValueError("images must be >= 0")
        busy = images / self.timing.throughput_ips
        return TaskCost(busy, busy * self.fpga.power_w)

    def diagnosis_cost(self, images: int) -> TaskCost:
        if images < 0:
            raise ValueError("images must be >= 0")
        return TaskCost(0.0, 0.0)
