"""The In-situ AI Cloud: pre-training, transfer, and incremental updates.

The Cloud owns the master copies of both networks.  Its three jobs, in the
order Fig. 4 introduces them:

1. **Unsupervised pre-training** of the context (jigsaw) network on raw,
   unlabeled IoT data.
2. **Transfer learning**: copy the first *n* conv layers into the inference
   network and train the rest on a limited amount of labeled data.
3. **Incremental updates**: fine-tune on the data uploaded from the node,
   with the weight-sharing freeze plan deciding how much of the network the
   update touches.

Every update also produces *modeled* Cloud cost (Titan-X time and energy
from full-size op counts) alongside the actual wall-clock training at IoT
scale — the modeled numbers are what the Fig. 25 comparison reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.hw.energy import TrainingCostModel
from repro.hw.specs import GPUSpec, TITAN_X
from repro.models.iot_models import CONV_LAYER_NAMES, build_classifier
from repro.models.layer_specs import NetworkSpec
from repro.nn import Sequential
from repro.selfsup.context_net import ContextNetwork
from repro.selfsup.jigsaw import JigsawSampler
from repro.selfsup.permutations import PermutationSet
from repro.selfsup.pretrain import build_context_network, pretrain
from repro.transfer.distill import distill_classifier
from repro.transfer.finetune import TrainResult, train_classifier
from repro.transfer.surgery import FreezePlan, transfer_conv_weights

__all__ = ["CloudUpdateReport", "InSituCloud"]


@dataclass(frozen=True)
class CloudUpdateReport:
    """One incremental update's cost and outcome."""

    images_used: int
    epochs: int
    wall_time_s: float
    modeled_time_s: float
    modeled_energy_j: float
    train_result: TrainResult


class InSituCloud:
    """Cloud-side controller for one deployment.

    Parameters
    ----------
    num_classes:
        Inference classes.
    permset:
        Permutation set shared with the node's diagnosis task.
    cost_spec:
        Full-size network spec used to model update cost.
    shared_depth:
        How many conv layers are weight-shared between the unsupervised and
        inference networks (the paper settles on 3).
    training_device:
        Cloud GPU spec (Titan X by default).
    """

    def __init__(
        self,
        num_classes: int,
        permset: PermutationSet,
        *,
        cost_spec: NetworkSpec,
        shared_depth: int = 3,
        width: float = 1.0,
        hidden: int = 128,
        training_device: GPUSpec = TITAN_X,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least 2 classes")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.num_classes = num_classes
        self.permset = permset
        self.cost_spec = cost_spec
        self.shared_depth = shared_depth
        self.width = width
        self.hidden = hidden
        # Class-incremental knobs (scenario engine): a distill_weight > 0
        # plus a non-empty exemplar buffer switches incremental updates to
        # exemplar-replay distillation against the pre-update teacher.
        self.distill_weight = 0.0
        self.distill_temperature = 2.0
        self.exemplar_buffer = None
        self._teacher: Sequential | None = None
        self.context_net: ContextNetwork = build_context_network(
            permset, width=width, rng=self.rng
        )
        self.inference_net: Sequential = build_classifier(
            num_classes, self.rng, width=width, hidden=hidden
        )
        self.cost_model = TrainingCostModel(training_device)
        self.archive: Dataset | None = None

    # ------------------------------------------------------------------
    # Cost modeling
    # ------------------------------------------------------------------
    def _forward_ops_split(self, freeze_depth: int) -> tuple[float, float]:
        """(total forward ops, trainable forward ops) per full-size image."""
        total = float(self.cost_spec.total_ops)
        frozen_names = set(CONV_LAYER_NAMES[:freeze_depth])
        frozen = sum(
            s.ops for s in self.cost_spec.layers if s.name in frozen_names
        )
        return total, total - float(frozen)

    def modeled_update_cost(
        self, images: int, epochs: int, freeze_depth: int
    ) -> tuple[float, float]:
        """Titan-X (seconds, joules) for an update of this size."""
        total, trainable = self._forward_ops_split(freeze_depth)
        seconds = self.cost_model.training_time_s(
            images=images,
            epochs=epochs,
            forward_ops=total,
            trainable_forward_ops=trainable,
        )
        return seconds, self.cost_model.training_energy_j(seconds)

    # ------------------------------------------------------------------
    # The three Cloud jobs
    # ------------------------------------------------------------------
    def unsupervised_pretrain(
        self,
        raw: Dataset,
        *,
        epochs: int = 4,
        batch_size: int = 32,
        lr: float = 0.01,
    ) -> float:
        """Pre-train the context network on unlabeled data.

        Returns the final permutation accuracy — the paper shows inference
        accuracy is proportional to it (Fig. 5).
        """
        sampler = JigsawSampler(self.permset, rng=self.rng)
        result = pretrain(
            self.context_net,
            raw.images,
            sampler,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            rng=self.rng,
        )
        return result.final_accuracy

    def initialize_inference(
        self,
        labeled: Dataset,
        *,
        epochs: int = 8,
        batch_size: int = 32,
        lr: float = 0.01,
        eval_data: Dataset | None = None,
        use_transfer: bool = True,
    ) -> TrainResult:
        """Transfer-learn the initial inference model on limited labels.

        The labeled data is retained in the Cloud archive — it seeds the
        replay pool later incremental updates draw from.
        """
        if use_transfer:
            transfer_conv_weights(
                self.context_net.trunk, self.inference_net, self.shared_depth
            )
        result = train_classifier(
            self.inference_net,
            labeled,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            rng=self.rng,
            eval_data=eval_data,
        )
        self.archive = (
            labeled
            if self.archive is None
            else Dataset.concat([self.archive, labeled])
        )
        return result

    def incremental_update(
        self,
        uploaded: Dataset,
        *,
        weight_shared: bool,
        epochs: int = 3,
        batch_size: int = 32,
        lr: float = 0.01,
        eval_data: Dataset | None = None,
        replay_fraction: float = 1.0,
    ) -> CloudUpdateReport:
        """Fine-tune the inference model on newly uploaded data.

        ``weight_shared`` is the In-situ AI optimization: lock the shared
        conv layers so only the last conv layers and the FCN head retrain.

        The Cloud mixes a replay sample from its archive of previously
        uploaded images (``replay_fraction`` of the new batch's size) into
        each update — the archive already lives in the Cloud, so replay
        costs no extra data movement, only training compute (which the
        modeled cost includes).
        """
        if len(uploaded) == 0:
            raise ValueError("incremental update needs uploaded data")
        if replay_fraction < 0:
            raise ValueError("replay_fraction must be >= 0")
        freeze_depth = self.shared_depth if weight_shared else 0
        plan = FreezePlan(freeze_depth)
        train_set = uploaded
        if self.archive is not None and replay_fraction > 0:
            count = min(
                len(self.archive), int(round(replay_fraction * len(uploaded)))
            )
            if count:
                idx = self.rng.choice(len(self.archive), size=count, replace=False)
                train_set = Dataset.concat(
                    [uploaded, self.archive.subset(idx)]
                )
        self.archive = (
            uploaded
            if self.archive is None
            else Dataset.concat([self.archive, uploaded])
        )
        distilling = (
            self.distill_weight > 0
            and self.exemplar_buffer is not None
            and len(self.exemplar_buffer) > 0
        )
        if distilling:
            # Mix every retained exemplar into the update and hold the
            # student near the pre-update teacher on softened outputs —
            # the class-incremental forgetting guard.
            train_set = Dataset.concat(
                [train_set, self.exemplar_buffer.data]
            )
            teacher = self._teacher_net()
            teacher.load_state_dict(self.inference_net.state_dict())
            result = distill_classifier(
                self.inference_net,
                train_set,
                teacher=teacher,
                distill_weight=self.distill_weight,
                temperature=self.distill_temperature,
                epochs=epochs,
                batch_size=batch_size,
                lr=lr,
                rng=self.rng,
                eval_data=eval_data,
                freeze_plan=plan,
            )
        else:
            result = train_classifier(
                self.inference_net,
                train_set,
                epochs=epochs,
                batch_size=batch_size,
                lr=lr,
                rng=self.rng,
                eval_data=eval_data,
                freeze_plan=plan,
            )
        if self.exemplar_buffer is not None:
            self.exemplar_buffer.add(uploaded)
        modeled_s, modeled_j = self.modeled_update_cost(
            len(train_set), epochs, freeze_depth
        )
        return CloudUpdateReport(
            images_used=len(uploaded),
            epochs=epochs,
            wall_time_s=result.wall_time_s,
            modeled_time_s=modeled_s,
            modeled_energy_j=modeled_j,
            train_result=result,
        )

    def guarded_update(
        self,
        uploaded: Dataset,
        guard,
        *,
        weight_shared: bool,
        registry=None,
        **kwargs,
    ) -> tuple[CloudUpdateReport, "GuardDecision"]:
        """Incremental update with an acceptance test and optional registry.

        Runs :meth:`incremental_update`, then asks the
        :class:`~repro.core.registry.UpdateGuard` whether the new model may
        ship.  On rejection the weights roll back to the pre-update state;
        on acceptance the new state is published to ``registry`` (when
        given) and becomes what :meth:`model_state` returns.
        """
        previous = self.inference_net.state_dict()
        report = self.incremental_update(
            uploaded, weight_shared=weight_shared, **kwargs
        )
        decision = guard.check(self.inference_net, previous)
        if decision.accepted and registry is not None:
            registry.publish(
                self.inference_net.state_dict(),
                {"images": report.images_used, "epochs": report.epochs},
            )
        return report, decision

    def model_state(self) -> dict[str, np.ndarray]:
        """State dict to push down to the node."""
        return self.inference_net.state_dict()

    def _teacher_net(self) -> Sequential:
        """Scratch network reused as the frozen distillation teacher.

        Built lazily with a fixed seed; its initialization weights are
        irrelevant because every use overwrites them via
        ``load_state_dict`` before predicting.
        """
        if self._teacher is None:
            self._teacher = build_classifier(
                self.num_classes,
                np.random.default_rng(0),
                width=self.width,
                hidden=self.hidden,
            )
        return self._teacher
