"""End-to-end incremental-update simulation (Table II and Fig. 25).

Replays the paper's evaluation protocol: an initial model is trained on the
first acquisition stage, then the archive grows stage by stage
(100k -> 200k -> 400k -> 800k -> 1200k, scaled) and each IoT system variant
updates its model per its own policy.  Every variant sees *identical* data
and starts from *identical* initial weights so the differences are pure
policy.

Per stage and per system the simulation records data movement, modeled
Cloud update time/energy (Titan-X costing of the full-size network), node
transfer energy, and measured accuracy of the actually-trained IoT-scale
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES, WIFI, NetworkLink
from repro.comm.movement import DataMovementLedger
from repro.core.cloud import InSituCloud
from repro.core.systems import SYSTEMS, SystemConfig
from repro.data.cache import dataset_cache
from repro.data.datasets import Dataset, make_dataset
from repro.data.drift import DriftModel
from repro.data.images import ImageGenerator
from repro.data.stream import PAPER_SCHEDULE_K, AcquisitionStage, IoTStream
from repro.diagnosis.diagnoser import (
    InferenceConfidenceDiagnoser,
    JigsawDiagnoser,
    OracleDiagnoser,
)
from repro.models.layer_specs import NetworkSpec, alexnet_spec
from repro.nn.config import default_dtype
from repro.selfsup.jigsaw import JigsawSampler
from repro.selfsup.permutations import PermutationSet
from repro.transfer.finetune import evaluate

__all__ = [
    "Scenario",
    "StageRecord",
    "SystemRunResult",
    "ScenarioAssets",
    "prepare_assets",
    "run_system",
    "run_all_systems",
]


@dataclass(frozen=True)
class Scenario:
    """Everything needed to reproduce one end-to-end experiment."""

    num_classes: int = 6
    image_size: int = 48
    width: float = 1.0
    hidden: int = 128
    stream_scale: float = 0.4
    schedule_k: tuple[int, ...] = PAPER_SCHEDULE_K
    severities: tuple[float, ...] | None = None
    pretrain_images: int = 300
    pretrain_epochs: int = 4
    init_epochs: int = 8
    update_epochs: int = 3
    batch_size: int = 32
    init_lr: float = 0.01
    update_lr: float = 0.008
    eval_images: int = 200
    eval_severity: float = 0.45
    num_perms: int = 12
    shared_depth: int = 3
    diagnoser_kind: str = "oracle"  # "oracle" | "confidence" | "jigsaw"
    confidence_threshold: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.diagnoser_kind not in ("oracle", "confidence", "jigsaw"):
            raise ValueError(f"unknown diagnoser {self.diagnoser_kind!r}")


@dataclass
class ScenarioAssets:
    """Shared, pre-generated inputs every system run consumes."""

    scenario: Scenario
    generator: ImageGenerator
    stages: list[AcquisitionStage]
    pretrain_data: Dataset
    eval_data: Dataset
    permset: PermutationSet
    cost_spec: NetworkSpec


@dataclass(frozen=True)
class StageRecord:
    """One system's bookkeeping for one update stage."""

    stage_index: int
    cumulative_count: int
    acquired: int
    uploaded: int
    trained_on: int
    accuracy_before: float
    accuracy_after: float
    modeled_update_time_s: float
    modeled_cloud_energy_j: float
    transfer_energy_j: float
    wall_time_s: float


@dataclass
class SystemRunResult:
    """Full trajectory of one IoT system variant over the schedule."""

    config: SystemConfig
    stages: list[StageRecord] = field(default_factory=list)
    ledger: DataMovementLedger = field(
        default_factory=lambda: DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    )

    @property
    def normalized_movement(self) -> list[float]:
        """Table II row for this system (per-stage upload fraction)."""
        return self.ledger.normalized_per_stage()

    @property
    def total_update_time_s(self) -> float:
        return sum(s.modeled_update_time_s for s in self.stages)

    @property
    def total_cloud_energy_j(self) -> float:
        return sum(s.modeled_cloud_energy_j for s in self.stages)

    @property
    def total_transfer_energy_j(self) -> float:
        return sum(s.transfer_energy_j for s in self.stages)

    @property
    def total_energy_j(self) -> float:
        return self.total_cloud_energy_j + self.total_transfer_energy_j

    @property
    def final_accuracy(self) -> float:
        return self.stages[-1].accuracy_after if self.stages else 0.0


def _data_cache_key(scenario: Scenario) -> tuple:
    """Every scenario field :func:`_generate_scenario_data` reads.

    Training hyperparameters (epochs, lrs, widths, diagnoser settings) are
    deliberately absent: scenarios differing only in those share one cache
    entry.  The framework default dtype is included because datasets cast
    to it on construction.
    """
    return (
        "core-assets",
        scenario.seed,
        scenario.image_size,
        scenario.num_classes,
        scenario.stream_scale,
        scenario.schedule_k,
        scenario.severities,
        scenario.pretrain_images,
        scenario.eval_images,
        scenario.eval_severity,
        scenario.num_perms,
        np.dtype(default_dtype()).str,
    )


def _generate_scenario_data(scenario: Scenario) -> dict:
    """The dataset-generation segment of :func:`prepare_assets`.

    Self-contained: consumes only the RNG it builds from ``scenario.seed``.
    The generator's end-of-segment stream position rides along in
    ``rng_state`` so a cache hit restores it exactly.
    """
    rng = np.random.default_rng(scenario.seed)
    generator = ImageGenerator(
        scenario.image_size, scenario.num_classes, rng=rng
    )
    stream = IoTStream(
        generator,
        scale=scenario.stream_scale,
        schedule_k=scenario.schedule_k,
        severities=scenario.severities,
        rng=rng,
    )
    stages = stream.stages()
    pretrain_data = Dataset.concat(
        [s.new_data for s in stages[: max(1, len(stages) // 2)]]
    ).take(scenario.pretrain_images)
    eval_data = make_dataset(
        scenario.eval_images,
        generator=generator,
        drift=DriftModel(scenario.eval_severity, rng=rng),
        rng=rng,
    )
    permset = PermutationSet.generate(scenario.num_perms, rng=rng)
    return {
        "stages": stages,
        "pretrain_data": pretrain_data,
        "eval_data": eval_data,
        "permset": permset,
        "rng_state": rng.bit_generator.state,
    }


def prepare_assets(scenario: Scenario) -> ScenarioAssets:
    """Generate (or fetch from the seed-keyed cache) a scenario's data.

    Cache hits are bit-identical to a fresh generation — including the
    position of the returned generator's RNG stream — so downstream runs
    cannot tell whether the data was regenerated or replayed.
    """
    data = dataset_cache.get_or_build(
        _data_cache_key(scenario), lambda: _generate_scenario_data(scenario)
    )
    rng = np.random.default_rng(scenario.seed)
    rng.bit_generator.state = data["rng_state"]
    generator = ImageGenerator(
        scenario.image_size, scenario.num_classes, rng=rng
    )
    return ScenarioAssets(
        scenario=scenario,
        generator=generator,
        stages=data["stages"],
        pretrain_data=data["pretrain_data"].as_unlabeled(),
        eval_data=data["eval_data"],
        permset=data["permset"],
        cost_spec=alexnet_spec(),
    )


def _build_cloud(assets: ScenarioAssets) -> InSituCloud:
    s = assets.scenario
    return InSituCloud(
        s.num_classes,
        assets.permset,
        cost_spec=assets.cost_spec,
        shared_depth=s.shared_depth,
        width=s.width,
        hidden=s.hidden,
        rng=np.random.default_rng(s.seed + 1),
    )


def _make_diagnoser(cloud: InSituCloud, assets: ScenarioAssets):
    s = assets.scenario
    if s.diagnoser_kind == "oracle":
        return OracleDiagnoser(cloud.inference_net)
    if s.diagnoser_kind == "confidence":
        return InferenceConfidenceDiagnoser(
            cloud.inference_net, threshold=s.confidence_threshold
        )
    sampler = JigsawSampler(
        assets.permset, rng=np.random.default_rng(s.seed + 2)
    )
    return JigsawDiagnoser(
        cloud.context_net,
        sampler,
        trials=2,
        rng=np.random.default_rng(s.seed + 3),
    )


def run_system(
    config: SystemConfig,
    assets: ScenarioAssets,
    *,
    link: NetworkLink = WIFI,
    pretrained_trunk_state: dict | None = None,
    initial_inference_state: dict | None = None,
) -> SystemRunResult:
    """Replay the whole schedule for one system variant.

    ``pretrained_trunk_state`` and ``initial_inference_state`` let the
    caller share the unsupervised pre-training and the (policy-identical)
    stage-0 initialization across all four systems; pass None to compute
    them inside this run.
    """
    s = assets.scenario
    cloud = _build_cloud(assets)
    if pretrained_trunk_state is not None:
        cloud.context_net.load_state_dict(pretrained_trunk_state)
    else:
        cloud.unsupervised_pretrain(
            assets.pretrain_data,
            epochs=s.pretrain_epochs,
            batch_size=s.batch_size,
        )

    result = SystemRunResult(config=config)
    diagnoser = _make_diagnoser(cloud, assets)

    for stage in assets.stages:
        data = stage.new_data
        acc_before = evaluate(cloud.inference_net, data)
        is_initial = stage.index == 0

        # --- selection -------------------------------------------------
        if is_initial or config.diagnosis_location == "none":
            selected = data
        else:
            flags = diagnoser.flags(data)
            selected = data.subset(np.flatnonzero(flags))

        # --- movement --------------------------------------------------
        uploaded_count = (
            len(data)
            if (is_initial or config.uploads_everything)
            else len(selected)
        )
        result.ledger.record(stage.index, len(data), uploaded_count)
        transfer_j = link.image_upload_energy_j(uploaded_count)

        # --- cloud update ----------------------------------------------
        if is_initial:
            if initial_inference_state is not None:
                cloud.inference_net.load_state_dict(initial_inference_state)
                wall = 0.0
            else:
                init = cloud.initialize_inference(
                    data,
                    epochs=s.init_epochs,
                    batch_size=s.batch_size,
                    lr=s.init_lr,
                )
                wall = init.wall_time_s
            modeled_s, modeled_j = cloud.modeled_update_cost(
                len(data), s.init_epochs, freeze_depth=0
            )
            trained_on = len(data)
            cloud.archive = data  # stage-0 data seeds the Cloud archive
        elif len(selected) == 0:
            modeled_s = modeled_j = wall = 0.0
            trained_on = 0
        else:
            report = cloud.incremental_update(
                selected,
                weight_shared=config.weight_shared,
                epochs=s.update_epochs,
                batch_size=s.batch_size,
                lr=s.update_lr,
            )
            modeled_s = report.modeled_time_s
            modeled_j = report.modeled_energy_j
            wall = report.wall_time_s
            trained_on = len(selected)

        # Cloud-side diagnosis (system b) pays an inference pass over all
        # uploaded data to find the valuable subset.
        if config.diagnosis_location == "cloud" and not is_initial:
            scan_s = (
                len(data)
                * assets.cost_spec.total_ops
                / cloud.cost_model.sustained_ops
            )
            modeled_s += scan_s
            modeled_j += cloud.cost_model.training_energy_j(scan_s)

        acc_after = evaluate(cloud.inference_net, assets.eval_data)
        result.stages.append(
            StageRecord(
                stage_index=stage.index,
                cumulative_count=stage.cumulative_count,
                acquired=len(data),
                uploaded=uploaded_count,
                trained_on=trained_on,
                accuracy_before=acc_before,
                accuracy_after=acc_after,
                modeled_update_time_s=modeled_s,
                modeled_cloud_energy_j=modeled_j,
                transfer_energy_j=transfer_j,
                wall_time_s=wall,
            )
        )
    return result


def run_all_systems(
    scenario: Scenario, *, link: NetworkLink = WIFI
) -> dict[str, SystemRunResult]:
    """Run every Fig. 24 variant on identical data and initial weights."""
    assets = prepare_assets(scenario)
    # Share the unsupervised pre-training and the stage-0 initialization:
    # both are policy-identical across the four systems.
    seed_cloud = _build_cloud(assets)
    seed_cloud.unsupervised_pretrain(
        assets.pretrain_data,
        epochs=scenario.pretrain_epochs,
        batch_size=scenario.batch_size,
    )
    trunk_state = seed_cloud.context_net.state_dict()
    seed_cloud.initialize_inference(
        assets.stages[0].new_data,
        epochs=scenario.init_epochs,
        batch_size=scenario.batch_size,
        lr=scenario.init_lr,
    )
    initial_state = seed_cloud.model_state()
    return {
        config.system_id: run_system(
            config,
            assets,
            link=link,
            pretrained_trunk_state=trunk_state,
            initial_inference_state=initial_state,
        )
        for config in SYSTEMS
    }
