"""In-situ AI core: node, cloud, working-mode planners, system variants."""

from repro.core.cloud import CloudUpdateReport, InSituCloud
from repro.core.costing import (
    FPGACoRunningCost,
    GPUSingleRunningCost,
    TaskCost,
)
from repro.core.modes import (
    CoRunningPlanner,
    SingleRunningConfig,
    SingleRunningPlanner,
    select_mode,
)
from repro.core.node import InSituNode, NodeReport
from repro.core.registry import (
    GuardDecision,
    ModelRegistry,
    ModelVersion,
    UpdateGuard,
)
from repro.core.simulation import (
    Scenario,
    ScenarioAssets,
    StageRecord,
    SystemRunResult,
    prepare_assets,
    run_all_systems,
    run_system,
)
from repro.core.systems import SYSTEMS, SystemConfig, system_by_id

__all__ = [
    "CloudUpdateReport",
    "CoRunningPlanner",
    "FPGACoRunningCost",
    "GPUSingleRunningCost",
    "GuardDecision",
    "InSituCloud",
    "InSituNode",
    "ModelRegistry",
    "ModelVersion",
    "NodeReport",
    "TaskCost",
    "UpdateGuard",
    "SYSTEMS",
    "Scenario",
    "ScenarioAssets",
    "SingleRunningConfig",
    "SingleRunningPlanner",
    "StageRecord",
    "SystemConfig",
    "SystemRunResult",
    "prepare_assets",
    "run_all_systems",
    "run_system",
    "select_mode",
    "system_by_id",
]
