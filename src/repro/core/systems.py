"""The four deep-learning IoT system variants of Fig. 24.

All four share the unsupervised-pretraining Cloud; they differ in *where*
diagnosis runs and *whether* transfer learning exploits weight sharing:

====  ==========================  ==================  ===============
id    name                        diagnosis location  weight sharing
====  ==========================  ==================  ===============
a     traditional                 none (upload all)   no
b     cloud-diagnosis             cloud               no
c     node-diagnosis              node                no
d     In-situ AI (this paper)     node                yes (CONV-3)
====  ==========================  ==================  ===============

System *a* uploads and trains on everything.  System *b* still uploads
everything but the Cloud trains only on the valuable subset.  System *c*
moves diagnosis to the node, cutting uploads.  System *d* additionally
freezes the shared conv layers during updates, cutting Cloud work again.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemConfig", "SYSTEMS", "system_by_id"]


@dataclass(frozen=True)
class SystemConfig:
    """Policy knobs distinguishing the Fig. 24 variants."""

    system_id: str
    name: str
    diagnosis_location: str  # "none" | "cloud" | "node"
    weight_shared: bool

    def __post_init__(self) -> None:
        if self.diagnosis_location not in ("none", "cloud", "node"):
            raise ValueError(
                f"bad diagnosis location {self.diagnosis_location!r}"
            )

    @property
    def uploads_everything(self) -> bool:
        """Systems without node diagnosis must ship all raw data up."""
        return self.diagnosis_location != "node"

    @property
    def trains_on_valuable_only(self) -> bool:
        return self.diagnosis_location != "none"


SYSTEMS: tuple[SystemConfig, ...] = (
    SystemConfig("a", "traditional", "none", weight_shared=False),
    SystemConfig("b", "cloud-diagnosis", "cloud", weight_shared=False),
    SystemConfig("c", "node-diagnosis", "node", weight_shared=False),
    SystemConfig("d", "in-situ-ai", "node", weight_shared=True),
)


def system_by_id(system_id: str) -> SystemConfig:
    for config in SYSTEMS:
        if config.system_id == system_id:
            return config
    raise KeyError(
        f"unknown system {system_id!r}; available: "
        f"{[c.system_id for c in SYSTEMS]}"
    )
