"""The In-situ AI node: co-located inference and diagnosis tasks.

The node wraps a deployed inference network and a diagnoser, processes each
acquisition stage locally, and decides what to upload.  Timing and energy of
the node's work are modeled against the full-size network specs on the
configured device (the trainable IoT-scale network provides the *decisions*;
the layer-shape specs provide the *costs*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.core.costing import GPUSingleRunningCost, TaskCost
from repro.data.datasets import Dataset
from repro.data.stream import AcquisitionStage
from repro.diagnosis.diagnoser import Diagnoser
from repro.hw.specs import GPUSpec
from repro.models.layer_specs import NetworkSpec
from repro.nn import Sequential
from repro.transfer.finetune import evaluate

__all__ = ["NodeReport", "InSituNode"]


@dataclass(frozen=True)
class NodeReport:
    """What happened at the node during one acquisition stage."""

    stage_index: int
    acquired_images: int
    flagged_images: int
    accuracy_before_update: float
    inference_time_s: float
    diagnosis_time_s: float
    node_energy_j: float
    upload_data: Dataset
    image_bytes: int = JPEG_IMAGE_BYTES

    @property
    def flagged_fraction(self) -> float:
        if self.acquired_images == 0:
            return 0.0
        return self.flagged_images / self.acquired_images

    @property
    def upload_bytes(self) -> int:
        """Bytes the upload set puts on the uplink."""
        return len(self.upload_data) * self.image_bytes


class InSituNode:
    """An edge node running the inference and diagnosis tasks.

    Parameters
    ----------
    inference_net:
        The deployed trainable classifier (IoT scale).
    diagnoser:
        Flags unrecognized samples for upload; None disables on-node
        diagnosis (traditional IoT systems upload everything).
    inference_spec / diagnosis_spec:
        Full-size layer-shape specs used to model time and energy.
    gpu:
        The node device (Single-running mode costing).
    inference_batch / diagnosis_batch:
        Batch sizes chosen by the mode planner.
    costing:
        Optional cost model overriding the default
        :class:`GPUSingleRunningCost` — pass
        :class:`~repro.core.costing.FPGACoRunningCost` for Co-running
        deployments.
    """

    def __init__(
        self,
        inference_net: Sequential,
        diagnoser: Diagnoser | None,
        *,
        inference_spec: NetworkSpec,
        diagnosis_spec: NetworkSpec,
        gpu: GPUSpec,
        inference_batch: int = 4,
        diagnosis_batch: int = 32,
        num_patches: int = 9,
        costing=None,
        image_bytes: int = JPEG_IMAGE_BYTES,
    ) -> None:
        self.inference_net = inference_net
        self.diagnoser = diagnoser
        self.inference_spec = inference_spec
        self.diagnosis_spec = diagnosis_spec
        self.gpu = gpu
        self.inference_batch = inference_batch
        self.diagnosis_batch = diagnosis_batch
        self.num_patches = num_patches
        self.image_bytes = image_bytes
        self.costing = (
            costing
            if costing is not None
            else GPUSingleRunningCost(
                inference_spec,
                diagnosis_spec,
                gpu,
                inference_batch=inference_batch,
                diagnosis_batch=diagnosis_batch,
                num_patches=num_patches,
            )
        )

    def deploy(self, state: dict[str, np.ndarray]) -> None:
        """Install an updated model pushed down from the Cloud."""
        self.inference_net.load_state_dict(state)

    def process_stage(self, stage: AcquisitionStage) -> NodeReport:
        """Run inference + diagnosis over a stage's new data.

        Returns the report including the upload set: everything when no
        diagnoser is deployed (Fig. 24 a/b), only flagged samples otherwise
        (Fig. 24 c/d).
        """
        data = stage.new_data
        accuracy = evaluate(self.inference_net, data)
        if self.diagnoser is None:
            flags = np.ones(len(data), dtype=bool)
        else:
            flags = self.diagnoser.flags(data)
        upload = data.subset(np.flatnonzero(flags))
        inference = self.costing.inference_cost(len(data))
        diagnosis = (
            self.costing.diagnosis_cost(len(data))
            if self.diagnoser is not None
            else TaskCost(0.0, 0.0)
        )
        return NodeReport(
            stage_index=stage.index,
            acquired_images=len(data),
            flagged_images=int(flags.sum()),
            accuracy_before_update=accuracy,
            inference_time_s=inference.seconds,
            diagnosis_time_s=diagnosis.seconds,
            node_energy_j=inference.joules + diagnosis.joules,
            upload_data=upload,
            image_bytes=self.image_bytes,
        )
