"""Model versioning and guarded updates.

An autonomous system that continually retrains itself needs a safety net:
an incremental update trained on a skewed upload batch can regress the
deployed model, and nobody is watching.  This module provides

* :class:`ModelRegistry` — versioned storage of model state dicts with an
  *active* pointer, supporting publish and rollback; the node always
  deploys the active version.
* :class:`UpdateGuard` — an acceptance test for updates: the candidate
  model must not lose more than ``max_regression`` accuracy on a held-out
  validation set relative to the active model, otherwise the update is
  rejected and the weights roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import Dataset
from repro.nn import Sequential
from repro.transfer.finetune import evaluate

__all__ = ["ModelVersion", "ModelRegistry", "GuardDecision", "UpdateGuard"]


@dataclass(frozen=True)
class ModelVersion:
    """One published model version.

    ``track`` separates model lineages sharing one version counter: the
    fleet-wide model lives on ``"main"``, while per-node-group
    specializations (scenario head processes) publish on side tracks like
    ``"head-0"`` without ever becoming the fleet-wide active model.
    """

    version: int
    state: dict[str, np.ndarray]
    metadata: dict
    track: str = "main"


class ModelRegistry:
    """Versioned model store with an active pointer."""

    def __init__(self) -> None:
        self._versions: list[ModelVersion] = []
        self._active_index: int | None = None

    def __len__(self) -> int:
        return len(self._versions)

    def publish(
        self,
        state: dict[str, np.ndarray],
        metadata: dict | None = None,
        *,
        track: str = "main",
        activate: bool | None = None,
    ) -> ModelVersion:
        """Store a new version; by default only ``main`` becomes active.

        ``activate=None`` keeps the historical contract for the main
        track (publish-and-activate) while side-track versions are
        recorded without moving the active pointer.
        """
        entry = ModelVersion(
            version=len(self._versions) + 1,
            state={k: v.copy() for k, v in state.items()},
            metadata=dict(metadata or {}),
            track=track,
        )
        self._versions.append(entry)
        if activate is None:
            activate = track == "main"
        if activate:
            self._active_index = len(self._versions) - 1
        return entry

    @property
    def active(self) -> ModelVersion:
        if self._active_index is None:
            raise LookupError("registry is empty")
        return self._versions[self._active_index]

    def get(self, version: int) -> ModelVersion:
        for entry in self._versions:
            if entry.version == version:
                return entry
        raise KeyError(f"no version {version}")

    def rollback(self) -> ModelVersion:
        """Point 'active' at the previous version *of the same track*.

        Side-track versions interleaved with main publishes are skipped:
        rolling back the fleet-wide model must never activate a
        node-group head.  History is kept either way.
        """
        if self._active_index is None or self._active_index == 0:
            raise LookupError("nothing to roll back to")
        track = self._versions[self._active_index].track
        idx = self._active_index - 1
        while idx >= 0 and self._versions[idx].track != track:
            idx -= 1
        if idx < 0:
            raise LookupError("nothing to roll back to")
        self._active_index = idx
        return self.active

    def activate(self, version: int) -> ModelVersion:
        for i, entry in enumerate(self._versions):
            if entry.version == version:
                self._active_index = i
                return entry
        raise KeyError(f"no version {version}")

    def history(self) -> list[int]:
        return [entry.version for entry in self._versions]

    def versions(self, track: str | None = None) -> list[ModelVersion]:
        """All versions, optionally restricted to one track."""
        if track is None:
            return list(self._versions)
        return [entry for entry in self._versions if entry.track == track]

    def latest(self, track: str) -> ModelVersion | None:
        """Most recent version on ``track``, or None if none published."""
        entries = self.versions(track)
        return entries[-1] if entries else None

    def tracks(self) -> list[str]:
        """Sorted distinct track names with at least one version."""
        return sorted({entry.track for entry in self._versions})


@dataclass(frozen=True)
class GuardDecision:
    """Outcome of an update acceptance test."""

    accepted: bool
    accuracy_before: float
    accuracy_after: float

    @property
    def delta(self) -> float:
        return self.accuracy_after - self.accuracy_before


@dataclass
class UpdateGuard:
    """Accept an update only if it does not regress on validation data.

    ``max_regression`` is the tolerated accuracy drop (small positive
    values allow noise-level dips; 0 demands monotone improvement).
    """

    validation_data: Dataset
    max_regression: float = 0.02
    decisions: list[GuardDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.validation_data) == 0:
            raise ValueError("guard needs a non-empty validation set")
        if self.max_regression < 0:
            raise ValueError("max_regression must be >= 0")

    def check(
        self,
        net: Sequential,
        previous_state: dict[str, np.ndarray],
    ) -> GuardDecision:
        """Evaluate the updated ``net`` against its previous weights.

        On rejection, ``net`` is restored to ``previous_state`` in place.
        """
        after = evaluate(net, self.validation_data)
        current_state = net.state_dict()
        net.load_state_dict(previous_state)
        before = evaluate(net, self.validation_data)
        accepted = after >= before - self.max_regression
        if accepted:
            net.load_state_dict(current_state)
        decision = GuardDecision(
            accepted=accepted, accuracy_before=before, accuracy_after=after
        )
        self.decisions.append(decision)
        return decision

    @property
    def rejection_count(self) -> int:
        return sum(1 for d in self.decisions if not d.accepted)
