"""Working-mode planners (Section IV-B).

Two deployment modes for the In-situ AI node:

* **Single-running** (GPU, e.g. the camera only runs in daytime): inference
  and diagnosis time-share the TX1.  The planner picks the inference batch
  size with the analytical time model (max batch under the latency
  requirement, Eqs. 5-8 — maximizing energy efficiency) and the diagnosis
  batch size with the memory resource model (Eq. 9).
* **Co-running** (FPGA, 24/7 inference): both tasks run simultaneously on
  the VX690T using the WSS-NWS pipeline; the planner solves Eq. (13)/(14)
  for the throughput-maximal batch size and DSP split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import max_batch_under_memory, network_time, perf_per_watt
from repro.hw.pipeline import PipelineTiming, best_design
from repro.hw.specs import FPGASpec, GPUSpec
from repro.models.layer_specs import NetworkSpec

__all__ = [
    "SingleRunningConfig",
    "SingleRunningPlanner",
    "CoRunningPlanner",
    "select_mode",
]


def select_mode(inference_always_on: bool) -> str:
    """Pick the working mode from the deployment requirement.

    The characterization (Section IV-A2) concluded: GPU wins on energy
    efficiency when tasks can time-share (Single-running); FPGA wins when
    they must co-run, because GPU co-running interference inflates
    inference latency up to 3X.
    """
    return "co-running" if inference_always_on else "single-running"


@dataclass(frozen=True)
class SingleRunningConfig:
    """Planner output for the Single-running mode."""

    inference_batch: int
    inference_latency_s: float
    inference_perf_per_watt: float
    diagnosis_batch: int


class SingleRunningPlanner:
    """Analytical-model-guided configuration for the GPU node."""

    def __init__(self, gpu: GPUSpec) -> None:
        self.gpu = gpu

    def inference_batch(
        self,
        network: NetworkSpec,
        *,
        latency_requirement_s: float,
        max_batch: int = 256,
    ) -> int:
        """Largest batch whose modeled latency meets the requirement.

        Energy efficiency improves monotonically with batch size in the
        model (Fig. 11), so the optimum is the largest feasible batch.
        """
        if latency_requirement_s <= 0:
            raise ValueError("latency requirement must be positive")
        best = 0
        for batch in range(1, max_batch + 1):
            if network_time(network, self.gpu, batch).total_s > latency_requirement_s:
                break
            best = batch
        if best == 0:
            raise ValueError(
                f"{network.name} cannot meet "
                f"{latency_requirement_s * 1e3:.1f} ms on {self.gpu.name}"
            )
        return best

    def diagnosis_batch(self, network: NetworkSpec, *, max_batch: int = 4096) -> int:
        """Largest diagnosis batch that fits in device memory (Eq. 9)."""
        return max_batch_under_memory(network, self.gpu, limit=max_batch)

    def plan(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        *,
        latency_requirement_s: float,
    ) -> SingleRunningConfig:
        batch = self.inference_batch(
            inference, latency_requirement_s=latency_requirement_s
        )
        return SingleRunningConfig(
            inference_batch=batch,
            inference_latency_s=network_time(
                inference, self.gpu, batch
            ).total_s,
            inference_perf_per_watt=perf_per_watt(inference, self.gpu, batch),
            diagnosis_batch=self.diagnosis_batch(diagnosis),
        )


class CoRunningPlanner:
    """Analytical-model-guided configuration for the FPGA node."""

    def __init__(self, fpga: FPGASpec, *, arch_name: str = "WSS-NWS") -> None:
        self.fpga = fpga
        self.arch_name = arch_name

    def plan(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        *,
        latency_requirement_s: float,
        shared_depth: int = 3,
    ) -> PipelineTiming:
        """Best pipeline design under the user latency requirement (Eq. 14)."""
        timing = best_design(
            self.arch_name,
            inference,
            diagnosis,
            self.fpga,
            latency_requirement_s=latency_requirement_s,
            shared_depth=shared_depth,
        )
        if timing is None:
            raise ValueError(
                f"{self.arch_name} cannot meet "
                f"{latency_requirement_s * 1e3:.1f} ms on {self.fpga.name}"
            )
        return timing
