"""Entry point for ``python -m repro``.

Subcommands: ``lint`` routes to the static contract checker
(:mod:`repro.lint`); ``obs`` to the trace summarizer/converter
(:mod:`repro.obs.cli`); ``scenario`` to the YAML scenario engine
(:mod:`repro.scenario.cli`); everything else is an experiment name
handled by the report runner (:mod:`repro.reports.cli`).
"""

import sys


def main() -> int:
    argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "scenario":
        from repro.scenario.cli import main as scenario_main

        return scenario_main(argv[1:])
    from repro.reports.cli import main as reports_main

    return reports_main(argv)


if __name__ == "__main__":
    sys.exit(main())
