"""Shared-uplink contention model for fleet simulation.

``comm.link.NetworkLink`` models one node alone on its radio.  A fleet
shares backhaul: when many nodes upload flagged data in the same stage the
aggregate capacity is split between them, and every transfer stretches.

Both views of that contention run on the same engine — the dynamic
max-min fluid flows of :class:`repro.events.FlowLink`:

* :meth:`SharedUplink.transfer_times` is the **lockstep** view: every
  stage's transfers start at virtual time zero on a throwaway kernel and
  the per-flow completion times come back as plain floats (the steady-
  state behavior of per-flow fair queuing at the bottleneck).
* :meth:`SharedUplink.open` is the **dynamic** view: it binds the same
  capacity to a live simulator so flows join and leave mid-transfer as
  the asynchronous fleet produces them, rates recomputed at every
  arrival/completion event.

Energy stays per-byte at each node's radio (the existing
:class:`~repro.comm.link.NetworkLink` model): contention stretches *time*,
not bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.link import NetworkLink
from repro.events import FlowLink, Simulator

__all__ = ["Transfer", "SharedUplink", "model_state_bytes"]


def model_state_bytes(state: dict[str, np.ndarray]) -> int:
    """Wire size of a model state dict (raw parameter bytes)."""
    return int(sum(v.nbytes for v in state.values()))


@dataclass(frozen=True)
class Transfer:
    """One node's transfer demand through the shared link."""

    node_id: int
    link: NetworkLink
    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")


class SharedUplink:
    """Aggregate link capacity shared by concurrent transfers.

    Parameters
    ----------
    capacity_bps:
        Bottleneck bandwidth in bits/s, shared by every concurrent flow.
        Individual flows are additionally capped by their own access
        link's bandwidth.
    """

    def __init__(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bps = capacity_bps

    def open(
        self, sim: Simulator, *, downlink: bool = False, metrics=None
    ) -> FlowLink:
        """Bind a dynamic-flow view of this backhaul to an event kernel.

        The asynchronous fleet opens one :class:`FlowLink` per direction
        (the backhaul is modeled symmetric, each direction at full
        capacity); per-flow caps come from each node's access link —
        ``bandwidth_bps`` upstream, ``downlink_bps`` for model pushes.
        ``metrics`` threads an optional registry into the link so flow
        counts, queue depth, and throughput are recorded per direction.
        """
        return FlowLink(
            sim,
            self.capacity_bps,
            metrics=metrics,
            name="downlink" if downlink else "uplink",
        )

    def transfer_times(self, transfers: list[Transfer]) -> list[float]:
        """Per-transfer completion times for concurrent flows.

        All transfers start at virtual time zero; each flow's finish time
        includes its own access-link latency.  Zero-byte transfers finish
        instantly and consume no capacity.  An empty transfer list is a
        legal no-op.
        """
        if not transfers:
            return []
        sim = Simulator()
        link = self.open(sim)
        events = [
            link.transfer(
                t.num_bytes,
                t.link.bandwidth_bps,
                latency_s=t.link.latency_s,
                tag=t.node_id,
            )
            for t in transfers
        ]
        sim.run()
        return [ev.value.done_s for ev in events]

    def stage_upload_times(
        self, transfers: list[Transfer]
    ) -> tuple[list[float], float]:
        """(per-node upload time, stage makespan) for one stage's uploads."""
        times = self.transfer_times(transfers)
        return times, max(times, default=0.0)

    def solo_time(self, transfer: Transfer) -> float:
        """Completion time if the transfer had the backhaul to itself."""
        if transfer.num_bytes == 0:
            return 0.0
        rate = min(transfer.link.bandwidth_bps, self.capacity_bps)
        return transfer.link.latency_s + transfer.num_bytes * 8.0 / rate

    def push_times(
        self, links: list[NetworkLink], model_bytes: int
    ) -> list[float]:
        """Concurrent model push-down to many nodes over the same backhaul.

        The downlink shares the same bottleneck capacity (symmetric
        backhaul), so a fleet-wide rollout is itself a contended event.
        """
        transfers = [
            Transfer(node_id=i, link=link, num_bytes=model_bytes)
            for i, link in enumerate(links)
        ]
        return self.transfer_times(transfers)
