"""Shared-uplink contention model for fleet simulation.

``comm.link.NetworkLink`` models one node alone on its radio.  A fleet
shares backhaul: when many nodes upload flagged data in the same stage the
aggregate capacity is split between them, and every transfer stretches.
:class:`SharedUplink` runs a fluid-flow simulation in virtual time —
max-min fair rate allocation (each flow capped by its own access link),
advanced completion-to-completion — which is exactly the steady-state
behavior of per-flow fair queuing at the bottleneck.

Energy stays per-byte at each node's radio (the existing
:class:`~repro.comm.link.NetworkLink` model): contention stretches *time*,
not bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.link import NetworkLink

__all__ = ["Transfer", "SharedUplink", "model_state_bytes"]


def model_state_bytes(state: dict[str, np.ndarray]) -> int:
    """Wire size of a model state dict (raw parameter bytes)."""
    return int(sum(v.nbytes for v in state.values()))


@dataclass(frozen=True)
class Transfer:
    """One node's transfer demand through the shared link."""

    node_id: int
    link: NetworkLink
    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")


def _fair_rates(caps: list[float], capacity: float) -> list[float]:
    """Max-min fair allocation of ``capacity`` across flows with rate caps.

    Progressive filling: flows whose cap is below the equal share keep
    their cap; the leftover is re-split among the rest.
    """
    rates = [0.0] * len(caps)
    remaining = capacity
    active = list(range(len(caps)))
    while active:
        share = remaining / len(active)
        bottlenecked = [i for i in active if caps[i] <= share]
        if not bottlenecked:
            for i in active:
                rates[i] = share
            break
        for i in bottlenecked:
            rates[i] = caps[i]
            remaining -= caps[i]
        active = [i for i in active if caps[i] > share]
    return rates


class SharedUplink:
    """Aggregate link capacity shared by concurrent transfers.

    Parameters
    ----------
    capacity_bps:
        Bottleneck bandwidth in bits/s, shared by every concurrent flow.
        Individual flows are additionally capped by their own access
        link's bandwidth.
    """

    def __init__(self, capacity_bps: float) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bps = capacity_bps

    def transfer_times(self, transfers: list[Transfer]) -> list[float]:
        """Per-transfer completion times for concurrent flows.

        All transfers start at virtual time zero; each flow's finish time
        includes its own access-link latency.  Zero-byte transfers finish
        instantly and consume no capacity.
        """
        remaining = [t.num_bytes * 8.0 for t in transfers]  # bits
        done = [0.0] * len(transfers)
        active = [i for i in range(len(transfers)) if remaining[i] > 0]
        now = 0.0
        while active:
            caps = [transfers[i].link.bandwidth_bps for i in active]
            rates = _fair_rates(caps, self.capacity_bps)
            # Advance to the next flow completion at these rates.
            dt = min(
                remaining[i] / r for i, r in zip(active, rates) if r > 0
            )
            now += dt
            still = []
            for i, r in zip(active, rates):
                remaining[i] -= r * dt
                if remaining[i] <= 1e-9:
                    done[i] = now + transfers[i].link.latency_s
                else:
                    still.append(i)
            active = still
        return done

    def stage_upload_times(
        self, transfers: list[Transfer]
    ) -> tuple[list[float], float]:
        """(per-node upload time, stage makespan) for one stage's uploads."""
        times = self.transfer_times(transfers)
        return times, max(times, default=0.0)

    def solo_time(self, transfer: Transfer) -> float:
        """Completion time if the transfer had the backhaul to itself."""
        if transfer.num_bytes == 0:
            return 0.0
        rate = min(transfer.link.bandwidth_bps, self.capacity_bps)
        return transfer.link.latency_s + transfer.num_bytes * 8.0 / rate

    def push_times(
        self, links: list[NetworkLink], model_bytes: int
    ) -> list[float]:
        """Concurrent model push-down to many nodes over the same backhaul.

        The downlink shares the same bottleneck capacity (symmetric
        backhaul), so a fleet-wide rollout is itself a contended event.
        """
        transfers = [
            Transfer(node_id=i, link=link, num_bytes=model_bytes)
            for i, link in enumerate(links)
        ]
        return self.transfer_times(transfers)
