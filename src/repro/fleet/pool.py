"""Persistent shared-memory worker runtime for lockstep fleet engines.

The PR-3 spawn pool made ``workers=N`` *correct* but slow: every
``run_fleet`` call booted a fresh pool whose initializer re-pickled the
full :class:`~repro.fleet.simulation.FleetAssets`, and every per-(node,
stage) task shipped a pickled model state dict both ways.  On the
``BENCH_hotpath.json`` workloads that overhead made parallel a strict
pessimization (0.17x at n=4).

:class:`FleetWorkerPool` replaces that with a runtime created **once per
run** and reused across stages, engines, and system variants:

* **Assets segment** — the pickled ``FleetAssets`` lives in one
  :mod:`multiprocessing.shared_memory` segment; workers unpickle it once
  at init instead of receiving it per pool (and per variant).
* **Weights block** — a slot-based (double-buffered by default) shared
  block holds the active model states.  The parent :meth:`publish`-es a
  state dict once per *change* (publication is interned on object
  identity, so re-publishing the registry's active state is free) and
  tasks carry only a small integer *generation*.  Workers map the slot's
  arrays straight out of shared memory — no per-task weight pickling in
  either direction.
* **Chunked dispatch** — :meth:`run_stage` groups a stage's node items
  into one contiguous chunk per worker, amortizing executor round trips
  from O(nodes) to O(workers) per stage.
* **Per-variant worker runtimes** — workers build (and cache) one
  :class:`~repro.fleet.simulation.FleetRuntime` per ``system_id``, so
  ``run_fleet_all_systems`` reuses a single pool for all four variants.

Determinism contract: task results are keyed by node index and merged in
fixed node order by the engines, and all diagnosis randomness is
reseeded per ``(node, stage)`` inside the worker — so any worker count,
any chunking, and any task placement produce bit-identical reports and
trace bytes (``tests/fleet/test_pool.py`` pins this on the flat,
topology, and scenario lockstep paths).

Cleanup contract: :meth:`shutdown` (idempotent, also run by
``__exit__`` and a GC finalizer) cancels queued futures, stops the
workers, and closes **and unlinks** both segments — no shared-memory
segment survives a ``run_fleet`` call, whether it returns or raises.
``_ACTIVE_SEGMENTS`` tracks live segment names so tests can assert
leak-freedom.

This module is the only place in ``src/repro`` allowed to construct
``ProcessPoolExecutor`` or ``SharedMemory`` objects (lint rule RPR012):
one seam keeps the lifecycle auditable.
"""

from __future__ import annotations

import multiprocessing
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["FleetWorkerPool", "PoolStateError", "PoolTask"]


#: Names of shared-memory segments created by live pools.  Shutdown
#: removes names as it unlinks; the leak test asserts this is empty
#: after every ``run_fleet`` (normal exit and raised exception alike).
_ACTIVE_SEGMENTS: set[str] = set()

#: Slot-header alignment: each slot's payload starts on a cache line.
_ALIGN = 64


class PoolStateError(RuntimeError):
    """A published weights generation was evicted before its tasks ran.

    Raised when more distinct model states were published between
    barriers than the pool has ``state_slots`` for — size the pool for
    the engine's per-stage state diversity (the scenario engine passes
    ``head groups + 2``).
    """


@dataclass(frozen=True)
class _StateLayout:
    """Byte layout of one model state dict inside the weights block.

    All states a pool ships must share this layout (same parameter
    names, shapes, and dtypes in the same order — true for every state
    of one model architecture).  States that do not match are shipped
    inline in the task as a pickled fallback instead.
    """

    names: tuple[str, ...]
    shapes: tuple[tuple[int, ...], ...]
    dtypes: tuple[str, ...]
    offsets: tuple[int, ...]
    slot_nbytes: int

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "_StateLayout":
        names, shapes, dtypes, offsets = [], [], [], []
        cursor = 0
        for name, value in state.items():
            names.append(name)
            shapes.append(tuple(int(d) for d in value.shape))
            dtypes.append(value.dtype.str)
            offsets.append(cursor)
            cursor += int(value.nbytes)
        slot = -(-max(cursor, 1) // _ALIGN) * _ALIGN
        return cls(
            names=tuple(names),
            shapes=tuple(shapes),
            dtypes=tuple(dtypes),
            offsets=tuple(offsets),
            slot_nbytes=slot,
        )

    def matches(self, state: dict[str, np.ndarray]) -> bool:
        if tuple(state) != self.names:
            return False
        for name, shape, dtype in zip(self.names, self.shapes, self.dtypes):
            value = state[name]
            if tuple(value.shape) != shape or value.dtype.str != dtype:
                return False
        return True

    def write(self, buf: memoryview, base: int, state: dict) -> None:
        for name, shape, dtype, off in zip(
            self.names, self.shapes, self.dtypes, self.offsets
        ):
            dst = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf, offset=base + off
            )
            np.copyto(dst, state[name], casting="no")

    def read(self, buf: memoryview, base: int) -> dict[str, np.ndarray]:
        """Zero-copy views into the slot (consumers copy on load)."""
        return {
            name: np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=buf, offset=base + off
            )
            for name, shape, dtype, off in zip(
                self.names, self.shapes, self.dtypes, self.offsets
            )
        }


@dataclass(frozen=True)
class PoolTask:
    """One node's share of a stage dispatch.

    ``state`` is either an ``int`` generation from
    :meth:`FleetWorkerPool.publish` (the fast shared-memory path) or a
    raw state dict (the pickled fallback for layout-mismatched states).
    ``trace_t0``/``tier``/``extra`` mirror the serial engines' calls to
    ``_node_stage_records`` so worker-built trace records are
    byte-identical to serial ones.
    """

    node_index: int
    state: int | dict
    trace_t0: float | None = None
    tier: str | None = None
    extra: dict | None = None


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs."""
    chunks = max(1, min(chunks, len(items)))
    size, rem = divmod(len(items), chunks)
    out, start = [], 0
    for k in range(chunks):
        stop = start + size + (1 if k < rem else 0)
        out.append(items[start:stop])
        start = stop
    return out


class FleetWorkerPool:
    """Persistent process pool with shared-memory assets and weights.

    Create once per run (``run_fleet`` does this when handed
    ``workers > 1`` without a pool; ``run_fleet_all_systems`` and the
    scenario engine create one explicitly and reuse it), then
    :meth:`publish` each model state and :meth:`run_stage` every stage's
    node items.  Always :meth:`shutdown` — engines do so in ``finally``,
    so segments are unlinked even when a stage raises.
    """

    def __init__(
        self,
        assets,
        workers: int,
        *,
        state_slots: int = 2,
    ) -> None:
        if workers < 2:
            raise ValueError("FleetWorkerPool needs workers >= 2")
        if state_slots < 2:
            raise ValueError("state_slots must be >= 2 (double buffer)")
        self.assets = assets
        self.workers = int(workers)
        self._layout = _StateLayout.from_state(assets.initial_state)
        self._slots = int(state_slots)
        self._gen = 0
        self._slot_gen = [0] * self._slots
        #: id(state) -> (state, generation); strong refs pin object ids.
        self._interned: dict[int, tuple[object, int]] = {}
        self._shutdown_done = False

        payload = pickle.dumps(assets, protocol=pickle.HIGHEST_PROTOCOL)
        self._assets_shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        _ACTIVE_SEGMENTS.add(self._assets_shm.name)
        self._assets_shm.buf[: len(payload)] = payload

        header = self._slots * 8  # one int64 generation per slot
        self._data_base = -(-header // _ALIGN) * _ALIGN
        weights_size = self._data_base + self._slots * self._layout.slot_nbytes
        self._weights_shm = shared_memory.SharedMemory(
            create=True, size=weights_size
        )
        _ACTIVE_SEGMENTS.add(self._weights_shm.name)
        self._header = np.ndarray(
            (self._slots,), dtype=np.int64, buffer=self._weights_shm.buf
        )
        self._header[:] = 0

        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_pool_worker_init,
            initargs=(
                self._assets_shm.name,
                len(payload),
                self._weights_shm.name,
                self._layout,
                self._slots,
                self._data_base,
            ),
        )
        # Belt and braces: a pool the caller forgot to shut down still
        # unlinks its segments when garbage-collected (engines do call
        # shutdown() in ``finally`` — this only covers misuse).
        self._finalizer = weakref.finalize(
            self,
            _finalize_pool,
            self._executor,
            self._assets_shm,
            self._weights_shm,
        )

    # -- parent-side state publication ---------------------------------
    def publish(self, state: dict[str, np.ndarray]) -> int | dict:
        """Intern ``state`` into the weights block; return its task ref.

        Returns the generation ``int`` tasks should carry.  Publishing
        the same dict *object* again returns the same generation without
        touching shared memory.  A state whose layout differs from the
        pool template is returned unchanged — the task then ships it
        inline (pickled), trading speed for correctness.
        """
        cached = self._interned.get(id(state))
        if cached is not None and cached[0] is state:
            return cached[1]
        if not self._layout.matches(state):
            return state
        self._gen += 1
        gen = self._gen
        slot = gen % self._slots
        # Drop interned entries evicted by this slot reuse.
        for key in [
            k for k, (_, g) in self._interned.items() if g % self._slots == slot
        ]:
            del self._interned[key]
        base = self._data_base + slot * self._layout.slot_nbytes
        self._header[slot] = 0  # invalidate while the payload is in flux
        self._layout.write(self._weights_shm.buf, base, state)
        self._header[slot] = gen
        self._slot_gen[slot] = gen
        self._interned[id(state)] = (state, gen)
        return gen

    # -- parent-side dispatch ------------------------------------------
    def run_stage(
        self, system_id: str, stage_index: int, tasks: list[PoolTask]
    ) -> dict[int, tuple]:
        """Run one stage's node tasks; results keyed by node index.

        Tasks are submitted as contiguous per-worker chunks; each future
        returns its chunk's ``(node_index, NodeReport, records)`` list.
        The caller iterates node indices in fixed order, so merge order
        never depends on completion order.
        """
        if not tasks:
            return {}
        for task in tasks:
            if isinstance(task.state, int) and (
                self._slot_gen[task.state % self._slots] != task.state
            ):
                raise PoolStateError(
                    f"generation {task.state} was evicted (pool has "
                    f"{self._slots} state slots); raise state_slots to "
                    "cover this engine's distinct states per stage"
                )
        futures = [
            self._executor.submit(_pool_worker_chunk, system_id, stage_index, chunk)
            for chunk in _chunked(tasks, self.workers)
        ]
        merged: dict[int, tuple] = {}
        for future in futures:
            for node_index, node_report, records in future.result():
                merged[node_index] = (node_report, records)
        return merged

    # -- lifecycle ------------------------------------------------------
    def shutdown(self) -> None:
        """Stop workers and unlink both segments.  Idempotent.

        ``cancel_futures=True`` drops queued chunks so a mid-stage
        exception tears the pool down instead of hanging on the backlog.
        """
        if self._shutdown_done:
            return
        self._shutdown_done = True
        self._finalizer.detach()
        self._executor.shutdown(wait=True, cancel_futures=True)
        self._header = None  # release the exported buffer view
        for shm in (self._assets_shm, self._weights_shm):
            _unlink_segment(shm)

    def __enter__(self) -> "FleetWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    finally:
        _ACTIVE_SEGMENTS.discard(shm.name)


def _finalize_pool(executor, assets_shm, weights_shm) -> None:
    executor.shutdown(wait=False, cancel_futures=True)
    for shm in (assets_shm, weights_shm):
        try:
            _unlink_segment(shm)
        except Exception:  # already unlinked, or views still exported
            pass


# ----------------------------------------------------------------------
# Worker-process side.  One module-level dict per worker, filled by the
# initializer and reused by every chunk task.
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment.

    Spawned workers inherit the parent's resource-tracker process, so
    the registration performed by attaching is an idempotent set-add on
    the name the parent already registered at create time; the parent's
    ``unlink()`` is the single deregistration.  (Worker-side
    ``unregister`` would strip the shared entry and leave the parent's
    own deregistration dangling.)
    """
    return shared_memory.SharedMemory(name=name)


def _pool_worker_init(
    assets_name: str,
    assets_len: int,
    weights_name: str,
    layout: _StateLayout,
    slots: int,
    data_base: int,
) -> None:
    assets_shm = _attach_segment(assets_name)
    assets = pickle.loads(assets_shm.buf[:assets_len])
    assets_shm.close()
    _WORKER.update(
        # repro-lint: ignore[RPR014] deliberate worker-local cache: filled
        # once per process in the initializer, never read by the parent;
        # chunk results flow back through return values only
        assets=assets,
        weights=_attach_segment(weights_name),
        layout=layout,
        slots=slots,
        data_base=data_base,
        runtimes={},  # system_id -> FleetRuntime
        loaded={},  # system_id -> generation currently in deployed_net
    )


def _worker_runtime(system_id: str):
    runtime = _WORKER["runtimes"].get(system_id)
    if runtime is None:
        from repro.core.systems import system_by_id
        from repro.fleet.simulation import build_fleet_runtime

        runtime = build_fleet_runtime(system_by_id(system_id), _WORKER["assets"])
        _WORKER["runtimes"][system_id] = (
            runtime  # repro-lint: ignore[RPR014] worker-local memo: rebuilt
            # deterministically from shared-memory assets in any process
        )
    return runtime


def _load_state(runtime, system_id: str, state: int | dict) -> None:
    """Point the worker's deployed net at the task's model state.

    Generations are immutable once written, so a net already holding the
    requested generation skips the load entirely — the common case for
    every node after the first in a chunk.
    """
    if isinstance(state, int):
        if _WORKER["loaded"].get(system_id) == state:
            return
        slots, layout = _WORKER["slots"], _WORKER["layout"]
        weights = _WORKER["weights"]
        slot = state % slots
        header = np.ndarray((slots,), dtype=np.int64, buffer=weights.buf)
        if int(header[slot]) != state:
            raise PoolStateError(
                f"worker saw stale slot for generation {state}"
            )
        base = _WORKER["data_base"] + slot * layout.slot_nbytes
        runtime.deployed_net.load_state_dict(layout.read(weights.buf, base))
        _WORKER["loaded"][system_id] = (
            state  # repro-lint: ignore[RPR014] worker-local generation tag:
            # tracks what this process's net holds, parent never reads it
        )
    else:
        runtime.deployed_net.load_state_dict(state)
        _WORKER["loaded"][system_id] = (
            None  # repro-lint: ignore[RPR014] worker-local generation tag:
            # explicit dicts bypass the slot cache, so mark state unknown
        )


def _pool_worker_chunk(
    system_id: str, stage_index: int, tasks: list[PoolTask]
) -> list[tuple]:
    """Run a contiguous chunk of one stage's node tasks in this worker."""
    from repro.fleet.simulation import _node_stage_records, reseed_diagnoser

    runtime = _worker_runtime(system_id)
    assets = _WORKER["assets"]
    out = []
    for task in tasks:
        _load_state(runtime, system_id, task.state)
        node = runtime.nodes[task.node_index]
        profile = assets.profiles[task.node_index]
        reseed_diagnoser(
            node.diagnoser,
            assets.scenario.base.seed,
            profile.node_id,
            stage_index,
        )
        node_report = node.process_stage(
            assets.node_stages[task.node_index][stage_index]
        )
        records = (
            _node_stage_records(
                node_report,
                stage_index=stage_index,
                node_id=profile.node_id,
                system_id=system_id,
                t0=task.trace_t0,
                tier=task.tier,
                extra=task.extra,
            )
            if task.trace_t0 is not None
            else None
        )
        out.append((task.node_index, node_report, records))
    return out
