"""Asynchronous, event-driven fleet simulation on the ``repro.events`` kernel.

The lockstep :func:`~repro.fleet.simulation.run_fleet` advances all nodes
in stages: every node waits at a barrier until the slowest upload lands
and the Cloud finishes retraining.  The paper's system is not like that —
each node flags and uploads on its own schedule while the Cloud retrains
and pushes updates concurrently.  This module simulates exactly that in
virtual time:

* every node is a kernel **process** looping acquisition epochs (sense ->
  infer/diagnose -> upload) at its own pace;
* uploads are **dynamic flows** on the shared backhaul
  (:class:`~repro.events.FlowLink`): flows join and leave mid-transfer and
  the max-min fair rates are recomputed at every arrival/completion;
* the Cloud is a process that pools arrivals, retrains in virtual time,
  and pushes canary/fleet rollouts down the (symmetric) backhaul as flows
  — all while fast nodes keep inferring and uploading.

Two reference behaviors anchor the model:

* ``barrier=True`` re-inserts the epoch barrier, reproducing the lockstep
  trajectories on the event kernel (the regression tests compare the two);
* ``horizon_s`` bounds the run in virtual time instead of epoch count:
  nodes cycle their acquisition schedule until the horizon, so a WiFi
  node completes strictly more epochs than an LTE neighbor — the
  behavior the lockstep barrier structurally hides.

Determinism: everything runs on the deterministic kernel and all
randomness derives from the scenario seed, so a given (assets, config,
mode) always produces the identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.comm.movement import DataMovementLedger
from repro.core.registry import ModelRegistry
from repro.core.systems import SystemConfig
from repro.data.datasets import Dataset
from repro.events import Simulator, Store
from repro.fleet.profiles import FleetScenario, NodeProfile
from repro.fleet.scheduler import RolloutResult
from repro.fleet.simulation import (
    CloudStageOutcome,
    FleetAssets,
    FleetReport,
    FleetRuntime,
    build_fleet_runtime,
    cloud_initialize,
    cloud_try_update,
    reseed_diagnoser,
    rollback_attrs,
)
from repro.fleet.uplink import SharedUplink
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.transfer.finetune import evaluate

__all__ = [
    "EpochRecord",
    "NodeEventTrajectory",
    "CloudUpdateRecord",
    "FleetEventReport",
    "LockstepTimeline",
    "lockstep_timeline",
    "run_fleet_event",
]


@dataclass(frozen=True)
class EpochRecord:
    """One completed acquisition epoch at one node (event mode)."""

    epoch: int
    stage_index: int  # index into the node's pre-generated stage list
    node_id: int
    start_s: float
    acquired: int
    uploaded: int
    accuracy_on_new: float
    compute_time_s: float
    upload_start_s: float
    upload_done_s: float  # flow completion, access latency included
    upload_bytes: int
    upload_energy_j: float
    node_compute_energy_j: float

    @property
    def upload_wait_s(self) -> float:
        """Time the node sat blocked on the uplink for this epoch."""
        return self.upload_done_s - self.upload_start_s


@dataclass
class NodeEventTrajectory:
    """Everything one node experienced over an event-driven run."""

    profile: NodeProfile
    records: list[EpochRecord] = field(default_factory=list)
    ledger: DataMovementLedger = field(
        default_factory=lambda: DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    )
    download_bytes: int = 0
    download_energy_j: float = 0.0
    finish_s: float = 0.0

    @property
    def epochs_completed(self) -> int:
        return len(self.records)

    @property
    def blocked_on_uplink_s(self) -> float:
        return sum(r.upload_wait_s for r in self.records)

    @property
    def accuracy_trajectory(self) -> list[float]:
        return [r.accuracy_on_new for r in self.records]

    @property
    def total_upload_energy_j(self) -> float:
        return sum(r.upload_energy_j for r in self.records)


@dataclass(frozen=True)
class CloudUpdateRecord:
    """One Cloud-side update (initialization or guarded rollout)."""

    kind: str  # "init" | "rollout"
    trigger_s: float
    complete_s: float
    pooled_for_training: int
    promoted: bool
    modeled_time_s: float
    modeled_energy_j: float
    eval_accuracy: float


@dataclass
class FleetEventReport:
    """Full outcome of one event-driven fleet run."""

    config: SystemConfig
    scenario: FleetScenario
    mode: str  # "event" | "event-barrier"
    horizon_s: float | None
    nodes: list[NodeEventTrajectory] = field(default_factory=list)
    updates: list[CloudUpdateRecord] = field(default_factory=list)
    rollouts: list[RolloutResult] = field(default_factory=list)
    registry: ModelRegistry = field(default_factory=ModelRegistry)
    ledger: DataMovementLedger = field(
        default_factory=lambda: DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    )
    makespan_s: float = 0.0
    final_eval_accuracy: float = 0.0
    #: hierarchical runs only: the executed repro.topology.Topology, the
    #: per-flush WAN records, and any images still parked at gateways
    #: when the run ended.  Flat runs leave all three at their defaults.
    topology: object | None = None
    gateway_flushes: list = field(default_factory=list)
    gateway_leftover_images: dict[int, int] = field(default_factory=dict)

    @property
    def total_uploaded_bytes(self) -> int:
        return self.ledger.total_uploaded_bytes

    @property
    def total_downloaded_bytes(self) -> int:
        return self.ledger.total_downloaded_bytes

    @property
    def total_bytes_moved(self) -> int:
        return self.ledger.total_bytes_moved

    @property
    def total_update_time_s(self) -> float:
        return sum(u.modeled_time_s for u in self.updates)

    @property
    def total_cloud_energy_j(self) -> float:
        return sum(u.modeled_energy_j for u in self.updates)

    @property
    def epochs_by_node(self) -> dict[int, int]:
        return {t.profile.node_id: t.epochs_completed for t in self.nodes}


class _Arrival:
    """One node's upload, delivered to the Cloud when its flow completes."""

    __slots__ = ("node_id", "epoch", "stage_index", "data", "accuracy")

    def __init__(self, node_id, epoch, stage_index, data, accuracy):
        self.node_id = node_id
        self.epoch = epoch
        self.stage_index = stage_index
        self.data = data
        self.accuracy = accuracy


class _EventFleet:
    """Shared state of one event-driven fleet run."""

    def __init__(
        self,
        config: SystemConfig,
        assets: FleetAssets,
        *,
        horizon_s: float | None,
        barrier: bool,
        acquire_time_s: float,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if horizon_s is not None and horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if acquire_time_s < 0:
            raise ValueError("acquire_time_s must be >= 0")
        self.assets = assets
        self.scenario = assets.scenario
        self.base = self.scenario.base
        self.config = config
        self.horizon_s = horizon_s
        self.barrier = barrier
        self.acquire_time_s = acquire_time_s
        self.profiles = assets.profiles
        self.all_node_ids = tuple(p.node_id for p in self.profiles)
        self.index_of = {p.node_id: i for i, p in enumerate(self.profiles)}
        # A disabled Tracer instead of None keeps every emit site a plain
        # call; spans are stamped with the kernel clock, so the stream is
        # as deterministic as the report itself.
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics

        self.sim = Simulator()
        backhaul = SharedUplink(self.scenario.backhaul_bps)
        self.uplink = backhaul.open(self.sim, metrics=metrics)
        self.downlink = backhaul.open(self.sim, downlink=True, metrics=metrics)
        self.arrivals = Store(self.sim)

        self.runtime: FleetRuntime = self._make_runtime(config, assets)
        self.report = FleetEventReport(
            config=config,
            scenario=self.scenario,
            mode="event-barrier" if barrier else "event",
            horizon_s=horizon_s,
            registry=self.runtime.registry,
        )
        self.report.nodes = [NodeEventTrajectory(profile=p) for p in self.profiles]

        # Per-node deployed model versions: nodes may transiently run
        # different states (canaries, in-flight pushes) in event mode.
        self.node_states = [assets.initial_state] * len(self.profiles)
        self.last_accuracy: dict[int, float] = {}
        self.last_data: dict[int, Dataset] = {
            p.node_id: assets.node_stages[i][0].new_data
            for i, p in enumerate(self.profiles)
        }
        self._round_events: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Override points for hierarchical topologies
    # ------------------------------------------------------------------
    def _make_runtime(
        self, config: SystemConfig, assets: FleetAssets
    ) -> FleetRuntime:
        """Build the shared runtime; subclasses may override canary scope."""
        return build_fleet_runtime(config, assets, metrics=self.metrics)

    def _canary_ids(self) -> tuple[int, ...]:
        """Node ids whose fresh data validates candidate models."""
        return self.assets.canary_ids

    def _transport(
        self, i: int, profile, stage, epoch: int, upload_data, count: int,
        node_report,
    ):
        """Move one epoch's upload off the node and deliver it cloudward.

        The flat fleet rides the shared backhaul straight to the Cloud's
        arrival store; the topology subclass rides the local hop to the
        node's gateway instead.  Returns ``(upload_start_s, upload_done_s,
        upload_energy_j)`` for the node's epoch record.
        """
        upload_start = self.sim.now
        yield self.uplink.transfer(
            count * JPEG_IMAGE_BYTES,
            profile.link.bandwidth_bps,
            latency_s=profile.link.latency_s,
            tag=profile.node_id,
        )
        upload_done = self.sim.now
        if count:
            self.tracer.span(
                "net",
                "upload",
                upload_start,
                upload_done,
                node=profile.node_id,
                stage=stage.index,
                epoch=epoch,
                system=self.config.system_id,
                bytes=count * JPEG_IMAGE_BYTES,
            )
        self.arrivals.put(
            _Arrival(
                profile.node_id,
                epoch,
                stage.index,
                upload_data,
                node_report.accuracy_before_update,
            )
        )
        return (
            upload_start,
            upload_done,
            profile.link.image_upload_energy_j(count),
        )

    def _collect_round(self, round_index: int):
        """Gather one barrier round's arrivals plus the fleet accuracy."""
        arrivals = yield from self._collect(len(self.profiles))
        accuracy = float(np.mean([a.accuracy for a in arrivals]))
        return arrivals, accuracy

    def _spawn_processes(self) -> None:
        for i in range(len(self.profiles)):
            self.sim.process(self._node_proc(i))
        self.sim.process(
            self._cloud_barrier() if self.barrier else self._cloud_async()
        )

    # ------------------------------------------------------------------
    # Node processes
    # ------------------------------------------------------------------
    def _node_proc(self, i: int):
        profile = self.profiles[i]
        stages = self.assets.node_stages[i]
        trajectory = self.report.nodes[i]
        epoch = 0
        while True:
            if not self.barrier:
                # Barrier mode delegates continuation to the Cloud so all
                # nodes stop on the same round.
                if self.horizon_s is not None:
                    if self.sim.now >= self.horizon_s:
                        break
                elif epoch >= len(stages):
                    break
            stage = stages[epoch % len(stages)]
            outcome = yield from self._node_epoch_body(i, profile, stage, epoch)
            (
                start,
                node_report,
                compute_s,
                count,
                upload_start,
                upload_done,
                upload_energy,
            ) = outcome
            if self.barrier:
                # An epoch only commits once the fleet-wide round closes:
                # a horizon that freezes the fleet mid-round must not
                # count the fast nodes' half-finished round.
                keep_going = yield self._round_event(epoch)
            trajectory.records.append(
                EpochRecord(
                    epoch=epoch,
                    stage_index=stage.index,
                    node_id=profile.node_id,
                    start_s=start,
                    acquired=node_report.acquired_images,
                    uploaded=count,
                    accuracy_on_new=node_report.accuracy_before_update,
                    compute_time_s=compute_s,
                    upload_start_s=upload_start,
                    upload_done_s=upload_done,
                    upload_bytes=count * JPEG_IMAGE_BYTES,
                    upload_energy_j=upload_energy,
                    node_compute_energy_j=node_report.node_energy_j,
                )
            )
            trajectory.ledger.record(
                epoch, node_report.acquired_images, count
            )
            self.report.ledger.record(
                epoch, node_report.acquired_images, count
            )
            if self.barrier and not keep_going:
                break
            epoch += 1
        trajectory.finish_s = self.sim.now

    def _node_epoch_body(self, i: int, profile, stage, epoch: int):
        """One node epoch minus round commit: sense, compute, upload.

        Extracted so scenario subclasses (stage-indexed loops, churn,
        reconciliation) replay the exact same per-epoch sequence the flat
        engine runs — bit-identical compute, trace, and transport — while
        owning their own outer loop.  Returns ``(start, node_report,
        compute_s, count, upload_start, upload_done, upload_energy)``.
        """
        start = self.sim.now
        if self.acquire_time_s > 0:
            # Sensing window: images trickle in before processing.
            yield self.sim.timeout(len(stage.new_data) * self.acquire_time_s)
        # Inference + diagnosis against the node's *current* version.
        self.runtime.deployed_net.load_state_dict(self.node_states[i])
        reseed_diagnoser(
            self.runtime.nodes[i].diagnoser,
            self.base.seed,
            profile.node_id,
            stage.index,
        )
        node_report = self.runtime.nodes[i].process_stage(stage)
        compute_s = (
            node_report.inference_time_s + node_report.diagnosis_time_s
        )
        compute_start = self.sim.now
        yield self.sim.timeout(compute_s)
        self.tracer.span(
            "node",
            "compute",
            compute_start,
            self.sim.now,
            node=profile.node_id,
            stage=stage.index,
            epoch=epoch,
            system=self.config.system_id,
            inference_s=node_report.inference_time_s,
            diagnosis_s=node_report.diagnosis_time_s,
        )
        self.tracer.event(
            "node",
            "diagnosis",
            self.sim.now,
            node=profile.node_id,
            stage=stage.index,
            epoch=epoch,
            system=self.config.system_id,
            acquired=node_report.acquired_images,
            flagged=node_report.flagged_images,
        )
        # Epoch 0 is the initialization upload for every system; after
        # that, diagnosis-based systems ship only the flagged subset.
        if epoch == 0 or self.config.uploads_everything:
            upload_data = stage.new_data
            count = node_report.acquired_images
        else:
            upload_data = node_report.upload_data
            count = len(upload_data)
        upload_start, upload_done, upload_energy = yield from (
            self._transport(
                i, profile, stage, epoch, upload_data, count, node_report
            )
        )
        m = self.metrics
        if m is not None:
            sys_id = self.config.system_id
            m.counter("fleet.epochs", system=sys_id).inc()
            m.counter("fleet.images.acquired", system=sys_id).inc(
                node_report.acquired_images
            )
            m.counter("fleet.images.flagged", system=sys_id).inc(
                node_report.flagged_images
            )
            m.counter("fleet.images.uploaded", system=sys_id).inc(count)
            m.histogram("fleet.upload_time_s", system=sys_id).observe(
                upload_done - upload_start
            )
        self.last_accuracy[profile.node_id] = (
            node_report.accuracy_before_update
        )
        self.last_data[profile.node_id] = stage.new_data
        return (
            start,
            node_report,
            compute_s,
            count,
            upload_start,
            upload_done,
            upload_energy,
        )

    def _round_event(self, round_index: int):
        ev = self._round_events.get(round_index)
        if ev is None:
            ev = self.sim.event()
            self._round_events[round_index] = ev
        return ev

    # ------------------------------------------------------------------
    # Cloud processes
    # ------------------------------------------------------------------
    def _collect(self, count: int):
        arrivals = []
        for _ in range(count):
            arrival = yield self.arrivals.get()
            arrivals.append(arrival)
        arrivals.sort(key=lambda a: a.node_id)
        return arrivals

    def _record_update(
        self,
        kind: str,
        trigger_s: float,
        outcome: CloudStageOutcome,
        *,
        stage: int,
    ) -> None:
        if self.sim.now > trigger_s:
            self.tracer.span(
                "cloud",
                kind,
                trigger_s,
                self.sim.now,
                stage=stage,
                system=self.config.system_id,
                pooled=outcome.pooled_for_training,
                promoted=outcome.promoted,
            )
        self.tracer.event(
            "cloud",
            "decision",
            self.sim.now,
            stage=stage,
            system=self.config.system_id,
            updated=outcome.updated,
            promoted=outcome.promoted,
            **rollback_attrs(outcome),
        )
        self.report.updates.append(
            CloudUpdateRecord(
                kind=kind,
                trigger_s=trigger_s,
                complete_s=self.sim.now,
                pooled_for_training=outcome.pooled_for_training,
                promoted=outcome.promoted,
                modeled_time_s=outcome.modeled_update_time_s,
                modeled_energy_j=outcome.modeled_cloud_energy_j,
                eval_accuracy=evaluate(
                    self.runtime.cloud.inference_net, self.assets.eval_data
                ),
            )
        )

    def _cloud_async(self):
        """Event-driven Cloud: pool arrivals, retrain, roll out — no barrier."""
        # Initialization waits for every node's first (full) upload, then
        # trains v1 and pushes it fleet-wide — the one synchronization
        # point the paper's protocol itself requires.
        arrivals = yield from self._collect(len(self.profiles))
        trigger = self.sim.now
        outcome = cloud_initialize(
            0,
            [a.data for a in arrivals],
            runtime=self.runtime,
            base=self.base,
            all_node_ids=self.all_node_ids,
        )
        yield self.sim.timeout(outcome.modeled_update_time_s)
        self._record_update("init", trigger, outcome, stage=0)
        yield from self._deliver_outcome(outcome, stage_hint=0)
        while True:
            arrival = yield self.arrivals.get()
            # Drain the whole inbox: uploads landing at the same instant
            # (or while the Cloud was busy) pool into one trigger check,
            # so synchronized fleets retrain once per wave, not per node.
            batch = [arrival]
            while len(self.arrivals):
                batch.append((yield self.arrivals.get()))
            batch.sort(key=lambda a: a.node_id)
            for a in batch:
                self.runtime.scheduler.offer(a.epoch, a.node_id, a.data)
            latest_epoch = max(a.epoch for a in batch)
            # Keep firing while the policy still triggers: uploads that
            # landed during a retrain are pooled and may trigger another.
            while True:
                fleet_accuracy = float(
                    np.mean(list(self.last_accuracy.values()))
                )
                trigger = self.sim.now
                outcome = cloud_try_update(
                    latest_epoch,
                    fleet_accuracy,
                    lambda: Dataset.concat(
                        [self.last_data[c] for c in self._canary_ids()]
                    ),
                    runtime=self.runtime,
                    base=self.base,
                    all_node_ids=self.all_node_ids,
                )
                if outcome.modeled_update_time_s > 0:
                    yield self.sim.timeout(outcome.modeled_update_time_s)
                if not outcome.updated:
                    break
                self._record_update(
                    "rollout", trigger, outcome, stage=latest_epoch
                )
                yield from self._deliver_outcome(
                    outcome, stage_hint=latest_epoch
                )

    def _cloud_barrier(self):
        """Lockstep-reference Cloud: one pooled update per fleet-wide round."""
        num_stages = len(self.assets.node_stages[0])
        round_index = 0
        while True:
            arrivals, fleet_accuracy = yield from self._collect_round(
                round_index
            )
            trigger = self.sim.now
            if round_index == 0:
                outcome = cloud_initialize(
                    0,
                    [a.data for a in arrivals],
                    runtime=self.runtime,
                    base=self.base,
                    all_node_ids=self.all_node_ids,
                )
            else:
                stage_slot = round_index % num_stages
                for a in arrivals:
                    self.runtime.scheduler.offer(a.epoch, a.node_id, a.data)
                outcome = cloud_try_update(
                    round_index,
                    fleet_accuracy,
                    lambda: Dataset.concat(
                        [
                            self.assets.node_stages[self.index_of[c]][
                                stage_slot
                            ].new_data
                            for c in self._canary_ids()
                        ]
                    ),
                    runtime=self.runtime,
                    base=self.base,
                    all_node_ids=self.all_node_ids,
                )
            if outcome.modeled_update_time_s > 0:
                yield self.sim.timeout(outcome.modeled_update_time_s)
            if outcome.updated:
                self._record_update(
                    "init" if round_index == 0 else "rollout",
                    trigger,
                    outcome,
                    stage=round_index,
                )
            yield from self._deliver_outcome(outcome, stage_hint=round_index)
            if self.horizon_s is not None:
                keep_going = self.sim.now < self.horizon_s
            else:
                keep_going = round_index + 1 < num_stages
            self._round_event(round_index).succeed(keep_going)
            if not keep_going:
                return
            round_index += 1

    # ------------------------------------------------------------------
    # Model push-downs as flows
    # ------------------------------------------------------------------
    def _deliver_outcome(self, outcome: CloudStageOutcome, *, stage_hint: int):
        """Push the outcome's model bytes down the backhaul as flows.

        Canary pushes go first (that deployment is the point of a
        canary); the fleet or rollback wave follows once every canary
        flow lands.  Nodes switch to the delivered state only when their
        own flow completes, so slow-link nodes run stale versions longer.
        """
        rollout = outcome.rollout
        if rollout is None:
            pushes = [
                (node_id, num_bytes)
                for node_id, num_bytes in outcome.push_bytes_per_node.items()
                if num_bytes > 0
            ]
            yield from self._push_wave(pushes, stage_hint)
            return
        unit = outcome.push_unit_bytes
        canaries = [
            (e.node_id, unit) for e in rollout.events if e.kind == "canary"
        ]
        followers = [
            (e.node_id, unit) for e in rollout.events if e.kind != "canary"
        ]
        yield from self._push_wave(canaries, stage_hint)
        if followers:
            yield from self._push_wave(followers, stage_hint)

    def _push_wave(self, pushes, stage_hint: int):
        # The registry's active version is what every push carries: the
        # promoted candidate, or the restored version on a rollback.
        state = self.runtime.registry.active.state
        procs = [
            self.sim.process(
                self._push_proc(node_id, num_bytes, state, stage_hint)
            )
            for node_id, num_bytes in pushes
        ]
        for proc in procs:
            yield proc

    def _push_proc(self, node_id: int, num_bytes: int, state, stage_hint: int):
        i = self.index_of[node_id]
        profile = self.profiles[i]
        push_start = self.sim.now
        yield self.downlink.transfer(
            num_bytes,
            profile.link.downlink_bps,
            latency_s=profile.link.latency_s,
            tag=node_id,
        )
        self.tracer.span(
            "net",
            "push",
            push_start,
            self.sim.now,
            node=node_id,
            stage=stage_hint,
            system=self.config.system_id,
            bytes=num_bytes,
        )
        self.node_states[i] = state
        trajectory = self.report.nodes[i]
        trajectory.download_bytes += num_bytes
        trajectory.download_energy_j += profile.link.model_push_energy_j(
            num_bytes
        )
        trajectory.ledger.record_download(stage_hint, num_bytes)
        self.report.ledger.record_download(stage_hint, num_bytes)

    # ------------------------------------------------------------------
    def run(self) -> FleetEventReport:
        self._spawn_processes()
        with obs_metrics.use(self.metrics):
            self.report.makespan_s = self.sim.run(until=self.horizon_s)
        self.report.rollouts = list(self.runtime.scheduler.history)
        self.report.final_eval_accuracy = evaluate(
            self.runtime.cloud.inference_net, self.assets.eval_data
        )
        m = self.metrics
        if m is not None:
            sys_id = self.config.system_id
            snap = self.report.ledger.snapshot()
            m.gauge("fleet.bytes.uploaded", system=sys_id).set(
                snap.uploaded_bytes
            )
            m.gauge("fleet.bytes.downloaded", system=sys_id).set(
                snap.downloaded_bytes
            )
        return self.report


def run_fleet_event(
    config: SystemConfig,
    assets: FleetAssets,
    *,
    horizon_s: float | None = None,
    barrier: bool = False,
    acquire_time_s: float = 0.0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    topology=None,
) -> FleetEventReport:
    """Run one system variant's fleet asynchronously in virtual time.

    Parameters
    ----------
    config, assets:
        Same inputs as :func:`~repro.fleet.simulation.run_fleet`, so the
        two modes run on identical data and initial weights.
    horizon_s:
        Virtual-time budget.  When set, nodes cycle their acquisition
        schedule until the horizon (fast nodes complete more epochs);
        when ``None``, every node runs its schedule exactly once and the
        run ends when the last event drains.
    barrier:
        Re-insert the fleet-wide epoch barrier.  This is the lockstep
        reference mode: with it, the event-driven run reproduces
        :func:`run_fleet`'s accuracy and byte trajectories.
    acquire_time_s:
        Virtual sensing time per acquired image, before processing.
    tracer, metrics:
        Optional observability sinks.  Spans are stamped with the kernel
        clock (``Simulator.now``), so a given (assets, config, mode)
        produces a byte-identical trace stream; both default to off.
    topology:
        A :class:`repro.topology.Topology` interposing gateway processes
        between the nodes and the Cloud; gateway flushes become flows on
        the shared backhaul.  ``None`` and passthrough topologies run
        this exact flat engine, so default trajectories are unchanged.
    """
    if topology is not None:
        topology.validate_for(assets.profiles)
    if topology is not None and not topology.is_passthrough:
        # Imported here: repro.topology imports this module.
        from repro.topology.event import TopologyEventFleet

        engine = TopologyEventFleet(
            config,
            assets,
            topology=topology,
            horizon_s=horizon_s,
            barrier=barrier,
            acquire_time_s=acquire_time_s,
            tracer=tracer,
            metrics=metrics,
        )
        return engine.run()
    engine = _EventFleet(
        config,
        assets,
        horizon_s=horizon_s,
        barrier=barrier,
        acquire_time_s=acquire_time_s,
        tracer=tracer,
        metrics=metrics,
    )
    report = engine.run()
    # A passthrough topology executed the flat path verbatim; still
    # record what was asked for.
    report.topology = topology
    return report


# ----------------------------------------------------------------------
# Lockstep timeline reconstruction (for mode comparisons)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockstepTimeline:
    """Virtual-time account of a lockstep run, for mode comparisons."""

    makespan_s: float
    node_busy_s: dict[int, float]
    node_stall_s: dict[int, float]  # time spent waiting at stage barriers

    @property
    def max_stall_s(self) -> float:
        return max(self.node_stall_s.values(), default=0.0)


def lockstep_timeline(report: FleetReport) -> LockstepTimeline:
    """Reconstruct the barrier timeline a lockstep :class:`FleetReport` implies.

    Each stage spans: slowest node compute, then the contended upload
    makespan, then the Cloud's modeled update time, then the slowest
    model push-down (solo downlink rate — the lockstep run does not model
    downlink contention).  A node's *stall* is the part of each span it
    spent idle at the barrier rather than computing, uploading, or
    receiving its own push — exactly the time the event-driven mode
    reclaims.
    """
    makespan = 0.0
    busy = {t.profile.node_id: 0.0 for t in report.nodes}
    stall = {t.profile.node_id: 0.0 for t in report.nodes}
    for stage in report.stages:
        s = stage.stage_index
        records = {
            t.profile.node_id: t.records[s]
            for t in report.nodes
        }
        links = {t.profile.node_id: t.profile.link for t in report.nodes}
        compute = {n: r.node_compute_time_s for n, r in records.items()}
        upload = {n: r.upload_time_s for n, r in records.items()}
        download = {
            n: links[n].model_push_time_s(r.download_bytes)
            for n, r in records.items()
        }
        span = (
            max(compute.values())
            + stage.upload_makespan_s
            + stage.modeled_update_time_s
            + max(download.values())
        )
        makespan += span
        for n in records:
            own = compute[n] + upload[n] + download[n]
            busy[n] += own
            stall[n] += span - own
    return LockstepTimeline(
        makespan_s=makespan, node_busy_s=busy, node_stall_s=stall
    )
