"""Per-node heterogeneity profiles for fleet simulation.

A real deployment is never N copies of the same node: camera traps sit in
different micro-climates (distinct drift severities), run different boards
(a TX1 at full clock next to a thermally throttled one), and reach the
Cloud over different radios (WiFi backhaul vs. LTE).  A
:class:`NodeProfile` captures one node's slice of that heterogeneity and a
:class:`FleetScenario` deterministically expands a seed into N profiles, so
the same scenario always produces the same fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.comm.link import LTE, WIFI, NetworkLink
from repro.core.simulation import Scenario
from repro.hw.specs import TX1, GPUSpec

__all__ = ["LOW_POWER_TX1", "NodeProfile", "FleetScenario"]

#: a thermally throttled TX1: ~60% clock, proportionally lower peak power —
#: the board a node in direct sunlight actually sustains
LOW_POWER_TX1 = replace(
    TX1,
    name="NVIDIA Jetson TX1 (low-power)",
    frequency_hz=TX1.frequency_hz * 0.6,
    peak_power_w=10.0,
)

#: device classes a profile may draw from
_DEVICES: dict[str, GPUSpec] = {
    "tx1": TX1,
    "tx1-lowpower": LOW_POWER_TX1,
}

#: link classes a profile may draw from
_LINKS: dict[str, NetworkLink] = {
    "wifi": WIFI,
    "lte": LTE,
}


@dataclass(frozen=True)
class NodeProfile:
    """One node's identity inside the fleet."""

    node_id: int
    device_kind: str  # "tx1" | "tx1-lowpower"
    link_kind: str  # "wifi" | "lte"
    severities: tuple[float, ...]  # per-stage drift severity
    seed: int  # all node-local randomness derives from this

    def __post_init__(self) -> None:
        if self.device_kind not in _DEVICES:
            raise ValueError(
                f"unknown device {self.device_kind!r}; "
                f"available: {sorted(_DEVICES)}"
            )
        if self.link_kind not in _LINKS:
            raise ValueError(
                f"unknown link {self.link_kind!r}; available: {sorted(_LINKS)}"
            )
        if any(s < 0 for s in self.severities):
            raise ValueError("severities must be >= 0")

    @property
    def device(self) -> GPUSpec:
        return _DEVICES[self.device_kind]

    @property
    def link(self) -> NetworkLink:
        return _LINKS[self.link_kind]


@dataclass(frozen=True)
class FleetScenario:
    """A fleet of heterogeneous nodes around one base :class:`Scenario`.

    The base scenario fixes everything node-independent (schedule, model
    sizes, training hyper-parameters); the fleet knobs control how much the
    N nodes differ from each other and how the shared uplink and the update
    scheduler behave.
    """

    base: Scenario = field(default_factory=Scenario)
    num_nodes: int = 4
    lte_fraction: float = 0.5  # fraction of nodes on LTE instead of WiFi
    low_power_fraction: float = 0.25  # fraction on the throttled TX1
    severity_jitter: float = 0.1  # per-node drift-severity spread
    backhaul_bps: float = 40e6  # aggregate uplink capacity all nodes share
    scheduler_policy: str = "per-stage"  # see fleet.scheduler
    upload_threshold: int = 64  # images pooled before a threshold update
    accuracy_drop: float = 0.05  # drop vs. best seen that forces an update
    canary_fraction: float = 0.25  # fraction of nodes updated first
    max_regression: float = 0.02  # guard tolerance for canary promotion
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("fleet needs at least one node")
        for name in ("lte_fraction", "low_power_fraction", "canary_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.severity_jitter < 0:
            raise ValueError("severity_jitter must be >= 0")
        if self.backhaul_bps <= 0:
            raise ValueError("backhaul capacity must be positive")

    def profiles(self) -> list[NodeProfile]:
        """Deterministically expand the seed into N node profiles.

        Link and device classes are assigned by quota (exact fractions, not
        sampling) so small fleets still contain every class the fractions
        ask for; drift severities jitter around the base scenario's
        schedule per node.
        """
        rng = np.random.default_rng(self.seed)
        base_sev = self.base.severities
        if base_sev is None:
            base_sev = tuple(
                0.35 + 0.1 * (i % 3) for i in range(len(self.base.schedule_k))
            )
        num_lte = int(round(self.lte_fraction * self.num_nodes))
        num_low = int(round(self.low_power_fraction * self.num_nodes))
        link_kinds = ["lte"] * num_lte + ["wifi"] * (self.num_nodes - num_lte)
        device_kinds = ["tx1-lowpower"] * num_low + ["tx1"] * (
            self.num_nodes - num_low
        )
        rng.shuffle(link_kinds)
        rng.shuffle(device_kinds)
        profiles = []
        for node_id in range(self.num_nodes):
            jitter = rng.uniform(
                -self.severity_jitter, self.severity_jitter, len(base_sev)
            )
            severities = tuple(
                float(np.clip(s + j, 0.05, 0.95))
                for s, j in zip(base_sev, jitter)
            )
            profiles.append(
                NodeProfile(
                    node_id=node_id,
                    device_kind=device_kinds[node_id],
                    link_kind=link_kinds[node_id],
                    severities=severities,
                    seed=int(
                        rng.integers(0, np.iinfo(np.int32).max)
                    ),
                )
            )
        return profiles
