"""End-to-end fleet simulation: N heterogeneous nodes, one Cloud.

This is ``core.simulation`` lifted to deployment scale.  The single-node
run answers "what does each Fig. 24 policy cost *per node*?"; the fleet
run answers the question production actually asks: what happens when N
nodes with different environments, boards, and radios share one backhaul
and one Cloud-side training budget?

The protocol per stage:

1. every node processes its own acquisition stage (inference + diagnosis,
   on its own device) against the currently deployed model version;
2. uploads contend for the shared backhaul (max-min fair, virtual time);
3. the Cloud pools uploads and the :class:`~repro.fleet.scheduler
   .FleetScheduler` decides whether to retrain, canary, and roll out —
   model push-downs travel (and are charged) over the same backhaul.

All four system variants run on identical per-node data and identical
initial weights, so fleet-level differences are pure policy — the same
discipline ``core.simulation.run_all_systems`` applies per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.fleet.pool import FleetWorkerPool

from repro.comm.link import JPEG_IMAGE_BYTES
from repro.comm.movement import DataMovementLedger
from repro.core.cloud import InSituCloud
from repro.core.node import InSituNode
from repro.core.registry import ModelRegistry, UpdateGuard
from repro.core.simulation import Scenario
from repro.core.systems import SYSTEMS, SystemConfig
from repro.data.cache import dataset_cache
from repro.data.datasets import Dataset, make_dataset
from repro.data.drift import DriftModel
from repro.data.images import ImageGenerator
from repro.data.stream import AcquisitionStage, IoTStream
from repro.diagnosis.diagnoser import (
    InferenceConfidenceDiagnoser,
    JigsawDiagnoser,
    OracleDiagnoser,
)
from repro.fleet.profiles import FleetScenario, NodeProfile
from repro.nn.config import default_dtype
from repro.fleet.scheduler import FleetScheduler, RolloutResult
from repro.fleet.uplink import SharedUplink, Transfer, model_state_bytes
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecord, Tracer, make_event, make_span
from repro.models.layer_specs import alexnet_spec, diagnosis_spec
from repro.models.iot_models import build_classifier
from repro.selfsup.jigsaw import JigsawSampler
from repro.selfsup.permutations import PermutationSet
from repro.transfer.finetune import evaluate

__all__ = [
    "fleet_base_scenario",
    "NodeStageRecord",
    "NodeTrajectory",
    "FleetStageRecord",
    "FleetReport",
    "FleetAssets",
    "FleetRuntime",
    "CloudStageOutcome",
    "build_fleet_runtime",
    "cloud_initialize",
    "cloud_try_update",
    "pooled_node_stage",
    "prepare_fleet_assets",
    "reseed_diagnoser",
    "run_fleet",
    "run_fleet_all_systems",
]


def fleet_base_scenario(**overrides) -> Scenario:
    """A per-node scenario small enough to multiply by a fleet.

    The single-node default (``stream_scale=0.4``) is sized for one node;
    at 16-64 nodes the *fleet* provides the data volume, so each node's
    stream shrinks and the training knobs lighten accordingly.
    """
    defaults = dict(
        num_classes=4,
        stream_scale=0.05,
        pretrain_images=160,
        pretrain_epochs=2,
        init_epochs=4,
        update_epochs=2,
        eval_images=96,
        diagnoser_kind="oracle",
    )
    defaults.update(overrides)
    return Scenario(**defaults)


@dataclass(frozen=True)
class NodeStageRecord:
    """One node's view of one stage (deterministic fields only)."""

    stage_index: int
    node_id: int
    acquired: int
    uploaded: int
    accuracy_on_new: float
    upload_time_s: float  # under backhaul contention
    upload_solo_time_s: float  # same bytes, uncontended backhaul
    upload_energy_j: float
    node_compute_time_s: float
    node_compute_energy_j: float
    download_bytes: int
    download_energy_j: float


@dataclass
class NodeTrajectory:
    """Everything one node experienced over the whole run."""

    profile: NodeProfile
    records: list[NodeStageRecord] = field(default_factory=list)
    ledger: DataMovementLedger = field(
        default_factory=lambda: DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    )

    @property
    def total_upload_energy_j(self) -> float:
        return sum(r.upload_energy_j for r in self.records)

    @property
    def accuracy_trajectory(self) -> list[float]:
        return [r.accuracy_on_new for r in self.records]

    @property
    def contention_stretch(self) -> float:
        """Total contended upload time over total uncontended time."""
        solo = sum(r.upload_solo_time_s for r in self.records)
        if solo == 0:
            return 1.0
        return sum(r.upload_time_s for r in self.records) / solo


@dataclass(frozen=True)
class FleetStageRecord:
    """Aggregate bookkeeping for one stage across the fleet."""

    stage_index: int
    acquired: int
    uploaded: int
    pooled_for_training: int
    updated: bool
    promoted: bool
    fleet_accuracy_on_new: float  # mean node accuracy on fresh data
    eval_accuracy: float  # active model on the shared held-out set
    modeled_update_time_s: float
    modeled_cloud_energy_j: float
    upload_makespan_s: float
    download_bytes: int


@dataclass
class FleetReport:
    """Full outcome of one system variant's fleet run."""

    config: SystemConfig
    scenario: FleetScenario
    nodes: list[NodeTrajectory] = field(default_factory=list)
    stages: list[FleetStageRecord] = field(default_factory=list)
    rollouts: list[RolloutResult] = field(default_factory=list)
    ledger: DataMovementLedger = field(
        default_factory=lambda: DataMovementLedger(image_bytes=JPEG_IMAGE_BYTES)
    )
    registry: ModelRegistry = field(default_factory=ModelRegistry)
    #: hierarchical runs only: the executed repro.topology.Topology and
    #: the per-(stage, gateway) aggregation records.  Flat runs leave
    #: both at their defaults.
    topology: object | None = None
    gateway_stages: list = field(default_factory=list)

    @property
    def total_uploaded_bytes(self) -> int:
        return self.ledger.total_uploaded_bytes

    @property
    def total_downloaded_bytes(self) -> int:
        return self.ledger.total_downloaded_bytes

    @property
    def total_bytes_moved(self) -> int:
        return self.ledger.total_bytes_moved

    @property
    def total_update_time_s(self) -> float:
        return sum(s.modeled_update_time_s for s in self.stages)

    @property
    def total_cloud_energy_j(self) -> float:
        return sum(s.modeled_cloud_energy_j for s in self.stages)

    @property
    def total_transfer_energy_j(self) -> float:
        return sum(
            r.upload_energy_j + r.download_energy_j
            for t in self.nodes
            for r in t.records
        )

    @property
    def final_accuracy(self) -> float:
        return self.stages[-1].eval_accuracy if self.stages else 0.0

    @property
    def data_reduction_vs_full(self) -> float:
        return self.ledger.overall_reduction_vs_full()


@dataclass
class FleetAssets:
    """Shared, pre-generated inputs every fleet system run consumes."""

    scenario: FleetScenario
    profiles: list[NodeProfile]
    node_stages: list[list[AcquisitionStage]]  # [node][stage]
    eval_data: Dataset
    pretrain_data: Dataset
    permset: PermutationSet
    trunk_state: dict[str, np.ndarray]
    initial_state: dict[str, np.ndarray]
    canary_ids: tuple[int, ...]


def _node_stream(
    profile: NodeProfile, base: Scenario
) -> list[AcquisitionStage]:
    """One node's acquisition stages, memoized on the seed-keyed cache.

    Keyed per node (not per fleet), so fleet-size sweeps reuse the streams
    of every node profile they share.  The segment is self-contained: its
    RNG and generator never escape, so no stream state needs restoring.
    """
    key = (
        "fleet-node-stream",
        profile.seed,
        profile.severities,
        base.image_size,
        base.num_classes,
        base.stream_scale,
        base.schedule_k,
        np.dtype(default_dtype()).str,
    )

    def build() -> list[AcquisitionStage]:
        rng = np.random.default_rng(profile.seed)
        generator = ImageGenerator(base.image_size, base.num_classes, rng=rng)
        stream = IoTStream(
            generator,
            scale=base.stream_scale,
            schedule_k=base.schedule_k,
            severities=profile.severities,
            rng=rng,
        )
        return stream.stages()

    return dataset_cache.get_or_build(key, build)


def _build_cloud(scenario: FleetScenario, permset: PermutationSet) -> InSituCloud:
    base = scenario.base
    return InSituCloud(
        base.num_classes,
        permset,
        cost_spec=alexnet_spec(),
        shared_depth=base.shared_depth,
        width=base.width,
        hidden=base.hidden,
        rng=np.random.default_rng(base.seed + 1),
    )


def prepare_fleet_assets(scenario: FleetScenario) -> FleetAssets:
    """Generate per-node streams and the shared warm-start states.

    Pre-training and the stage-0 initialization are policy-identical
    across the four system variants, so they are computed once here —
    every variant starts from literally the same weights.
    """
    base = scenario.base
    profiles = scenario.profiles()
    node_stages = [_node_stream(p, base) for p in profiles]
    eval_key = (
        "fleet-eval",
        scenario.seed,
        base.image_size,
        base.num_classes,
        base.eval_images,
        base.eval_severity,
        base.num_perms,
        np.dtype(default_dtype()).str,
    )

    def build_eval() -> dict:
        # eval_data and permset consume one shared RNG stream, so they are
        # cached as a bundle; nothing downstream reads that stream after
        # the permutation set, so no end state needs to ride along.
        rng = np.random.default_rng(scenario.seed + 11)
        eval_generator = ImageGenerator(
            base.image_size, base.num_classes, rng=rng
        )
        eval_data = make_dataset(
            base.eval_images,
            generator=eval_generator,
            drift=DriftModel(base.eval_severity, rng=rng),
            rng=rng,
        )
        permset = PermutationSet.generate(base.num_perms, rng=rng)
        return {"eval_data": eval_data, "permset": permset}

    eval_bundle = dataset_cache.get_or_build(eval_key, build_eval)
    eval_data = eval_bundle["eval_data"]
    permset = eval_bundle["permset"]
    pretrain_data = (
        Dataset.concat([stages[0].new_data for stages in node_stages])
        .take(base.pretrain_images)
        .as_unlabeled()
    )
    seed_cloud = _build_cloud(scenario, permset)
    seed_cloud.unsupervised_pretrain(
        pretrain_data, epochs=base.pretrain_epochs, batch_size=base.batch_size
    )
    trunk_state = seed_cloud.context_net.state_dict()
    stage0_pool = Dataset.concat([stages[0].new_data for stages in node_stages])
    seed_cloud.initialize_inference(
        stage0_pool,
        epochs=base.init_epochs,
        batch_size=base.batch_size,
        lr=base.init_lr,
    )
    initial_state = seed_cloud.model_state()
    canary_rng = np.random.default_rng(scenario.seed + 17)
    num_canary = max(1, int(round(scenario.canary_fraction * scenario.num_nodes)))
    canary_ids = tuple(
        int(i)
        for i in sorted(
            canary_rng.choice(scenario.num_nodes, size=num_canary, replace=False)
        )
    )
    return FleetAssets(
        scenario=scenario,
        profiles=profiles,
        node_stages=node_stages,
        eval_data=eval_data,
        pretrain_data=pretrain_data,
        permset=permset,
        trunk_state=trunk_state,
        initial_state=initial_state,
        canary_ids=canary_ids,
    )


def _make_diagnoser(kind: str, net, cloud: InSituCloud, base: Scenario):
    if kind == "oracle":
        return OracleDiagnoser(net)
    if kind == "confidence":
        return InferenceConfidenceDiagnoser(
            net, threshold=base.confidence_threshold
        )
    sampler = JigsawSampler(
        cloud.permset, rng=np.random.default_rng(base.seed + 2)
    )
    return JigsawDiagnoser(
        cloud.context_net,
        sampler,
        trials=2,
        rng=np.random.default_rng(base.seed + 3),
    )


@dataclass
class FleetRuntime:
    """Live simulation objects one fleet run operates on.

    Shared by the lockstep :func:`run_fleet` and the event-driven
    :func:`repro.fleet.async_sim.run_fleet_event`, so both modes exercise
    literally the same Cloud, scheduler, and node machinery.
    """

    config: SystemConfig
    cloud: InSituCloud
    registry: ModelRegistry
    scheduler: FleetScheduler
    deployed_net: object  # shared node-side classifier (nn.Sequential)
    nodes: list[InSituNode]
    cloud_diagnoser: object | None
    #: observability sink threaded through both fleet modes; ``None``
    #: keeps every instrumentation site a cheap no-op.
    metrics: MetricsRegistry | None = None


def build_fleet_runtime(
    config: SystemConfig,
    assets: FleetAssets,
    *,
    metrics: MetricsRegistry | None = None,
    canary_ids: tuple[int, ...] | None = None,
) -> FleetRuntime:
    """Construct the Cloud, scheduler, and nodes for one system variant.

    ``canary_ids`` overrides the asset-derived canary subset; the
    topology engines pass the canary gateway's children here so rollouts
    canary regionally instead of on the scenario's scattered sample.
    """
    scenario = assets.scenario
    base = scenario.base
    profiles = assets.profiles
    inference_spec = alexnet_spec()
    diag_spec = diagnosis_spec(inference_spec)

    cloud = _build_cloud(scenario, assets.permset)
    cloud.context_net.load_state_dict(assets.trunk_state)
    cloud.inference_net.load_state_dict(assets.initial_state)

    registry = ModelRegistry()
    guard = UpdateGuard(
        validation_data=assets.eval_data,
        max_regression=scenario.max_regression,
    )
    scheduler = FleetScheduler(
        cloud=cloud,
        registry=registry,
        guard=guard,
        policy=scenario.scheduler_policy,
        canary_ids=(
            canary_ids if canary_ids is not None else assets.canary_ids
        ),
        upload_threshold=scenario.upload_threshold,
        accuracy_drop=scenario.accuracy_drop,
    )

    # One deployed network shared by every node: loading a node's current
    # version right before it runs keeps memory flat at fleet scale while
    # still letting the event mode hold different versions per node.
    deployed_net = build_classifier(
        base.num_classes,
        np.random.default_rng(base.seed + 5),
        width=base.width,
        hidden=base.hidden,
    )
    node_diagnoser = (
        _make_diagnoser(base.diagnoser_kind, deployed_net, cloud, base)
        if config.diagnosis_location == "node"
        else None
    )
    cloud_diagnoser = (
        _make_diagnoser(base.diagnoser_kind, cloud.inference_net, cloud, base)
        if config.diagnosis_location == "cloud"
        else None
    )
    nodes = [
        InSituNode(
            deployed_net,
            node_diagnoser,
            inference_spec=inference_spec,
            diagnosis_spec=diag_spec,
            gpu=profile.device,
        )
        for profile in profiles
    ]
    return FleetRuntime(
        config=config,
        cloud=cloud,
        registry=registry,
        scheduler=scheduler,
        deployed_net=deployed_net,
        nodes=nodes,
        cloud_diagnoser=cloud_diagnoser,
        metrics=metrics,
    )


@dataclass
class CloudStageOutcome:
    """What the Cloud did with one batch of pooled uploads."""

    pooled_for_training: int = 0
    updated: bool = False
    promoted: bool = False
    modeled_update_time_s: float = 0.0
    modeled_cloud_energy_j: float = 0.0
    push_bytes_per_node: dict[int, int] = field(default_factory=dict)
    push_unit_bytes: int = 0  # wire size of one model push
    rollout: RolloutResult | None = None


def rollback_attrs(outcome: CloudStageOutcome) -> dict:
    """Additive ``cloud/decision`` attrs explaining a canary rollback.

    Every engine (lockstep, event, topology, scenario) emits its
    decision event through this one helper so the rollback ``cause`` /
    ``delta`` attrs stay byte-identical across flat and passthrough
    paths.  Empty for promotions and no-ops, so existing decision
    events keep their exact attr set.
    """
    if not outcome.updated or outcome.promoted or outcome.rollout is None:
        return {}
    decision = outcome.rollout.decision
    if decision.accepted:
        return {}
    return {
        "cause": "canary-regression",
        "delta": round(decision.delta, 6),
    }


def cloud_initialize(
    stage_index: int,
    uploads: list[Dataset],
    *,
    runtime: FleetRuntime,
    base: Scenario,
    all_node_ids: tuple[int, ...],
) -> CloudStageOutcome:
    """Stage-0 protocol: pool every node's raw data, train v1, push to all."""
    cloud = runtime.cloud
    pool = Dataset.concat(uploads)
    cloud.archive = pool
    modeled_s, modeled_j = cloud.modeled_update_cost(
        len(pool), base.init_epochs, freeze_depth=0
    )
    version_state = cloud.model_state()
    runtime.registry.publish(
        version_state,
        {"stage": stage_index, "images": len(pool), "epochs": base.init_epochs},
    )
    push = model_state_bytes(version_state)
    outcome = CloudStageOutcome(
        pooled_for_training=len(pool),
        updated=True,
        promoted=True,
        modeled_update_time_s=modeled_s,
        modeled_cloud_energy_j=modeled_j,
        push_bytes_per_node={i: push for i in all_node_ids},
        push_unit_bytes=push,
    )
    _record_cloud_metrics(runtime, outcome, kind="init")
    return outcome


def cloud_try_update(
    stage_index: int,
    fleet_accuracy: float,
    canary_validation,
    *,
    runtime: FleetRuntime,
    base: Scenario,
    all_node_ids: tuple[int, ...],
) -> CloudStageOutcome:
    """Fire the scheduler policy against the pooled uploads, if it triggers.

    Uploads must already have been :meth:`FleetScheduler.offer`-ed.
    ``canary_validation`` is a zero-arg callable so the canary set is only
    materialized when a rollout actually happens.
    """
    cloud = runtime.cloud
    scheduler = runtime.scheduler
    outcome = CloudStageOutcome(
        push_bytes_per_node={i: 0 for i in all_node_ids}
    )
    if not scheduler.should_update(fleet_accuracy):
        return outcome
    pool, pooled_count = scheduler.drain()
    train_data = pool
    if runtime.cloud_diagnoser is not None:
        # System b: the Cloud pays an inference scan over every
        # uploaded image to find the valuable subset.
        scan_s = (
            len(pool)
            * cloud.cost_spec.total_ops
            / cloud.cost_model.sustained_ops
        )
        outcome.modeled_update_time_s += scan_s
        outcome.modeled_cloud_energy_j += cloud.cost_model.training_energy_j(
            scan_s
        )
        flags = runtime.cloud_diagnoser.diagnose(pool)
        train_data = pool.subset(np.flatnonzero(flags))
    if len(train_data):
        rollout = scheduler.rollout(
            stage_index,
            train_data,
            canary_validation(),
            all_node_ids,
            weight_shared=runtime.config.weight_shared,
            epochs=base.update_epochs,
            batch_size=base.batch_size,
            lr=base.update_lr,
            pooled_images=pooled_count,
        )
        outcome.updated = True
        outcome.promoted = rollout.promoted
        outcome.pooled_for_training = len(train_data)
        outcome.modeled_update_time_s += rollout.report.modeled_time_s
        outcome.modeled_cloud_energy_j += rollout.report.modeled_energy_j
        outcome.rollout = rollout
        push = model_state_bytes(cloud.model_state())
        outcome.push_unit_bytes = push
        for event in rollout.events:
            outcome.push_bytes_per_node[event.node_id] += push
        _record_cloud_metrics(runtime, outcome, kind="rollout")
    return outcome


def _record_cloud_metrics(
    runtime: FleetRuntime, outcome: CloudStageOutcome, *, kind: str
) -> None:
    """Account one Cloud update in the runtime's registry (if any).

    Everything recorded here derives from modeled (virtual) cost and
    pooled counts, so the dump is identical across reruns and worker
    counts.
    """
    m = runtime.metrics
    if m is None:
        return
    sys_id = runtime.config.system_id
    m.counter("cloud.updates", kind=kind, system=sys_id).inc()
    if outcome.promoted:
        m.counter("cloud.promotions", system=sys_id).inc()
    m.counter("cloud.train_images", system=sys_id).inc(
        outcome.pooled_for_training
    )
    m.histogram("cloud.update_time_s", system=sys_id).observe(
        outcome.modeled_update_time_s
    )
    m.counter("cloud.push_bytes", system=sys_id).inc(
        sum(outcome.push_bytes_per_node.values())
    )


def reseed_diagnoser(
    diagnoser, base_seed: int, node_id: int, stage_index: int
) -> None:
    """Pin a diagnoser's randomness to ``(node, stage)``.

    Stochastic diagnosers (jigsaw sampling) historically consumed one RNG
    stream in whatever order nodes were processed, which couples results to
    scheduling.  Reseeding per (node, stage) makes every node's diagnosis a
    pure function of its identity — so the lockstep, event-driven, and
    process-pool paths all see identical flags.  Deterministic diagnosers
    carry no ``rng`` attributes and are left untouched.
    """
    if diagnoser is None:
        return
    has_rng = hasattr(diagnoser, "rng")
    sampler = getattr(diagnoser, "sampler", None)
    if not has_rng and sampler is None:
        return
    children = np.random.SeedSequence(
        (base_seed, node_id, stage_index)
    ).spawn(2)
    if has_rng:
        diagnoser.rng = np.random.default_rng(children[0])
    if sampler is not None and hasattr(sampler, "rng"):
        sampler.rng = np.random.default_rng(children[1])


def _node_stage_records(
    node_report,
    *,
    stage_index: int,
    node_id: int,
    system_id: str,
    t0: float,
    tier: str | None = None,
    extra: dict | None = None,
) -> list[TraceRecord]:
    """Trace records for one node's stage, stamped at virtual time ``t0``.

    A module function (not a :class:`Tracer` method) so pool workers build
    the very same records and ship them home alongside the
    :class:`NodeReport`; the parent merges the per-(node, stage) buffers in
    fixed node order, making the trace bytes identical for every worker
    count.

    ``tier`` tags the records for hierarchical runs; flat runs pass
    ``None`` and their record bytes carry no tier attribute at all.
    ``extra`` adds further attributes the same way (scenario runs tag
    records with their phase); ``None`` leaves the bytes untouched.
    """
    compute_s = node_report.inference_time_s + node_report.diagnosis_time_s
    tier_attrs = {} if tier is None else {"tier": tier}
    if extra:
        tier_attrs.update(extra)
    return [
        make_span(
            "node",
            "compute",
            t0,
            t0 + compute_s,
            node=node_id,
            stage=stage_index,
            system=system_id,
            inference_s=node_report.inference_time_s,
            diagnosis_s=node_report.diagnosis_time_s,
            **tier_attrs,
        ),
        make_event(
            "node",
            "diagnosis",
            t0 + compute_s,
            node=node_id,
            stage=stage_index,
            system=system_id,
            acquired=node_report.acquired_images,
            flagged=node_report.flagged_images,
            **tier_attrs,
        ),
    ]


def pooled_node_stage(
    pool: "FleetWorkerPool",
    system_id: str,
    stage_index: int,
    node_items: list[tuple[int, dict[str, np.ndarray]]],
    *,
    trace_t0: float | None = None,
    tier: str | None = None,
    extra: dict | None = None,
) -> dict[int, tuple]:
    """Run one stage's per-node compute on the persistent worker pool.

    The shared seam all three lockstep engines dispatch through:
    ``node_items`` pairs each node index with the model state it should
    run under.  States are published into the pool's shared-memory
    weights block (interned — republishing the same dict object is
    free), so tasks carry only ``(node_index, generation)`` plus the
    trace stamps.  Returns ``{node_index: (NodeReport, records)}``;
    callers iterate node indices in fixed order, which keeps reports and
    trace bytes identical to the serial path at any worker count.
    """
    from repro.fleet.pool import PoolTask

    tasks = [
        PoolTask(
            node_index=i,
            state=pool.publish(state),
            trace_t0=trace_t0,
            tier=tier,
            extra=extra,
        )
        for i, state in node_items
    ]
    return pool.run_stage(system_id, stage_index, tasks)


def run_fleet(
    config: SystemConfig,
    assets: FleetAssets,
    *,
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    topology=None,
    pool: "FleetWorkerPool | None" = None,
) -> FleetReport:
    """Replay the whole fleet schedule for one system variant.

    ``workers > 1`` runs the per-node inference/diagnosis epochs on a
    persistent :class:`repro.fleet.pool.FleetWorkerPool`: workers attach
    once to shared-memory segments holding the assets and the active
    model weights, and each stage ships only small (node, generation)
    work items in per-worker chunks.  Results are keyed by node index
    and merged in fixed node order, and all diagnosis randomness is
    seeded per (node, stage), so every worker count produces
    bit-identical reports.

    ``pool`` reuses an existing pool (it must have been built over these
    same ``assets``) instead of creating one per call — this is how
    :func:`run_fleet_all_systems` amortizes one pool across all four
    system variants.  A pool created here is shut down — segments
    unlinked — before returning, whether the run completes or raises.

    ``tracer`` collects virtual-time spans for the whole run (stage spans
    are stamped from the reconstructed lockstep timeline, so the stream is
    byte-identical across worker counts); ``metrics`` threads a registry
    through the runtime and the ambient :func:`repro.obs.metrics.use`
    scope.  Both default to off with zero overhead.

    ``topology`` (a :class:`repro.topology.Topology`) interposes a
    gateway tier between the nodes and the Cloud.  ``None`` and
    passthrough topologies execute this exact flat code path, so the
    default trajectories are byte-identical with or without the flag.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if pool is not None and pool.assets is not assets:
        raise ValueError("pool was built over different FleetAssets")
    if topology is not None:
        topology.validate_for(assets.profiles)
    hierarchical = topology is not None and not topology.is_passthrough
    uplink = SharedUplink(assets.scenario.backhaul_bps)
    runtime = build_fleet_runtime(
        config,
        assets,
        metrics=metrics,
        canary_ids=topology.canary_node_ids if hierarchical else None,
    )
    owned_pool = None
    if pool is None and workers > 1:
        # Imported here: repro.fleet.pool imports this module.
        from repro.fleet.pool import FleetWorkerPool

        pool = owned_pool = FleetWorkerPool(assets, workers)
    try:
        with obs_metrics.use(metrics):
            if hierarchical:
                # Imported here: repro.topology imports this module.
                from repro.topology.lockstep import run_topology_schedule

                return run_topology_schedule(
                    config,
                    assets,
                    runtime,
                    topology,
                    uplink,
                    pool,
                    tracer=tracer,
                )
            report = _run_fleet_schedule(
                config, assets, runtime, uplink, pool, tracer=tracer
            )
            # A passthrough topology executed the flat path verbatim;
            # still record what was asked for.
            report.topology = topology
            return report
    finally:
        if owned_pool is not None:
            owned_pool.shutdown()


def _run_fleet_schedule(
    config: SystemConfig,
    assets: FleetAssets,
    runtime: FleetRuntime,
    uplink: SharedUplink,
    pool: "FleetWorkerPool | None",
    *,
    tracer: Tracer | None = None,
) -> FleetReport:
    scenario = assets.scenario
    base = scenario.base
    profiles = assets.profiles
    cloud = runtime.cloud
    registry = runtime.registry
    scheduler = runtime.scheduler
    deployed_net = runtime.deployed_net

    report = FleetReport(config=config, scenario=scenario, registry=registry)
    report.nodes = [NodeTrajectory(profile=p) for p in profiles]
    all_node_ids = tuple(p.node_id for p in profiles)
    num_stages = len(assets.node_stages[0])
    tracing = tracer is not None and tracer.enabled
    # Virtual stage cursor: spans are stamped from the same barrier
    # timeline lockstep_timeline() reconstructs, so the trace stream is a
    # pure function of the report — identical for any worker count.
    cursor = 0.0

    for s in range(num_stages):
        is_initial = s == 0
        stage_start = cursor
        trace_t0 = stage_start if tracing else None
        active_state = (
            registry.active.state if len(registry) else assets.initial_state
        )
        if pool is None:
            deployed_net.load_state_dict(active_state)
            node_reports = []
            for i in range(len(profiles)):
                reseed_diagnoser(
                    runtime.nodes[i].diagnoser,
                    base.seed,
                    profiles[i].node_id,
                    s,
                )
                node_report = runtime.nodes[i].process_stage(
                    assets.node_stages[i][s]
                )
                node_reports.append(node_report)
                if tracing:
                    tracer.extend(
                        _node_stage_records(
                            node_report,
                            stage_index=s,
                            node_id=profiles[i].node_id,
                            system_id=config.system_id,
                            t0=stage_start,
                        )
                    )
        else:
            by_index = pooled_node_stage(
                pool,
                config.system_id,
                s,
                [(i, active_state) for i in range(len(profiles))],
                trace_t0=trace_t0,
            )
            node_reports = []
            for i in range(len(profiles)):
                node_report, records = by_index[i]
                node_reports.append(node_report)
                if tracing and records is not None:
                    tracer.extend(records)
        # Systems without node-side diagnosis ship the raw stage data, not
        # the flagged subset; stage 0 is the initialization upload for all.
        uploads: list[Dataset] = []
        upload_counts: list[int] = []
        for i, node_report in enumerate(node_reports):
            if is_initial or config.uploads_everything:
                uploads.append(assets.node_stages[i][s].new_data)
                upload_counts.append(node_report.acquired_images)
            else:
                uploads.append(node_report.upload_data)
                upload_counts.append(len(node_report.upload_data))

        transfers = [
            Transfer(
                node_id=profiles[i].node_id,
                link=profiles[i].link,
                num_bytes=upload_counts[i] * JPEG_IMAGE_BYTES,
            )
            for i in range(len(profiles))
        ]
        upload_times, makespan = uplink.stage_upload_times(transfers)
        compute_times = [
            r.inference_time_s + r.diagnosis_time_s for r in node_reports
        ]
        uploads_start = stage_start + max(compute_times, default=0.0)
        if tracing:
            for i, profile in enumerate(profiles):
                if upload_counts[i]:
                    tracer.span(
                        "net",
                        "upload",
                        uploads_start,
                        uploads_start + upload_times[i],
                        node=profile.node_id,
                        stage=s,
                        system=config.system_id,
                        bytes=transfers[i].num_bytes,
                    )

        fleet_accuracy = float(
            np.mean([r.accuracy_before_update for r in node_reports])
        )

        # --- cloud side -----------------------------------------------
        if is_initial:
            outcome = cloud_initialize(
                s,
                uploads,
                runtime=runtime,
                base=base,
                all_node_ids=all_node_ids,
            )
        else:
            for i, upload in enumerate(uploads):
                scheduler.offer(s, profiles[i].node_id, upload)
            outcome = cloud_try_update(
                s,
                fleet_accuracy,
                lambda: Dataset.concat(
                    [
                        assets.node_stages[i][s].new_data
                        for i in assets.canary_ids
                    ]
                ),
                runtime=runtime,
                base=base,
                all_node_ids=all_node_ids,
            )
        push_bytes_per_node = outcome.push_bytes_per_node

        # --- stage timeline tail: cloud update, then model push-down ---
        update_start = uploads_start + makespan
        update_end = update_start + outcome.modeled_update_time_s
        push_times = {
            p.node_id: p.link.model_push_time_s(
                push_bytes_per_node[p.node_id]
            )
            for p in profiles
        }
        if tracing:
            if outcome.modeled_update_time_s > 0:
                tracer.span(
                    "cloud",
                    "init" if is_initial else "update",
                    update_start,
                    update_end,
                    stage=s,
                    system=config.system_id,
                    pooled=outcome.pooled_for_training,
                    promoted=outcome.promoted,
                )
            tracer.event(
                "cloud",
                "decision",
                update_end,
                stage=s,
                system=config.system_id,
                updated=outcome.updated,
                promoted=outcome.promoted,
                **rollback_attrs(outcome),
            )
            for profile in profiles:
                down_bytes = push_bytes_per_node[profile.node_id]
                if down_bytes:
                    tracer.span(
                        "net",
                        "push",
                        update_end,
                        update_end + push_times[profile.node_id],
                        node=profile.node_id,
                        stage=s,
                        system=config.system_id,
                        bytes=down_bytes,
                    )
        cursor = update_end + max(push_times.values(), default=0.0)

        # --- downlink accounting --------------------------------------
        push_energies = {
            p.node_id: p.link.model_push_energy_j(push_bytes_per_node[p.node_id])
            for p in profiles
        }

        # --- per-node records -----------------------------------------
        stage_download_bytes = 0
        for i, profile in enumerate(profiles):
            node_report = node_reports[i]
            down = push_bytes_per_node[profile.node_id]
            stage_download_bytes += down
            record = NodeStageRecord(
                stage_index=s,
                node_id=profile.node_id,
                acquired=node_report.acquired_images,
                uploaded=upload_counts[i],
                accuracy_on_new=node_report.accuracy_before_update,
                upload_time_s=upload_times[i],
                upload_solo_time_s=uplink.solo_time(transfers[i]),
                upload_energy_j=profile.link.image_upload_energy_j(
                    upload_counts[i]
                ),
                node_compute_time_s=(
                    node_report.inference_time_s + node_report.diagnosis_time_s
                ),
                node_compute_energy_j=node_report.node_energy_j,
                download_bytes=down,
                download_energy_j=push_energies[profile.node_id],
            )
            trajectory = report.nodes[i]
            trajectory.records.append(record)
            trajectory.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
            if down:
                trajectory.ledger.record_download(s, down)
            report.ledger.record(
                s, node_report.acquired_images, upload_counts[i]
            )
        if stage_download_bytes:
            report.ledger.record_download(s, stage_download_bytes)

        eval_accuracy = evaluate(cloud.inference_net, assets.eval_data)
        report.stages.append(
            FleetStageRecord(
                stage_index=s,
                acquired=sum(r.acquired_images for r in node_reports),
                uploaded=sum(upload_counts),
                pooled_for_training=outcome.pooled_for_training,
                updated=outcome.updated,
                promoted=outcome.promoted,
                fleet_accuracy_on_new=fleet_accuracy,
                eval_accuracy=eval_accuracy,
                modeled_update_time_s=outcome.modeled_update_time_s,
                modeled_cloud_energy_j=outcome.modeled_cloud_energy_j,
                upload_makespan_s=makespan,
                download_bytes=stage_download_bytes,
            )
        )
        m = runtime.metrics
        if m is not None:
            sys_id = config.system_id
            m.counter("fleet.stages", system=sys_id).inc()
            m.counter("fleet.images.acquired", system=sys_id).inc(
                sum(r.acquired_images for r in node_reports)
            )
            m.counter("fleet.images.flagged", system=sys_id).inc(
                sum(r.flagged_images for r in node_reports)
            )
            m.counter("fleet.images.uploaded", system=sys_id).inc(
                sum(upload_counts)
            )
            hist = m.histogram("fleet.upload_time_s", system=sys_id)
            for t in upload_times:
                hist.observe(t)
            snap = report.ledger.snapshot()
            m.gauge("fleet.bytes.uploaded", system=sys_id).set(
                snap.uploaded_bytes
            )
            m.gauge("fleet.bytes.downloaded", system=sys_id).set(
                snap.downloaded_bytes
            )
    report.rollouts = list(scheduler.history)
    return report


def run_fleet_all_systems(
    scenario: FleetScenario,
    *,
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    topology=None,
) -> dict[str, FleetReport]:
    """Run every Fig. 24 variant over the same fleet, data, and weights.

    A shared ``tracer``/``metrics`` collects all four variants into one
    stream; every record carries a ``system`` attribute or label, so the
    variants stay separable downstream.

    ``workers > 1`` builds **one** worker pool and reuses it for all
    four variants (workers cache one runtime per system id), so the
    spawn/attach cost is paid once per sweep rather than once per
    variant.  The pool is shut down — and its shared-memory segments
    unlinked — before returning, also on exceptions.
    """
    assets = prepare_fleet_assets(scenario)
    pool = None
    if workers > 1:
        from repro.fleet.pool import FleetWorkerPool

        pool = FleetWorkerPool(assets, workers)
    try:
        return {
            config.system_id: run_fleet(
                config,
                assets,
                workers=workers,
                tracer=tracer,
                metrics=metrics,
                topology=topology,
                pool=pool,
            )
            for config in SYSTEMS
        }
    finally:
        if pool is not None:
            pool.shutdown()
