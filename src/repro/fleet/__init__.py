"""Fleet-scale simulation: N heterogeneous nodes sharing one Cloud."""

from repro.fleet.profiles import LOW_POWER_TX1, FleetScenario, NodeProfile
from repro.fleet.scheduler import (
    DeployEvent,
    FleetScheduler,
    PendingUpload,
    RolloutResult,
)
from repro.fleet.simulation import (
    FleetAssets,
    FleetReport,
    FleetStageRecord,
    NodeStageRecord,
    NodeTrajectory,
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
    run_fleet_all_systems,
)
from repro.fleet.uplink import SharedUplink, Transfer, model_state_bytes

__all__ = [
    "DeployEvent",
    "FleetAssets",
    "FleetReport",
    "FleetScenario",
    "FleetScheduler",
    "FleetStageRecord",
    "LOW_POWER_TX1",
    "NodeProfile",
    "NodeStageRecord",
    "NodeTrajectory",
    "PendingUpload",
    "RolloutResult",
    "SharedUplink",
    "Transfer",
    "fleet_base_scenario",
    "model_state_bytes",
    "prepare_fleet_assets",
    "run_fleet",
    "run_fleet_all_systems",
]
