"""Fleet-scale simulation: N heterogeneous nodes sharing one Cloud."""

from repro.fleet.async_sim import (
    CloudUpdateRecord,
    EpochRecord,
    FleetEventReport,
    LockstepTimeline,
    NodeEventTrajectory,
    lockstep_timeline,
    run_fleet_event,
)
from repro.fleet.profiles import LOW_POWER_TX1, FleetScenario, NodeProfile
from repro.fleet.scheduler import (
    DeployEvent,
    FleetScheduler,
    PendingUpload,
    RolloutResult,
)
from repro.fleet.simulation import (
    FleetAssets,
    FleetReport,
    FleetRuntime,
    FleetStageRecord,
    NodeStageRecord,
    NodeTrajectory,
    build_fleet_runtime,
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
    run_fleet_all_systems,
)
from repro.fleet.uplink import SharedUplink, Transfer, model_state_bytes

__all__ = [
    "CloudUpdateRecord",
    "DeployEvent",
    "EpochRecord",
    "FleetAssets",
    "FleetEventReport",
    "FleetReport",
    "FleetRuntime",
    "FleetScenario",
    "FleetScheduler",
    "FleetStageRecord",
    "LOW_POWER_TX1",
    "LockstepTimeline",
    "NodeEventTrajectory",
    "NodeProfile",
    "NodeStageRecord",
    "NodeTrajectory",
    "PendingUpload",
    "RolloutResult",
    "SharedUplink",
    "Transfer",
    "build_fleet_runtime",
    "fleet_base_scenario",
    "lockstep_timeline",
    "model_state_bytes",
    "prepare_fleet_assets",
    "run_fleet",
    "run_fleet_event",
    "run_fleet_all_systems",
]
