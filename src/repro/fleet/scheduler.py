"""Cloud-side update scheduling and canary rollout for a fleet.

With one node, "when to retrain" is trivial: every stage.  With N nodes
sharing one Cloud the scheduler becomes a real policy surface:

* **per-stage** — retrain whenever a stage delivered any uploads (the
  single-node paper protocol, generalized to the pooled uploads).
* **threshold** — retrain once the pooled upload count crosses
  ``upload_threshold`` images; small dribbles from individual nodes wait.
* **accuracy-drop** — retrain only when the fleet's mean accuracy on fresh
  data has fallen ``accuracy_drop`` below the best it has seen.

Every triggered update goes through a **canary rollout** instead of a blind
fleet-wide push: the candidate model is deployed to a canary subset first,
checked with :class:`~repro.core.registry.UpdateGuard` semantics against
the canary nodes' own fresh data, and only promoted to the registry (and
the rest of the fleet) if it does not regress.  A regressing candidate is
rolled back on the canaries and never becomes a registry version.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cloud import CloudUpdateReport, InSituCloud
from repro.core.registry import GuardDecision, ModelRegistry, UpdateGuard
from repro.data.datasets import Dataset

__all__ = [
    "PendingUpload",
    "DeployEvent",
    "RolloutResult",
    "FleetScheduler",
]

_POLICIES = ("per-stage", "threshold", "accuracy-drop")


@dataclass(frozen=True)
class PendingUpload:
    """One node's uploaded batch waiting in the Cloud's pool."""

    stage_index: int
    node_id: int
    data: Dataset


@dataclass(frozen=True)
class DeployEvent:
    """One model push to one node (what the downlink ledger charges)."""

    stage_index: int
    node_id: int
    version: int  # registry version, or -1 for an unpublished candidate
    kind: str  # "canary" | "rollback" | "fleet"


@dataclass(frozen=True)
class RolloutResult:
    """Outcome of one scheduled update attempt."""

    stage_index: int
    report: CloudUpdateReport
    decision: GuardDecision
    promoted: bool
    canary_ids: tuple[int, ...]
    events: tuple[DeployEvent, ...]
    pooled_images: int


@dataclass
class FleetScheduler:
    """Aggregates uploads across nodes and schedules guarded updates.

    Parameters
    ----------
    cloud:
        The shared :class:`~repro.core.cloud.InSituCloud`.
    registry:
        Versioned model store; the fleet always runs ``registry.active``.
    guard:
        Acceptance test for canary promotion.  Its validation data is
        swapped per rollout for the canary nodes' fresh data.
    policy:
        One of ``per-stage``, ``threshold``, ``accuracy-drop``.
    canary_ids:
        Node ids that receive candidate models first.
    """

    cloud: InSituCloud
    registry: ModelRegistry
    guard: UpdateGuard
    policy: str = "per-stage"
    canary_ids: tuple[int, ...] = ()
    upload_threshold: int = 64
    accuracy_drop: float = 0.05
    pool: list[PendingUpload] = field(default_factory=list)
    history: list[RolloutResult] = field(default_factory=list)
    _best_accuracy: float = float("-inf")

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; available: {_POLICIES}"
            )
        if self.upload_threshold < 1:
            raise ValueError("upload_threshold must be >= 1")
        if self.accuracy_drop < 0:
            raise ValueError("accuracy_drop must be >= 0")

    # ------------------------------------------------------------------
    # Pooling and trigger logic
    # ------------------------------------------------------------------
    @property
    def pooled_images(self) -> int:
        return sum(len(u.data) for u in self.pool)

    def offer(self, stage_index: int, node_id: int, data: Dataset) -> None:
        """A node's upload arrived at the Cloud."""
        if len(data):
            self.pool.append(PendingUpload(stage_index, node_id, data))

    def should_update(self, fleet_accuracy: float) -> bool:
        """Does the policy fire at this stage boundary?

        ``fleet_accuracy`` is the mean per-node accuracy on the stage's
        fresh data — the signal a production control loop actually has.
        """
        if not self.pool:
            return False
        if self.policy == "per-stage":
            return True
        if self.policy == "threshold":
            return self.pooled_images >= self.upload_threshold
        self._best_accuracy = max(self._best_accuracy, fleet_accuracy)
        return fleet_accuracy <= self._best_accuracy - self.accuracy_drop

    def drain(self) -> tuple[Dataset, int]:
        """Pop the pooled uploads as one training set."""
        if not self.pool:
            raise ValueError("no pooled uploads to drain")
        pooled = Dataset.concat([u.data for u in self.pool])
        count = len(pooled)
        self.pool.clear()
        return pooled, count

    # ------------------------------------------------------------------
    # Canary rollout
    # ------------------------------------------------------------------
    def rollout(
        self,
        stage_index: int,
        train_data: Dataset,
        canary_validation: Dataset,
        all_node_ids: tuple[int, ...],
        *,
        weight_shared: bool,
        epochs: int = 3,
        batch_size: int = 32,
        lr: float = 0.01,
        pooled_images: int | None = None,
    ) -> RolloutResult:
        """Train a candidate, canary it, and promote or roll back.

        The candidate is pushed to the canary subset *before* the guard
        decision — that deployment is the point of a canary — so its
        downlink traffic is paid even when the update is rejected, plus
        the rollback push that restores the active version.
        """
        previous = self.cloud.model_state()
        report = self.cloud.incremental_update(
            train_data,
            weight_shared=weight_shared,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
        )
        canaries = tuple(i for i in self.canary_ids if i in all_node_ids)
        if not canaries:  # degenerate fleets: first node is the canary
            canaries = all_node_ids[:1]
        events = [
            DeployEvent(stage_index, node_id, -1, "canary")
            for node_id in canaries
        ]
        self.guard.validation_data = canary_validation
        decision = self.guard.check(self.cloud.inference_net, previous)
        if decision.accepted:
            version = self.registry.publish(
                self.cloud.model_state(),
                {
                    "stage": stage_index,
                    "images": report.images_used,
                    "epochs": report.epochs,
                },
            )
            events.extend(
                DeployEvent(stage_index, node_id, version.version, "fleet")
                for node_id in all_node_ids
                if node_id not in canaries
            )
        else:
            # UpdateGuard already restored the Cloud weights; the canary
            # nodes must re-download the still-active version.
            active = self.registry.active.version
            events.extend(
                DeployEvent(stage_index, node_id, active, "rollback")
                for node_id in canaries
            )
        result = RolloutResult(
            stage_index=stage_index,
            report=report,
            decision=decision,
            promoted=decision.accepted,
            canary_ids=canaries,
            events=tuple(events),
            pooled_images=(
                pooled_images if pooled_images is not None else len(train_data)
            ),
        )
        self.history.append(result)
        return result

    @property
    def rejection_count(self) -> int:
        return sum(1 for r in self.history if not r.promoted)

    def deployed_model(self) -> dict[str, np.ndarray]:
        """State every non-canary node should currently run."""
        return self.registry.active.state
