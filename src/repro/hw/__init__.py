"""Hardware substrate: analytical GPU/FPGA models and co-running
architectures for the In-situ AI node."""

from repro.hw.archs import (
    NUM_DIAGNOSIS_ENGINES,
    ConvRuntime,
    CoRunningArch,
    NWSArch,
    WSArch,
    WSSArch,
)
from repro.hw.energy import TrainingCostModel, fpga_energy_j, gpu_energy_j
from repro.hw.engines import PEArrayEngine, TmTnEngine, square_factors
from repro.hw.eventsim import ImageTrace, PipelineSimResult, simulate_pipeline
from repro.hw.gpusim import CoRunSimResult, simulate_corun
from repro.hw.interference import CoRunResult, co_running_latency
from repro.hw.pipeline import (
    ARCH_FACTORIES,
    PipelineDesign,
    PipelineTiming,
    best_design,
    pipeline_timing,
)
from repro.hw.sim import MeasuredGPU
from repro.hw.specs import TITAN_X, TX1, VX690T, FPGASpec, GPUSpec

__all__ = [
    "ARCH_FACTORIES",
    "CoRunResult",
    "CoRunSimResult",
    "CoRunningArch",
    "ConvRuntime",
    "FPGASpec",
    "GPUSpec",
    "ImageTrace",
    "MeasuredGPU",
    "PipelineSimResult",
    "NUM_DIAGNOSIS_ENGINES",
    "NWSArch",
    "PEArrayEngine",
    "PipelineDesign",
    "PipelineTiming",
    "TITAN_X",
    "TX1",
    "TmTnEngine",
    "TrainingCostModel",
    "VX690T",
    "WSArch",
    "WSSArch",
    "best_design",
    "co_running_latency",
    "fpga_energy_j",
    "gpu_energy_j",
    "pipeline_timing",
    "simulate_corun",
    "simulate_pipeline",
    "square_factors",
]
