"""Kernel-queue simulation of GPU co-running (validates Fig. 16's model).

The closed-form interference model in :mod:`repro.hw.interference` assumes
fair time-sharing over a window.  This simulator plays the mechanism out:
each task submits its layers as kernels into a queue, the device executes
kernels one at a time (GPUs do not preempt running kernels), and a
round-robin scheduler alternates between the tasks' queues.  Inference
latency is measured from submission of an image's first kernel to
completion of its last — including all the diagnosis kernels interleaved in
between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import layer_time
from repro.hw.specs import GPUSpec
from repro.models.layer_specs import NetworkSpec

__all__ = ["CoRunSimResult", "simulate_corun"]


@dataclass(frozen=True)
class CoRunSimResult:
    """Measured latencies from the kernel-interleaving simulation."""

    inference_solo_s: float
    inference_corun_s: float  # mean per-image latency while co-running
    diagnosis_image_s: float  # device time of one full diagnosis image

    @property
    def inference_slowdown(self) -> float:
        return self.inference_corun_s / self.inference_solo_s


def _kernel_times(
    network: NetworkSpec, gpu: GPUSpec, batch: int
) -> list[float]:
    return [layer_time(spec, gpu, batch) for spec in network.layers]


def simulate_corun(
    inference: NetworkSpec,
    diagnosis: NetworkSpec,
    gpu: GPUSpec,
    *,
    inference_batch: int = 1,
    diagnosis_batch: int = 1,
    num_patches: int = 9,
    num_images: int = 20,
) -> CoRunSimResult:
    """Interleave inference and diagnosis kernels round-robin.

    Both tasks are backlogged (always have the next kernel ready), matching
    the diagnosis_duty=1 worst case of the analytical model.  Returns mean
    inference-image latency with and without the co-runner.
    """
    if num_images < 1:
        raise ValueError("num_images must be >= 1")
    inf_kernels = _kernel_times(inference, gpu, inference_batch)
    # One diagnosis image = conv trunk once per patch + the FCN head once.
    diag_kernels = [
        t
        for _ in range(num_patches)
        for t in _kernel_times(
            NetworkSpec(diagnosis.name, diagnosis.conv_layers),
            gpu,
            diagnosis_batch,
        )
    ] + _kernel_times(
        NetworkSpec(diagnosis.name, diagnosis.fc_layers), gpu, diagnosis_batch
    )

    solo = sum(inf_kernels)

    clock = 0.0
    inf_idx = 0  # next inference kernel within the current image
    diag_idx = 0
    image_start = 0.0
    latencies: list[float] = []
    turn_inference = True
    while len(latencies) < num_images:
        if turn_inference:
            if inf_idx == 0:
                image_start = clock
            clock += inf_kernels[inf_idx]
            inf_idx += 1
            if inf_idx == len(inf_kernels):
                latencies.append(clock - image_start)
                inf_idx = 0
        else:
            clock += diag_kernels[diag_idx]
            diag_idx = (diag_idx + 1) % len(diag_kernels)
        turn_inference = not turn_inference

    return CoRunSimResult(
        inference_solo_s=solo,
        inference_corun_s=sum(latencies) / len(latencies),
        diagnosis_image_s=sum(diag_kernels) / diagnosis_batch,
    )
