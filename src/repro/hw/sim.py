"""A "measured" GPU simulator with second-order effects.

The paper's Fig. 21 validates the analytical time model against brute-force
profiling on real hardware; the two differ because real devices have
effects the model ignores.  This simulator stands in for the real device:
it starts from the analytical model and layers on deterministic
second-order effects — per-kernel launch overhead, cache-pressure loss at
large batches, and a small utilization ripple — so that profiling the
simulator (the "best case" of Fig. 21) is genuinely different from
evaluating the analytical model, yet close enough that a good model finds
a near-optimal configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.gpu import network_time, utilization
from repro.hw.specs import GPUSpec
from repro.models.layer_specs import NetworkSpec

__all__ = ["MeasuredGPU"]


@dataclass(frozen=True)
class MeasuredGPU:
    """Deterministic pseudo-hardware built on top of a :class:`GPUSpec`.

    Parameters
    ----------
    gpu:
        The underlying device the analytical model also uses.
    launch_overhead_s:
        Fixed cost per kernel launch (one kernel per layer per batch).
    cache_pressure:
        Relative slowdown per doubling of batch beyond 8 (activations spill
        out of cache on embedded parts).
    ripple:
        Amplitude of a deterministic per-batch utilization ripple (DVFS and
        scheduler artifacts).
    """

    gpu: GPUSpec
    launch_overhead_s: float = 80e-6
    cache_pressure: float = 0.03
    ripple: float = 0.05

    def measure_latency_s(self, network: NetworkSpec, batch: int = 1) -> float:
        """'Profile' one batch: analytical time plus second-order effects."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        base = network_time(network, self.gpu, batch).total_s
        launches = len(network.layers) * self.launch_overhead_s
        pressure = 1.0 + self.cache_pressure * max(0.0, math.log2(batch / 8))
        wiggle = 1.0 + self.ripple * math.sin(batch * 2.39996)  # golden angle
        return base * pressure * wiggle + launches

    def measure_throughput_ips(self, network: NetworkSpec, batch: int = 1) -> float:
        return batch / self.measure_latency_s(network, batch)

    def measure_perf_per_watt(self, network: NetworkSpec, batch: int = 1) -> float:
        timing = network_time(network, self.gpu, batch)
        power = self.gpu.power(timing.mean_utilization)
        return self.measure_throughput_ips(network, batch) / power

    def brute_force_best_batch(
        self,
        network: NetworkSpec,
        *,
        latency_requirement_s: float,
        max_batch: int = 256,
    ) -> int:
        """Exhaustively profile every batch size; return the most
        energy-efficient one meeting the latency requirement (the paper's
        'best case')."""
        best_batch = 0
        best_ppw = -1.0
        for batch in range(1, max_batch + 1):
            if self.measure_latency_s(network, batch) > latency_requirement_s:
                continue
            ppw = self.measure_perf_per_watt(network, batch)
            if ppw > best_ppw:
                best_ppw = ppw
                best_batch = batch
        if best_batch == 0:
            raise ValueError(
                f"{network.name} cannot meet {latency_requirement_s * 1e3:.0f} ms "
                f"on {self.gpu.name} at any batch size"
            )
        return best_batch
