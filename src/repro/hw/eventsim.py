"""Discrete-event simulation of the WSS->NWS pipeline (Fig. 20).

The closed-form pipeline model (Eq. 13) assumes perfectly overlapped
stages.  This simulator executes the pipeline on the shared
:mod:`repro.events` kernel — images arrive, a conv-stage process serves
them one at a time, batches of ``Bsize`` hand off through a
:class:`~repro.events.Store` to a concurrent FCN-stage process — and
measures actual per-image latency and steady-state throughput.  It
validates the analytical model the planner relies on
(``tests/hw/test_eventsim.py`` asserts agreement) and exposes what the
closed form hides: fill/drain transients and per-image latency spread
within a batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events import Simulator, Store
from repro.hw.pipeline import PipelineDesign, pipeline_timing
from repro.hw.specs import FPGASpec
from repro.models.layer_specs import NetworkSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["ImageTrace", "PipelineSimResult", "simulate_pipeline"]


@dataclass(frozen=True)
class ImageTrace:
    """Lifecycle timestamps of one image through the pipeline."""

    index: int
    arrival_s: float
    conv_start_s: float
    conv_done_s: float
    fcn_done_s: float

    @property
    def latency_s(self) -> float:
        """Sojourn time: arrival to FCN completion (includes queueing)."""
        return self.fcn_done_s - self.arrival_s

    @property
    def service_latency_s(self) -> float:
        """Pipeline service time: conv start to FCN completion — the
        quantity Eq. (13) bounds (queueing under backlog excluded)."""
        return self.fcn_done_s - self.conv_start_s


@dataclass
class PipelineSimResult:
    """Outcome of one simulated run."""

    traces: list[ImageTrace] = field(default_factory=list)
    makespan_s: float = 0.0

    @property
    def images(self) -> int:
        return len(self.traces)

    @property
    def throughput_ips(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.images / self.makespan_s

    def steady_state_throughput_ips(self, skip_batches: int, batch: int) -> float:
        """Throughput excluding the first ``skip_batches`` (fill transient)."""
        skip = skip_batches * batch
        if self.images <= skip:
            raise ValueError("not enough images to skip the transient")
        first = self.traces[skip].conv_start_s
        return (self.images - skip) / (self.makespan_s - first)

    @property
    def max_latency_s(self) -> float:
        return max(t.latency_s for t in self.traces)

    @property
    def mean_latency_s(self) -> float:
        return sum(t.latency_s for t in self.traces) / self.images

    @property
    def max_service_latency_s(self) -> float:
        return max(t.service_latency_s for t in self.traces)


def simulate_pipeline(
    design: PipelineDesign,
    inference: NetworkSpec,
    diagnosis: NetworkSpec,
    fpga: FPGASpec,
    *,
    num_images: int = 64,
    arrival_interval_s: float = 0.0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> PipelineSimResult:
    """Run ``num_images`` through the two-stage pipeline.

    ``arrival_interval_s = 0`` models a backlogged source (the conv stage
    is never starved), which is the regime Eq. (13) describes.  Per-image
    conv time and per-batch FCN time come from the same layer models the
    analytical pipeline uses, so any disagreement is purely about stage
    overlap, not about layer costs.

    ``tracer`` records per-image conv spans and per-batch FCN spans at
    kernel virtual time; ``metrics`` accumulates image counts and the
    per-image latency distribution.  Both default to off.
    """
    if num_images < 1:
        raise ValueError("num_images must be >= 1")
    if arrival_interval_s < 0:
        raise ValueError("arrival_interval_s must be >= 0")
    timing = pipeline_timing(design, inference, diagnosis, fpga)
    conv_per_image = timing.conv_stage_s / design.batch_size
    fcn_per_batch = timing.fcn_stage_s
    batch = design.batch_size
    trace = tracer if tracer is not None else Tracer(enabled=False)

    sim = Simulator()
    handoff: Store = Store(sim)
    traces: list[ImageTrace] = []
    num_batches = (num_images + batch - 1) // batch

    def conv_stage():
        pending: list[tuple[int, float, float, float]] = []
        for index in range(num_images):
            arrival = index * arrival_interval_s
            if arrival > sim.now:
                yield sim.timeout(arrival - sim.now)
            conv_start = max(sim.now, arrival)
            yield sim.timeout(conv_per_image)
            trace.span(
                "hw", "conv", conv_start, sim.now, image=index
            )
            pending.append((index, arrival, conv_start, sim.now))
            if len(pending) == batch or index == num_images - 1:
                # Whole batch hands off to the FCN stage together; the
                # unbounded Store lets conv race ahead while FCN drains.
                handoff.put(pending)
                pending = []

    def fcn_stage():
        for batch_index in range(num_batches):
            batch_images = yield handoff.get()
            fcn_start = sim.now
            yield sim.timeout(fcn_per_batch)
            fcn_done = sim.now
            trace.span(
                "hw",
                "fcn",
                fcn_start,
                fcn_done,
                batch=batch_index,
                images=len(batch_images),
            )
            for img_index, img_arrival, img_cstart, img_cdone in batch_images:
                traces.append(
                    ImageTrace(
                        index=img_index,
                        arrival_s=img_arrival,
                        conv_start_s=img_cstart,
                        conv_done_s=img_cdone,
                        fcn_done_s=fcn_done,
                    )
                )

    sim.process(conv_stage())
    sim.process(fcn_stage())
    makespan = sim.run()
    result = PipelineSimResult(traces=traces, makespan_s=makespan)
    if metrics is not None:
        metrics.counter("pipeline.images").inc(result.images)
        metrics.counter("pipeline.batches").inc(num_batches)
        hist = metrics.histogram("pipeline.latency_s")
        for t in result.traces:
            hist.observe(t.latency_s)
    return result
