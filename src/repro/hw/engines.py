"""FPGA convolution-engine cycle models.

Two engine styles from the paper:

* :class:`TmTnEngine` — the classic loop-unrolled engine of Fig. 9/10
  (DianNao / Zhang-FPGA'15 style): ``Tm`` vector dot-product units of width
  ``Tn`` unroll output and input feature maps.  Its utilization is Eq. (4)
  and is independent of batch size, which is why FPGA conv energy-efficiency
  is flat in Fig. 14.
* :class:`PEArrayEngine` — the output-neuron-unrolled engine of Fig. 18
  used by the WSS architecture: a ``Tr x Tc`` grid of PEs, each owning one
  output neuron, with one kernel weight broadcast to all PEs per cycle
  (the second level of weight sharing).  A tile of ``Tr x Tc`` output
  neurons takes ``K x K`` cycles per input map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.layer_specs import LayerSpec

__all__ = ["TmTnEngine", "PEArrayEngine", "square_factors"]


def square_factors(budget: int) -> tuple[int, int]:
    """Most-square (a, b) with ``a*b <= budget`` maximizing a*b.

    Used to shape an engine from a PE/DSP budget.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    best = (1, budget)
    best_area = budget
    root = int(math.isqrt(budget))
    for a in range(root, 0, -1):
        b = budget // a
        if a * b > best_area or (a * b == best_area and abs(a - b) < abs(best[0] - best[1])):
            best = (a, b)
            best_area = a * b
    return best


@dataclass(frozen=True)
class TmTnEngine:
    """Input/output-feature-map unrolled engine (Fig. 10)."""

    tm: int  # output feature maps processed in parallel
    tn: int  # input feature maps processed in parallel

    def __post_init__(self) -> None:
        if min(self.tm, self.tn) < 1:
            raise ValueError("Tm and Tn must be >= 1")

    @property
    def pe_count(self) -> int:
        """Multiply-add units, i.e. DSP slices consumed."""
        return self.tm * self.tn

    @classmethod
    def from_budget(cls, budget: int) -> "TmTnEngine":
        tm, tn = square_factors(budget)
        return cls(tm, tn)

    @classmethod
    def best_for(
        cls, layers: "tuple[LayerSpec, ...] | list[LayerSpec]", budget: int
    ) -> "TmTnEngine":
        """Design-space search: the uniform (Tm, Tn) under the PE budget
        that minimizes total cycles over the given layer set.

        This is the standard cross-layer compromise of Zhang et al.
        (FPGA'15): a single unrolling shape for the whole stack, chosen
        analytically.  Ties break toward fewer PEs.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if not layers:
            raise ValueError("need at least one layer to optimize for")
        best_engine = cls(1, 1)
        best_cycles = float("inf")
        for tm in range(1, budget + 1):
            tn = budget // tm
            if tn < 1:
                break
            engine = cls(tm, tn)
            cycles = sum(
                engine.conv_cycles(spec)
                if spec.kind == "conv"
                else engine.fc_compute_cycles(spec)
                for spec in layers
            )
            if cycles < best_cycles or (
                cycles == best_cycles
                and engine.pe_count < best_engine.pe_count
            ):
                best_cycles = cycles
                best_engine = engine
        return best_engine

    def utilization(self, layer: LayerSpec) -> float:
        """Eq. (4): N*M / (Tn*Tm*ceil(N/Tn)*ceil(M/Tm)) — batch independent."""
        n, m = layer.in_maps, layer.out_maps
        return (n * m) / (
            self.tn * self.tm * math.ceil(n / self.tn) * math.ceil(m / self.tm)
        )

    def conv_cycles(self, layer: LayerSpec, batch: int = 1) -> int:
        """Cycles to compute a CONV layer (loop nest of Fig. 9)."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return (
            math.ceil(layer.out_maps / self.tm)
            * math.ceil(layer.in_maps / self.tn)
            * layer.kernel**2
            * layer.out_rows
            * layer.out_cols
            * batch
        )

    def fc_compute_cycles(self, layer: LayerSpec, batch: int = 1) -> int:
        """Eq. (12) compute term: ceil(N/Tn)*ceil(M/Tm)*Bsize cycles."""
        if layer.kind != "fc":
            raise ValueError(f"{layer.name} is not an FCN layer")
        return (
            math.ceil(layer.in_maps / self.tn)
            * math.ceil(layer.out_maps / self.tm)
            * batch
        )


@dataclass(frozen=True)
class PEArrayEngine:
    """Output-neuron-unrolled engine (Fig. 18, left)."""

    tr: int  # output rows unrolled
    tc: int  # output cols unrolled

    def __post_init__(self) -> None:
        if min(self.tr, self.tc) < 1:
            raise ValueError("Tr and Tc must be >= 1")

    @property
    def pe_count(self) -> int:
        return self.tr * self.tc

    def conv_cycles_per_map(self, layer: LayerSpec) -> int:
        """Cycles for ONE output feature map of a CONV layer.

        Each ``Tr x Tc`` output tile takes ``K*K`` cycles per input map
        (one broadcast weight per cycle), and there are
        ``ceil(R/Tr) * ceil(C/Tc)`` tiles.
        """
        return (
            layer.in_maps
            * layer.kernel**2
            * math.ceil(layer.out_rows / self.tr)
            * math.ceil(layer.out_cols / self.tc)
        )

    def conv_cycles(self, layer: LayerSpec, *, parallel_maps: int = 1) -> int:
        """Eq. (11): cycles for all M output maps when ``parallel_maps``
        engines with identical geometry share the work."""
        if parallel_maps < 1:
            raise ValueError("parallel_maps must be >= 1")
        return math.ceil(layer.out_maps / parallel_maps) * self.conv_cycles_per_map(
            layer
        )

    def utilization(self, layer: LayerSpec) -> float:
        """Fraction of PE-cycles doing useful work (edge-tile waste only)."""
        useful = layer.out_rows * layer.out_cols
        padded = (
            self.pe_count
            * math.ceil(layer.out_rows / self.tr)
            * math.ceil(layer.out_cols / self.tc)
        )
        return useful / padded
