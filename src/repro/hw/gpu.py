"""GPU analytical time / resource model (Section IV-B1 of the paper).

Implements, in order:

* Eq. (2): grid size of the blocked matrix multiply a CONV layer becomes;
* Eq. (3): GPU resource utilization from grid size vs. resident blocks;
* Eq. (5): CONV layer time = ops / (maxOPS x Util);
* Eq. (6)-(8): FCN layer time under the roofline — achieved performance is
  the min of the compute roof and CTM x memory bandwidth;
* Eq. (9): the memory resource model bounding the diagnosis batch size.

Batching enters exactly as the paper describes: it multiplies the data
matrix columns (``R*C -> R*C*Bsize``), which raises grid size and hence
utilization, and it amortizes FCN weight traffic across the batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.layer_specs import BYTES_PER_VALUE, LayerSpec, NetworkSpec
from repro.hw.specs import GPUSpec

__all__ = [
    "grid_size",
    "utilization",
    "conv_layer_time",
    "fc_layer_time",
    "layer_time",
    "LayerTiming",
    "NetworkTiming",
    "network_time",
    "memory_required",
    "max_batch_under_memory",
    "perf_per_watt",
]


def grid_size(layer: LayerSpec, gpu: GPUSpec, batch: int = 1) -> int:
    """Eq. (2): thread blocks needed for the layer's output matrix.

    The output matrix is M x (R*C*Bsize); each block computes a
    ``tile_m x tile_n`` sub-matrix.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    cols = layer.out_rows * layer.out_cols * batch
    return math.ceil(layer.out_maps / gpu.tile_m) * math.ceil(cols / gpu.tile_n)


def utilization(layer: LayerSpec, gpu: GPUSpec, batch: int = 1) -> float:
    """Eq. (3): fraction of compute capacity the grid actually occupies."""
    grid = grid_size(layer, gpu, batch)
    waves = math.ceil(grid / gpu.max_blocks)
    return grid / (gpu.max_blocks * waves)


def conv_layer_time(layer: LayerSpec, gpu: GPUSpec, batch: int = 1) -> float:
    """Eq. (5): CONV layer runtime in seconds for a batch."""
    util = utilization(layer, gpu, batch)
    return layer.ops * batch / (gpu.max_ops * util)


def _fc_data_access_bytes(layer: LayerSpec, batch: int) -> int:
    """Din + Dw + Dout for an FCN layer (K=R=C=1), weights read once."""
    d_in = layer.in_maps * batch
    d_w = layer.out_maps * layer.in_maps
    d_out = layer.out_maps * batch
    return (d_in + d_w + d_out) * BYTES_PER_VALUE


def fc_layer_time(layer: LayerSpec, gpu: GPUSpec, batch: int = 1) -> float:
    """Eqs. (6)-(8): FCN layer runtime under the roofline model."""
    if layer.kind != "fc":
        raise ValueError(f"{layer.name} is not an FCN layer")
    util = utilization(layer, gpu, batch)
    compute_roof = gpu.max_ops * util
    total_ops = layer.ops * batch
    ctm = total_ops / _fc_data_access_bytes(layer, batch)  # ops per byte
    achieved = min(compute_roof, ctm * gpu.mem_bandwidth_bps)
    return total_ops / achieved


def layer_time(layer: LayerSpec, gpu: GPUSpec, batch: int = 1) -> float:
    """Runtime of any layer on the GPU for one batch."""
    if layer.kind == "conv":
        return conv_layer_time(layer, gpu, batch)
    return fc_layer_time(layer, gpu, batch)


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer result of a network timing sweep."""

    layer: LayerSpec
    time_s: float
    utilization: float


@dataclass(frozen=True)
class NetworkTiming:
    """Whole-network timing at one batch size."""

    network: NetworkSpec
    batch: int
    layers: tuple[LayerTiming, ...]

    @property
    def total_s(self) -> float:
        return sum(t.time_s for t in self.layers)

    @property
    def conv_s(self) -> float:
        return sum(t.time_s for t in self.layers if t.layer.kind == "conv")

    @property
    def fc_s(self) -> float:
        return sum(t.time_s for t in self.layers if t.layer.kind == "fc")

    @property
    def latency_s(self) -> float:
        """Time to produce results for the whole batch."""
        return self.total_s

    @property
    def throughput_ips(self) -> float:
        """Images per second at this batch size."""
        return self.batch / self.total_s

    @property
    def mean_utilization(self) -> float:
        """Time-weighted average utilization (drives the power model)."""
        total = self.total_s
        return sum(t.time_s * t.utilization for t in self.layers) / total


def network_time(
    network: NetworkSpec, gpu: GPUSpec, batch: int = 1
) -> NetworkTiming:
    """Analytical runtime of every layer at the given batch size."""
    timings = tuple(
        LayerTiming(
            layer=spec,
            time_s=layer_time(spec, gpu, batch),
            utilization=utilization(spec, gpu, batch),
        )
        for spec in network.layers
    )
    return NetworkTiming(network=network, batch=batch, layers=timings)


def memory_required(network: NetworkSpec, batch: int = 1) -> int:
    """Eq. (9) footprint: all weights resident + the largest layer's
    im2col-expanded input and output activations at this batch size."""
    weights = network.weight_bytes
    peak_act = max(
        spec.input_bytes(batch) + spec.output_bytes(batch)
        for spec in network.layers
    )
    return weights + peak_act


def max_batch_under_memory(
    network: NetworkSpec, gpu: GPUSpec, *, limit: int = 4096
) -> int:
    """Largest batch size satisfying the Eq. (9) memory constraint."""
    best = 0
    for batch in range(1, limit + 1):
        if memory_required(network, batch) > gpu.mem_capacity_bytes:
            break
        best = batch
    if best == 0:
        raise ValueError(
            f"{network.name} does not fit on {gpu.name} even at batch 1"
        )
    return best


def perf_per_watt(
    network: NetworkSpec, gpu: GPUSpec, batch: int = 1
) -> float:
    """Images per second per watt — the paper's energy-efficiency metric."""
    timing = network_time(network, gpu, batch)
    return timing.throughput_ips / gpu.power(timing.mean_utilization)
