"""GPU co-running interference model (Fig. 16).

When inference and diagnosis kernels share one GPU, the hardware
time-multiplexes them: there is no spatial partitioning, so each task's
kernels wait behind the other's.  With fair scheduling over a window, a
task's effective latency scales with the total demand on the device:

    slowdown(inference) = (demand_inf + demand_diag) / demand_inf

where demand is device-seconds of work submitted per unit time.  The
diagnosis task's 9 quarter-load patches put roughly 2.25x the inference
conv work on the device, which is what drives the paper's "up to 3X"
inference slowdown.  The FPGA avoids this entirely by giving each task
dedicated engines (the co-running architectures of :mod:`repro.hw.archs`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.gpu import network_time
from repro.hw.specs import GPUSpec
from repro.models.layer_specs import NetworkSpec

__all__ = ["CoRunResult", "co_running_latency"]


@dataclass(frozen=True)
class CoRunResult:
    """Latencies of the co-running tasks on a shared GPU."""

    inference_solo_s: float
    inference_corun_s: float
    diagnosis_solo_s: float
    diagnosis_corun_s: float

    @property
    def inference_slowdown(self) -> float:
        return self.inference_corun_s / self.inference_solo_s

    @property
    def diagnosis_slowdown(self) -> float:
        return self.diagnosis_corun_s / self.diagnosis_solo_s


def co_running_latency(
    inference: NetworkSpec,
    diagnosis: NetworkSpec,
    gpu: GPUSpec,
    *,
    inference_batch: int = 1,
    diagnosis_batch: int = 1,
    num_patches: int = 9,
    diagnosis_duty: float = 1.0,
) -> CoRunResult:
    """Latency of each task when both run on one GPU.

    ``diagnosis_duty`` in [0, 1] scales how continuously the diagnosis task
    keeps the device busy (1 = always has work queued, the worst case shown
    in Fig. 16).  Each diagnosis *image* costs ``num_patches`` trunk passes
    plus one head pass.
    """
    if not 0.0 <= diagnosis_duty <= 1.0:
        raise ValueError("diagnosis_duty must be in [0, 1]")
    inf_solo = network_time(inference, gpu, inference_batch).total_s
    diag_timing = network_time(diagnosis, gpu, diagnosis_batch)
    # Conv trunk runs once per patch; the FCN head once per image.
    diag_solo = diag_timing.conv_s * num_patches + diag_timing.fc_s

    inf_demand = inf_solo / inference_batch
    diag_demand = diagnosis_duty * diag_solo / diagnosis_batch
    if inf_demand <= 0:
        raise ValueError("inference demand must be positive")
    inf_slow = (inf_demand + diag_demand) / inf_demand
    diag_slow = (
        (inf_demand + diag_demand) / diag_demand if diag_demand > 0 else 1.0
    )
    return CoRunResult(
        inference_solo_s=inf_solo,
        inference_corun_s=inf_solo * inf_slow,
        diagnosis_solo_s=diag_solo,
        diagnosis_corun_s=diag_solo * diag_slow,
    )
