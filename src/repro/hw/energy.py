"""Energy accounting for node compute, Cloud training, and data transfer.

Three energy sinks matter to the paper's end-to-end claims (Fig. 25,
Table II): Cloud training energy (Titan X device-seconds), node compute
energy (TX1 / FPGA device-seconds), and network transfer energy for the
images uploaded to the Cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.specs import FPGASpec, GPUSpec

__all__ = [
    "gpu_energy_j",
    "fpga_energy_j",
    "TrainingCostModel",
]


def gpu_energy_j(gpu: GPUSpec, busy_s: float, utilization: float) -> float:
    """Joules spent by a GPU running for ``busy_s`` at the given utilization."""
    if busy_s < 0:
        raise ValueError("busy time must be >= 0")
    return gpu.power(utilization) * busy_s


def fpga_energy_j(fpga: FPGASpec, busy_s: float) -> float:
    """Joules spent by the FPGA (flat board power)."""
    if busy_s < 0:
        raise ValueError("busy time must be >= 0")
    return fpga.power_w * busy_s


@dataclass(frozen=True)
class TrainingCostModel:
    """Cloud training time and energy from op counts.

    Training one image for one epoch costs roughly 3x the inference ops
    (forward + input-gradient + weight-gradient passes); layers below a
    frozen prefix cost only the forward pass, and with feature caching the
    prefix runs once per image instead of once per epoch.

    ``efficiency`` is the sustained fraction of the training GPU's peak the
    workload achieves (training kernels on Maxwell-class hardware typically
    reach ~50%).
    """

    device: GPUSpec
    efficiency: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def sustained_ops(self) -> float:
        return self.device.max_ops * self.efficiency

    def training_time_s(
        self,
        *,
        images: int,
        epochs: int,
        forward_ops: float,
        trainable_forward_ops: float | None = None,
    ) -> float:
        """Seconds to fine-tune on ``images`` for ``epochs``.

        ``forward_ops`` is the full network's per-image forward op count;
        ``trainable_forward_ops`` the portion belonging to trainable layers
        (defaults to the whole network).  Frozen-prefix features are
        computed once per image, trainable layers run 3x per epoch.
        """
        if images < 0 or epochs < 0:
            raise ValueError("images and epochs must be >= 0")
        if forward_ops < 0:
            raise ValueError("forward_ops must be >= 0")
        trainable = (
            forward_ops if trainable_forward_ops is None else trainable_forward_ops
        )
        if trainable > forward_ops:
            raise ValueError("trainable ops cannot exceed total forward ops")
        frozen = forward_ops - trainable
        total_ops = images * (frozen + 3.0 * trainable * epochs)
        return total_ops / self.sustained_ops

    def training_energy_j(self, training_time_s: float) -> float:
        if training_time_s < 0:
            raise ValueError("training time must be >= 0")
        return self.device.power(self.efficiency) * training_time_s
