"""FPGA layer-time models: Eqs. (4), (11), (12) and the FCN batch
optimization of Fig. 13.

The FCN story on FPGA: without the batch loop, filter weights are re-read
from off-chip for every input sample, so FCN layers are memory-bound at any
batch size and energy-efficiency is flat.  With the batch loop (Fig. 13,
green), weights are fetched once per batch and reused across the ``Bsize``
samples — the same reuse the GPU gets from matrix-matrix multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.engines import TmTnEngine
from repro.hw.specs import FPGASpec
from repro.models.layer_specs import BYTES_PER_VALUE, LayerSpec, NetworkSpec

__all__ = [
    "conv_layer_time",
    "fc_layer_time",
    "fc_data_access_bytes",
    "FPGANetworkTiming",
    "network_time",
    "perf_per_watt",
]


def conv_layer_time(
    layer: LayerSpec, engine: TmTnEngine, fpga: FPGASpec, batch: int = 1
) -> float:
    """CONV layer runtime in seconds on a Tm/Tn engine."""
    return engine.conv_cycles(layer, batch) / fpga.frequency_hz


def fc_data_access_bytes(
    layer: LayerSpec, batch: int, *, batch_optimized: bool
) -> int:
    """Off-chip traffic of an FCN layer.

    ``batch_optimized`` is the Fig. 13 batch loop: weights once per batch
    instead of once per sample.
    """
    if layer.kind != "fc":
        raise ValueError(f"{layer.name} is not an FCN layer")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    weight_reads = 1 if batch_optimized else batch
    values = (
        layer.in_maps * batch
        + layer.weight_count * weight_reads
        + layer.out_maps * batch
    )
    return values * BYTES_PER_VALUE


def fc_layer_time(
    layer: LayerSpec,
    engine: TmTnEngine,
    fpga: FPGASpec,
    batch: int = 1,
    *,
    batch_optimized: bool = True,
) -> float:
    """Eq. (12): max of compute and memory time for an FCN layer."""
    compute_s = engine.fc_compute_cycles(layer, batch) / fpga.frequency_hz
    memory_s = (
        fc_data_access_bytes(layer, batch, batch_optimized=batch_optimized)
        / fpga.mem_bandwidth_bps
    )
    return max(compute_s, memory_s)


@dataclass(frozen=True)
class FPGANetworkTiming:
    """Whole-network FPGA timing at one batch size (single Tm/Tn engine,
    layers processed back-to-back — the Single-running-style baseline used
    for the Fig. 11/14 characterization)."""

    network: NetworkSpec
    batch: int
    conv_s: float
    fc_s: float

    @property
    def total_s(self) -> float:
        return self.conv_s + self.fc_s

    @property
    def throughput_ips(self) -> float:
        return self.batch / self.total_s


def network_time(
    network: NetworkSpec,
    engine: TmTnEngine,
    fpga: FPGASpec,
    batch: int = 1,
    *,
    batch_optimized: bool = True,
) -> FPGANetworkTiming:
    conv_s = sum(
        conv_layer_time(spec, engine, fpga, batch)
        for spec in network.conv_layers
    )
    fc_s = sum(
        fc_layer_time(spec, engine, fpga, batch, batch_optimized=batch_optimized)
        for spec in network.fc_layers
    )
    return FPGANetworkTiming(network=network, batch=batch, conv_s=conv_s, fc_s=fc_s)


def perf_per_watt(
    network: NetworkSpec,
    engine: TmTnEngine,
    fpga: FPGASpec,
    batch: int = 1,
    *,
    batch_optimized: bool = True,
) -> float:
    """Images/s/W on the FPGA (flat power model, per the paper's boards)."""
    timing = network_time(
        network, engine, fpga, batch, batch_optimized=batch_optimized
    )
    return timing.throughput_ips / fpga.power_w
