"""Device specifications for the platforms the paper characterizes.

Constants come from public datasheets for the paper's testbed devices:
NVIDIA Jetson TX1 (the mobile-GPU IoT platform), Xilinx Virtex-7 VX690T on
the VC709 board (the FPGA IoT platform), and NVIDIA Titan X Maxwell (the
Cloud training GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "FPGASpec", "TX1", "TITAN_X", "VX690T"]


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of the paper's GPU analytical model (Eqs. 2-3, 5-8).

    ``tile_m`` x ``tile_n`` is the output sub-matrix computed per thread
    block in the Volkov-Demmel style matrix multiply the paper's Fig. 8
    assumes; ``max_blocks`` is how many blocks the device can keep resident
    simultaneously.
    """

    name: str
    frequency_hz: float
    cuda_cores: int
    max_blocks: int
    tile_m: int
    tile_n: int
    mem_bandwidth_bps: float
    mem_capacity_bytes: float
    idle_power_w: float
    peak_power_w: float

    def __post_init__(self) -> None:
        if min(self.frequency_hz, self.cuda_cores, self.max_blocks,
               self.tile_m, self.tile_n, self.mem_bandwidth_bps,
               self.mem_capacity_bytes) <= 0:
            raise ValueError(f"{self.name}: non-positive spec value")
        if not 0 <= self.idle_power_w <= self.peak_power_w:
            raise ValueError(f"{self.name}: inconsistent power range")

    @property
    def max_ops(self) -> float:
        """Eq. (7) with Util=1: peak ops/s (one FMA = 2 ops per core-cycle)."""
        return 2.0 * self.frequency_hz * self.cuda_cores

    def power(self, utilization: float) -> float:
        """Board power at a given average utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        return self.idle_power_w + (self.peak_power_w - self.idle_power_w) * utilization


@dataclass(frozen=True)
class FPGASpec:
    """Parameters of the FPGA models (Eqs. 4, 10-13)."""

    name: str
    frequency_hz: float
    dsp_slices: int
    bram_bytes: float
    mem_bandwidth_bps: float
    power_w: float

    def __post_init__(self) -> None:
        if min(self.frequency_hz, self.dsp_slices, self.bram_bytes,
               self.mem_bandwidth_bps, self.power_w) <= 0:
            raise ValueError(f"{self.name}: non-positive spec value")


#: NVIDIA Jetson TX1: 256 Maxwell cores @ ~1 GHz (512 GFLOP/s fp32),
#: 25.6 GB/s LPDDR4, 4 GB shared (about 2.5 GB usable for the GPU workload).
TX1 = GPUSpec(
    name="NVIDIA Jetson TX1",
    frequency_hz=0.998e9,
    cuda_cores=256,
    max_blocks=32,  # 2 SMs x 16 resident blocks
    tile_m=32,
    tile_n=32,
    mem_bandwidth_bps=25.6e9,
    mem_capacity_bytes=2.5 * 1024**3,
    idle_power_w=4.0,
    peak_power_w=15.0,
)

#: NVIDIA Titan X (Maxwell): 3072 cores @ 1.075 GHz (6.6 TFLOP/s fp32),
#: 336 GB/s GDDR5, 12 GB, 250 W TDP.  The Cloud training device.
TITAN_X = GPUSpec(
    name="NVIDIA Titan X",
    frequency_hz=1.075e9,
    cuda_cores=3072,
    max_blocks=384,  # 24 SMs x 16 resident blocks
    tile_m=64,
    tile_n=64,
    mem_bandwidth_bps=336e9,
    mem_capacity_bytes=12 * 1024**3,
    idle_power_w=15.0,
    peak_power_w=250.0,
)

#: Xilinx Virtex-7 VX690T on the VC709 board: 3600 DSP slices, ~53 Mb BRAM,
#: DDR3 SODIMM at ~12.8 GB/s, running CNN designs at 150 MHz.
VX690T = FPGASpec(
    name="Xilinx Virtex-7 VX690T",
    frequency_hz=150e6,
    dsp_slices=3600,
    bram_bytes=6.6e6,
    mem_bandwidth_bps=12.8e9,
    power_w=25.0,
)
