"""Co-running CONV architectures: NWS, WS, and the paper's two-level
weight-shared WSS (Section IV-B2, Figs. 17-18, evaluated in Fig. 22).

All three are modeled at the same total PE (DSP) budget and process the
inference task's conv stack together with the diagnosis task's 9 patch
stacks, layer by layer: weights for a layer are loaded from off-chip first,
then the layer computes (the protocol of the Fig. 22 experiment).

* **NWS** (no weight sharing): one large Tm/Tn engine time-multiplexes the
  two tasks; each task's pass fetches its own copy of the layer weights
  (even for layers whose weights are logically identical).
* **WS** (Fig. 17): ten uniform Tm/Tn engines — one for inference, one per
  diagnosis patch — running concurrently, each fed by a dedicated or shared
  weight source.  Uniform unrolling leaves the diagnosis engines idle ~75%
  of cycles, because the inference task carries ~4x the per-patch load.
* **WSS** (Fig. 18): output-neuron-unrolled PE-array engines sized
  proportionally to load — a ``Tr x Tc`` inference engine plus nine
  ``Tr/2 x Tc/2`` patch engines — replicated ``group_size`` times to
  generate multiple output maps in parallel.  Weight sharing happens at two
  levels: across engines (shared layers fetched once for both tasks) and
  inside each engine (one weight broadcast to every PE per cycle).

Weight-traffic model per layer:

=============  ======================  =====================
architecture   shared layer            unshared layer
=============  ======================  =====================
NWS            2x fetch (both passes)  2x fetch
WS / WSS       1x fetch                2x fetch (IW + DW)
=============  ======================  =====================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.engines import PEArrayEngine, TmTnEngine, square_factors
from repro.hw.specs import FPGASpec
from repro.models.layer_specs import LayerSpec, NetworkSpec

__all__ = [
    "ConvRuntime",
    "CoRunningArch",
    "NWSArch",
    "WSArch",
    "WSSArch",
    "NUM_DIAGNOSIS_ENGINES",
]

#: one engine per jigsaw patch
NUM_DIAGNOSIS_ENGINES = 9

#: inference engine PE share vs one diagnosis engine (4:1 load ratio)
_INFERENCE_SHARE = 4


@dataclass(frozen=True)
class ConvRuntime:
    """Timing of a full conv stack on a co-running architecture."""

    compute_s: float
    weight_access_s: float
    #: average fraction of idle PE-cycles in the diagnosis engines
    diagnosis_idle_fraction: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.weight_access_s


def _check_paired(inference: NetworkSpec, diagnosis: NetworkSpec) -> None:
    if len(inference.conv_layers) != len(diagnosis.conv_layers):
        raise ValueError(
            "inference and diagnosis conv stacks must have equal depth"
        )
    for inf, diag in zip(inference.conv_layers, diagnosis.conv_layers):
        if (inf.out_maps, inf.in_maps, inf.kernel) != (
            diag.out_maps,
            diag.in_maps,
            diag.kernel,
        ):
            raise ValueError(
                f"layer {inf.name}: filter shapes differ between tasks"
            )


def _weight_access_s(
    inference: NetworkSpec,
    shared_depth: int,
    fpga: FPGASpec,
    *,
    always_double: bool,
) -> float:
    """Off-chip weight-fetch time for the conv stack."""
    total_bytes = 0
    for i, layer in enumerate(inference.conv_layers):
        shared = (not always_double) and i < shared_depth
        total_bytes += layer.weight_bytes * (1 if shared else 2)
    return total_bytes / fpga.mem_bandwidth_bps


class CoRunningArch:
    """Common interface of the three co-running conv architectures."""

    name: str

    @property
    def pe_count(self) -> int:
        raise NotImplementedError

    def conv_runtime(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        fpga: FPGASpec,
        *,
        shared_depth: int = 3,
    ) -> ConvRuntime:
        raise NotImplementedError


class NWSArch(CoRunningArch):
    """One big Tm/Tn engine time-multiplexing both tasks, no sharing."""

    name = "NWS"

    def __init__(
        self,
        pe_budget: int,
        *,
        shape_for: tuple[LayerSpec, ...] | None = None,
    ) -> None:
        self.engine = (
            TmTnEngine.best_for(shape_for, pe_budget)
            if shape_for
            else TmTnEngine.from_budget(pe_budget)
        )

    @property
    def pe_count(self) -> int:
        return self.engine.pe_count

    def conv_runtime(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        fpga: FPGASpec,
        *,
        shared_depth: int = 3,
    ) -> ConvRuntime:
        _check_paired(inference, diagnosis)
        cycles = 0
        for inf, diag in zip(inference.conv_layers, diagnosis.conv_layers):
            cycles += self.engine.conv_cycles(inf)
            # 9 patches processed back-to-back after the inference pass.
            cycles += NUM_DIAGNOSIS_ENGINES * self.engine.conv_cycles(diag)
        return ConvRuntime(
            compute_s=cycles / fpga.frequency_hz,
            weight_access_s=_weight_access_s(
                inference, shared_depth, fpga, always_double=True
            ),
            diagnosis_idle_fraction=0.0,  # time-multiplexed, never co-idle
        )


class WSArch(CoRunningArch):
    """Ten uniform engines with a shared weight source (Fig. 17)."""

    name = "WS"

    def __init__(
        self,
        pe_budget: int,
        *,
        shape_for: tuple[LayerSpec, ...] | None = None,
    ) -> None:
        per_engine = pe_budget // (1 + NUM_DIAGNOSIS_ENGINES)
        if per_engine < 1:
            raise ValueError("PE budget too small for 10 engines")
        self.engine = (
            TmTnEngine.best_for(shape_for, per_engine)
            if shape_for
            else TmTnEngine.from_budget(per_engine)
        )

    @property
    def pe_count(self) -> int:
        return self.engine.pe_count * (1 + NUM_DIAGNOSIS_ENGINES)

    def conv_runtime(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        fpga: FPGASpec,
        *,
        shared_depth: int = 3,
    ) -> ConvRuntime:
        _check_paired(inference, diagnosis)
        cycles = 0
        idle_weighted = 0.0
        for inf, diag in zip(inference.conv_layers, diagnosis.conv_layers):
            inf_cycles = self.engine.conv_cycles(inf)
            diag_cycles = self.engine.conv_cycles(diag)
            # Engines run concurrently; the layer takes the slower task.
            layer_cycles = max(inf_cycles, diag_cycles)
            cycles += layer_cycles
            idle_weighted += layer_cycles * (1.0 - diag_cycles / layer_cycles)
        return ConvRuntime(
            compute_s=cycles / fpga.frequency_hz,
            weight_access_s=_weight_access_s(
                inference, shared_depth, fpga, always_double=False
            ),
            diagnosis_idle_fraction=idle_weighted / cycles,
        )


class WSSArch(CoRunningArch):
    """Two-level weight-shared architecture (Fig. 18).

    Engine sizes are proportional to task load: the inference engine gets
    4 PE shares, each of the nine diagnosis engines 1 share, and the whole
    13-share unit is replicated ``group_size`` times (the WSS Group of
    Fig. 19) to produce ``group_size`` output maps in parallel.
    """

    name = "WSS"

    def __init__(
        self,
        pe_budget: int,
        *,
        inference_tile: int = 14,
        shape_for: tuple[LayerSpec, ...] | None = None,
    ) -> None:
        del shape_for  # PE-array geometry is load-proportional, not layer-tuned
        if inference_tile % 2:
            raise ValueError("inference_tile must be even (diagnosis uses half)")
        self.inference_engine = PEArrayEngine(inference_tile, inference_tile)
        half = inference_tile // 2
        self.diagnosis_engine = PEArrayEngine(half, half)
        unit = (
            self.inference_engine.pe_count
            + NUM_DIAGNOSIS_ENGINES * self.diagnosis_engine.pe_count
        )
        self.group_size = pe_budget // unit
        if self.group_size < 1:
            raise ValueError(
                f"PE budget {pe_budget} below one WSS unit ({unit} PEs)"
            )

    @property
    def pe_count(self) -> int:
        unit = (
            self.inference_engine.pe_count
            + NUM_DIAGNOSIS_ENGINES * self.diagnosis_engine.pe_count
        )
        return unit * self.group_size

    def conv_runtime(
        self,
        inference: NetworkSpec,
        diagnosis: NetworkSpec,
        fpga: FPGASpec,
        *,
        shared_depth: int = 3,
    ) -> ConvRuntime:
        _check_paired(inference, diagnosis)
        cycles = 0
        idle_weighted = 0.0
        for inf, diag in zip(inference.conv_layers, diagnosis.conv_layers):
            inf_cycles = self.inference_engine.conv_cycles(
                inf, parallel_maps=self.group_size
            )
            diag_cycles = self.diagnosis_engine.conv_cycles(
                diag, parallel_maps=self.group_size
            )
            layer_cycles = max(inf_cycles, diag_cycles)
            cycles += layer_cycles
            idle_weighted += layer_cycles * (1.0 - diag_cycles / layer_cycles)
        return ConvRuntime(
            compute_s=cycles / fpga.frequency_hz,
            weight_access_s=_weight_access_s(
                inference, shared_depth, fpga, always_double=False
            ),
            diagnosis_idle_fraction=idle_weighted / cycles,
        )
