"""WSS->NWS pipeline model (Fig. 19-20, Eqs. 10, 13, 14) and the
throughput-vs-latency search of Fig. 23.

The overall In-situ AI architecture is a two-stage pipeline: a conv stage
(WSS Group, or a baseline co-running architecture) and an FCN stage (a
Tm/Tn NWS unit, optionally with the Fig. 13 batch loop).  FCN batching only
pays off when the stage processes ``Bsize`` images at once, so the conv
stage runs ``Bsize`` images back-to-back per pipeline round and the total
latency is Eq. (13):

    T = 2 * max(T_conv_all * Bsize, T_fcn_all(Bsize))

Given an end-user latency requirement (Eq. 14), the planner searches the
DSP split between stages and the batch size for the maximum throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.archs import CoRunningArch, NWSArch, WSArch, WSSArch
from repro.hw.engines import TmTnEngine
from repro.hw.fpga import fc_layer_time
from repro.hw.specs import FPGASpec
from repro.models.layer_specs import NetworkSpec

__all__ = [
    "PipelineDesign",
    "PipelineTiming",
    "pipeline_timing",
    "best_design",
    "ARCH_FACTORIES",
]

#: fraction of the DSP budget tried for the conv stage during the search
_CONV_SPLITS = (0.5, 0.6, 0.7, 0.8, 0.9)

#: architecture name -> (conv-arch factory, FCN batch loop enabled)
ARCH_FACTORIES = {
    "NWS": (NWSArch, False),
    "NWS-batch": (NWSArch, True),
    "WS": (WSArch, True),
    "WSS-NWS": (WSSArch, True),
}


@dataclass(frozen=True)
class PipelineDesign:
    """A concrete two-stage design: conv architecture + FCN engine + batch.

    ``include_diagnosis_fcn`` controls whether the diagnosis head occupies
    the FCN stage on the critical path.  The diagnosis task is
    latency-insensitive (Section III-C2), so by default its head is
    scheduled into pipeline slack and only the inference FCN layers gate
    the latency/throughput of the design.
    """

    arch_name: str
    conv_arch: CoRunningArch
    fcn_engine: TmTnEngine
    batch_size: int
    fcn_batch_optimized: bool
    shared_depth: int = 3
    include_diagnosis_fcn: bool = False

    @property
    def dsp_used(self) -> int:
        """Eq. (10) left-hand side."""
        return self.conv_arch.pe_count + self.fcn_engine.pe_count


@dataclass(frozen=True)
class PipelineTiming:
    """Evaluated timing of one pipeline design."""

    design: PipelineDesign
    conv_stage_s: float  # conv time for Bsize images (T_All_CONV * Bsize)
    fcn_stage_s: float  # FCN time for the batch (T_All_FCN)

    @property
    def period_s(self) -> float:
        """Pipeline initiation interval for one batch."""
        return max(self.conv_stage_s, self.fcn_stage_s)

    @property
    def latency_s(self) -> float:
        """Eq. (13): two pipeline stages deep."""
        return 2.0 * self.period_s

    @property
    def throughput_ips(self) -> float:
        return self.design.batch_size / self.period_s

    def diagnosis_fcn_sustainable(
        self,
        diagnosis: NetworkSpec,
        fpga: FPGASpec,
    ) -> bool:
        """Whether the deferred diagnosis head fits in pipeline slack.

        When the diagnosis FCN is kept off the critical path, it runs in
        the FCN stage's idle time (``period - fcn_stage``).  Returns True
        when one round's slack covers the batch's diagnosis-head work, so
        diagnosis keeps up with acquisition indefinitely.
        """
        if self.design.include_diagnosis_fcn:
            return True
        slack = self.period_s - self.fcn_stage_s
        diag_fcn = sum(
            fc_layer_time(
                spec,
                self.design.fcn_engine,
                fpga,
                self.design.batch_size,
                batch_optimized=self.design.fcn_batch_optimized,
            )
            for spec in diagnosis.fc_layers
        )
        return diag_fcn <= slack + 1e-12


def pipeline_timing(
    design: PipelineDesign,
    inference: NetworkSpec,
    diagnosis: NetworkSpec,
    fpga: FPGASpec,
) -> PipelineTiming:
    """Evaluate Eq. (13) for a design.

    The conv stage processes both tasks' conv stacks per image; the FCN
    stage serves both tasks' FCN layers for the whole batch (the NWS unit
    of Fig. 19 chooses inputs from the inference and diagnosis buffers).
    """
    conv_rt = design.conv_arch.conv_runtime(
        inference, diagnosis, fpga, shared_depth=design.shared_depth
    )
    conv_stage = conv_rt.total_s * design.batch_size
    fcn_specs = inference.fc_layers
    if design.include_diagnosis_fcn:
        fcn_specs = fcn_specs + diagnosis.fc_layers
    fcn_stage = 0.0
    for spec in fcn_specs:
        fcn_stage += fc_layer_time(
            spec,
            design.fcn_engine,
            fpga,
            design.batch_size,
            batch_optimized=design.fcn_batch_optimized,
        )
    return PipelineTiming(
        design=design, conv_stage_s=conv_stage, fcn_stage_s=fcn_stage
    )


def _designs_for(
    arch_name: str,
    inference: NetworkSpec,
    fpga: FPGASpec,
    batch_size: int,
    shared_depth: int,
):
    """Yield candidate designs across DSP splits for one architecture."""
    factory, batch_opt = ARCH_FACTORIES[arch_name]
    for split in _CONV_SPLITS:
        conv_budget = int(fpga.dsp_slices * split)
        fcn_budget = fpga.dsp_slices - conv_budget
        try:
            conv_arch = factory(conv_budget, shape_for=inference.conv_layers)
        except ValueError:
            continue
        fcn_engine = TmTnEngine.best_for(inference.fc_layers, fcn_budget)
        design = PipelineDesign(
            arch_name=arch_name,
            conv_arch=conv_arch,
            fcn_engine=fcn_engine,
            batch_size=batch_size,
            fcn_batch_optimized=batch_opt,
            shared_depth=shared_depth,
        )
        if design.dsp_used <= fpga.dsp_slices:
            yield design


def best_design(
    arch_name: str,
    inference: NetworkSpec,
    diagnosis: NetworkSpec,
    fpga: FPGASpec,
    *,
    latency_requirement_s: float,
    max_batch: int = 128,
    shared_depth: int = 3,
) -> PipelineTiming | None:
    """Maximum-throughput design meeting Eq. (14), or None if impossible.

    Searches batch sizes 1..max_batch (powers of two plus neighbors) and
    the DSP split between stages.
    """
    if arch_name not in ARCH_FACTORIES:
        raise KeyError(
            f"unknown architecture {arch_name!r}; "
            f"available: {sorted(ARCH_FACTORIES)}"
        )
    if latency_requirement_s <= 0:
        raise ValueError("latency requirement must be positive")
    candidates = sorted(
        {
            b
            for b in [2**i for i in range(int(math.log2(max_batch)) + 1)]
            + [3, 6, 12, 24, 48, 96]
            if 1 <= b <= max_batch
        }
    )
    best: PipelineTiming | None = None
    for batch_size in candidates:
        for design in _designs_for(
            arch_name, inference, fpga, batch_size, shared_depth
        ):
            timing = pipeline_timing(design, inference, diagnosis, fpga)
            if timing.latency_s > latency_requirement_s:
                continue
            if best is None or timing.throughput_ips > best.throughput_ips:
                best = timing
    return best
