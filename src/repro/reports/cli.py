"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates the analytical tables/figures directly from the hardware
models, without pytest.  Training-based experiments (Table I, Figs. 5-7,
Table II, Fig. 25) run through the benchmark suite instead:
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.reports import figures
from repro.reports.tables import format_table

__all__ = ["main"]


def _render_fig11() -> str:
    rows = figures.fig11_rows()
    return format_table(
        "Fig. 11 — AlexNet latency & perf/W vs batch",
        ["batch", "GPU ms", "GPU img/s/W", "FPGA ms", "FPGA img/s/W"],
        [
            [
                r["batch"],
                f"{r['gpu_latency_ms']:.1f}",
                f"{r['gpu_ppw']:.2f}",
                f"{r['fpga_latency_ms']:.1f}",
                f"{r['fpga_ppw']:.2f}",
            ]
            for r in rows
        ],
    )


def _render_fig12() -> str:
    rows = figures.fig12_rows()
    return format_table(
        "Fig. 12 — FCN share of inference runtime",
        ["batch", "GPU FCN %", "FPGA FCN %"],
        [
            [r["batch"], f"{r['gpu_fc_frac']:.1%}", f"{r['fpga_fc_frac']:.1%}"]
            for r in rows
        ],
    )


def _render_fig14() -> str:
    rows = figures.fig14_rows()
    return format_table(
        "Fig. 13-14 — perf/W (img/s/W) by layer type",
        ["batch", "GPU conv", "GPU fc", "FPGA conv", "FPGA fc (no opt)",
         "FPGA fc (batch)", "GPU all", "FPGA all"],
        [
            [
                r["batch"],
                f"{r['gpu_conv']:.1f}",
                f"{r['gpu_fc']:.1f}",
                f"{r['fpga_conv']:.1f}",
                f"{r['fpga_fc_nobatch']:.1f}",
                f"{r['fpga_fc_batch']:.1f}",
                f"{r['gpu_all']:.1f}",
                f"{r['fpga_all']:.1f}",
            ]
            for r in rows
        ],
    )


def _render_fig15() -> str:
    rows = figures.fig15_rows()
    return format_table(
        "Fig. 15 — resource utilization vs batch",
        ["batch", "GPU fc6 util", "GPU conv3 util", "FPGA conv3 util"],
        [
            [
                r["batch"],
                f"{r['gpu_fc6']:.2f}",
                f"{r['gpu_conv3']:.2f}",
                f"{r['fpga_conv3']:.2f}",
            ]
            for r in rows
        ],
    )


def _render_fig16() -> str:
    rows = figures.fig16_rows()
    return format_table(
        "Fig. 16 — GPU co-running interference",
        ["diag duty", "inf solo ms", "inf co-run ms", "slowdown"],
        [
            [
                f"{r['duty']:.2f}",
                f"{r['result'].inference_solo_s * 1e3:.1f}",
                f"{r['result'].inference_corun_s * 1e3:.1f}",
                f"{r['result'].inference_slowdown:.2f}x",
            ]
            for r in rows
        ],
    )


def _render_fig21() -> str:
    rows = figures.fig21_rows()
    return format_table(
        "Fig. 21 — model-guided batch selection",
        ["net", "req ms", "model batch", "best batch",
         "speedup vs non-batch", "% of best"],
        [
            [
                r["net"],
                f"{r['req_ms']:.0f}",
                r["model_batch"],
                r["best_batch"],
                f"{r['speedup_vs_nonbatch']:.2f}x",
                f"{r['fraction_of_best']:.1%}",
            ]
            for r in rows
        ],
    )


def _render_fig22() -> str:
    rows = figures.fig22_rows()
    return format_table(
        "Fig. 22 — CONV runtime at 2628 PEs",
        ["arch", "sharing", "compute ms", "access ms", "total ms",
         "diag idle"],
        [
            [
                r["arch"],
                f"CONV-{r['depth']}",
                f"{r['compute_ms']:.2f}",
                f"{r['access_ms']:.2f}",
                f"{r['total_ms']:.2f}",
                f"{r['idle']:.0%}",
            ]
            for r in rows
        ],
    )


def _render_fig23() -> str:
    rows = figures.fig23_rows()
    reqs = sorted({r["req_ms"] for r in rows})
    archs = []
    for r in rows:
        if r["arch"] not in archs:
            archs.append(r["arch"])
    by_key = {(r["req_ms"], r["arch"]): r for r in rows}
    return format_table(
        "Fig. 23 — max throughput (img/s) vs latency requirement",
        ["req ms"] + archs,
        [
            [req]
            + [
                "x"
                if by_key[(req, arch)]["ips"] is None
                else f"{by_key[(req, arch)]['ips']:.0f} "
                f"(B{by_key[(req, arch)]['batch']})"
                for arch in archs
            ]
            for req in reqs
        ],
    )


def _render_engines() -> str:
    rows = figures.engine_search_rows()
    return format_table(
        "Ablation — Tm/Tn search vs square engine",
        ["network", "PE budget", "tuned", "square", "speedup"],
        [
            [r["net"], r["budget"], r["tuned"], r["naive"], f"{r['gain']:.2f}x"]
            for r in rows
        ],
    )


def _render_specs() -> str:
    from repro.hw import TITAN_X, TX1, VX690T
    from repro.models import alexnet_spec, vgg16_spec

    device_rows = [
        [
            gpu.name,
            f"{gpu.max_ops / 1e9:.0f} GOP/s",
            f"{gpu.mem_bandwidth_bps / 1e9:.1f} GB/s",
            f"{gpu.idle_power_w:.0f}-{gpu.peak_power_w:.0f} W",
        ]
        for gpu in (TX1, TITAN_X)
    ]
    device_rows.append(
        [
            VX690T.name,
            f"{VX690T.dsp_slices} DSPs @ {VX690T.frequency_hz / 1e6:.0f} MHz",
            f"{VX690T.mem_bandwidth_bps / 1e9:.1f} GB/s",
            f"{VX690T.power_w:.0f} W",
        ]
    )
    devices = format_table(
        "Devices", ["device", "compute", "bandwidth", "power"], device_rows
    )
    net_rows = [
        [
            net.name,
            len(net.conv_layers),
            len(net.fc_layers),
            f"{net.total_ops / 1e9:.2f} GOP",
            f"{net.weight_bytes / 1e6:.0f} MB",
        ]
        for net in (alexnet_spec(), vgg16_spec())
    ]
    networks = format_table(
        "Networks", ["network", "convs", "fcs", "ops/img", "weights"],
        net_rows,
    )
    return devices + "\n\n" + networks


def _render_tier_table(results) -> str:
    """Per-tier movement for a hierarchical run (gateway topology)."""
    mb = 1e6
    return format_table(
        "Hierarchical topology — per-tier movement",
        ["system", "edge up MB", "WAN up MB", "WAN down MB", "edge down MB",
         "edge xfers", "WAN xfers", "overhead kB"],
        [
            [
                sid,
                f"{s.edge_to_gateway_bytes / mb:.0f}",
                f"{s.gateway_to_cloud_bytes / mb:.0f}",
                f"{s.cloud_to_gateway_bytes / mb:.0f}",
                f"{s.gateway_to_edge_bytes / mb:.0f}",
                s.edge_transfer_events,
                s.wan_transfer_events,
                f"{s.transfer_overhead_bytes / 1e3:.0f}",
            ]
            for sid, s in (
                (sid, r.ledger.snapshot()) for sid, r in results.items()
            )
        ],
    )


def _render_fleet(
    num_nodes: int,
    policy: str,
    seed: int,
    *,
    workers: int = 1,
    tracer=None,
    metrics=None,
    topology=None,
) -> str:
    """Beyond the paper: the four Fig. 24 variants at fleet scale."""
    from repro.fleet import (
        FleetScenario,
        fleet_base_scenario,
        run_fleet_all_systems,
    )

    scenario = FleetScenario(
        base=fleet_base_scenario(),
        num_nodes=num_nodes,
        scheduler_policy=policy,
        seed=seed,
    )
    results = run_fleet_all_systems(
        scenario,
        workers=workers,
        tracer=tracer,
        metrics=metrics,
        topology=topology,
    )
    mb = 1e6
    aggregate = format_table(
        f"Fleet ({num_nodes} nodes, policy={policy}) — aggregate movement "
        "and Cloud update cost",
        ["system", "up MB", "down MB", "total MB", "reduction",
         "cloud s", "cloud kJ", "radio J", "final acc"],
        [
            [
                sid,
                f"{r.total_uploaded_bytes / mb:.0f}",
                f"{r.total_downloaded_bytes / mb:.0f}",
                f"{r.total_bytes_moved / mb:.0f}",
                f"{r.data_reduction_vs_full:.0%}",
                f"{r.total_update_time_s:.1f}",
                f"{r.total_cloud_energy_j / 1e3:.2f}",
                f"{r.total_transfer_energy_j:.1f}",
                f"{r.final_accuracy:.0%}",
            ]
            for sid, r in results.items()
        ],
    )
    rollouts = format_table(
        "Canary rollouts (per variant)",
        ["system", "updates", "promoted", "rejected", "canary nodes"],
        [
            [
                sid,
                len(r.rollouts),
                sum(1 for ro in r.rollouts if ro.promoted),
                sum(1 for ro in r.rollouts if not ro.promoted),
                ",".join(
                    str(i) for i in (r.rollouts[0].canary_ids if r.rollouts else ())
                ),
            ]
            for sid, r in results.items()
        ],
    )
    d = results["d"]
    per_node = format_table(
        "In-situ AI (d) — per-node trajectory",
        ["node", "device", "link", "uploaded imgs", "up MB", "down MB",
         "contention stretch", "mean acc on new"],
        [
            [
                t.profile.node_id,
                t.profile.device_kind,
                t.profile.link_kind,
                t.ledger.total_uploaded_images,
                f"{t.ledger.total_uploaded_bytes / mb:.0f}",
                f"{t.ledger.total_downloaded_bytes / mb:.0f}",
                f"{t.contention_stretch:.2f}x",
                f"{sum(t.accuracy_trajectory) / len(t.accuracy_trajectory):.0%}",
            ]
            for t in d.nodes
        ],
    )
    out = aggregate + "\n\n" + rollouts + "\n\n" + per_node
    if topology is not None and not topology.is_passthrough:
        out += "\n\n" + _render_tier_table(results)
    return out


def _render_fleet_event(
    num_nodes: int,
    policy: str,
    seed: int,
    horizon: float | None,
    *,
    tracer=None,
    metrics=None,
    topology=None,
) -> str:
    """Event-driven fleet: asynchronous epochs, dynamic uplink flows."""
    from repro.core.systems import SYSTEMS
    from repro.fleet import (
        FleetScenario,
        fleet_base_scenario,
        prepare_fleet_assets,
        run_fleet_event,
    )

    scenario = FleetScenario(
        base=fleet_base_scenario(),
        num_nodes=num_nodes,
        scheduler_policy=policy,
        seed=seed,
    )
    assets = prepare_fleet_assets(scenario)
    results = {
        config.system_id: run_fleet_event(
            config,
            assets,
            horizon_s=horizon,
            tracer=tracer,
            metrics=metrics,
            topology=topology,
        )
        for config in SYSTEMS
    }
    mb = 1e6
    horizon_label = (
        f"horizon={horizon:g}s" if horizon is not None else "full schedule"
    )
    aggregate = format_table(
        f"Event-driven fleet ({num_nodes} nodes, policy={policy}, "
        f"{horizon_label}) — virtual time and movement",
        ["system", "makespan s", "epochs min-max", "updates", "promoted",
         "up MB", "down MB", "final acc"],
        [
            [
                sid,
                f"{r.makespan_s:.1f}",
                f"{min(r.epochs_by_node.values())}-"
                f"{max(r.epochs_by_node.values())}",
                len(r.updates),
                sum(1 for u in r.updates if u.promoted),
                f"{r.total_uploaded_bytes / mb:.0f}",
                f"{r.total_downloaded_bytes / mb:.0f}",
                f"{r.final_eval_accuracy:.0%}",
            ]
            for sid, r in results.items()
        ],
    )
    d = results["d"]
    per_node = format_table(
        "In-situ AI (d) — per-node event trajectory",
        ["node", "device", "link", "epochs", "blocked on uplink s",
         "up MB", "down MB", "mean acc on new"],
        [
            [
                t.profile.node_id,
                t.profile.device_kind,
                t.profile.link_kind,
                t.epochs_completed,
                f"{t.blocked_on_uplink_s:.2f}",
                f"{t.ledger.total_uploaded_bytes / mb:.0f}",
                f"{t.ledger.total_downloaded_bytes / mb:.0f}",
                (
                    f"{sum(t.accuracy_trajectory) / len(t.accuracy_trajectory):.0%}"
                    if t.records
                    else "-"
                ),
            ]
            for t in d.nodes
        ],
    )
    out = aggregate + "\n\n" + per_node
    if topology is not None and not topology.is_passthrough:
        out += "\n\n" + _render_tier_table(results)
    return out


_EXPERIMENTS: dict[str, Callable[[], str]] = {
    "specs": _render_specs,
    "fig11": _render_fig11,
    "fig12": _render_fig12,
    "fig14": _render_fig14,
    "fig15": _render_fig15,
    "fig16": _render_fig16,
    "fig21": _render_fig21,
    "fig22": _render_fig22,
    "fig23": _render_fig23,
    "engines": _render_engines,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the paper's analytical tables and figures, or run "
            "the beyond-the-paper fleet simulation ('fleet'). Training-based "
            "paper experiments run via 'pytest benchmarks/ --benchmark-only'. "
            "YAML-driven scenario runs (churn, class-incremental phases, "
            "per-node heads) live under 'python -m repro scenario'."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        default=None,
        help=(
            "which experiments to run (default: all analytical tables; "
            "'fleet' is the multi-node simulation and must be asked for "
            "explicitly)"
        ),
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=16,
        help="fleet size for the 'fleet' experiment (default: 16)",
    )
    parser.add_argument(
        "--policy",
        choices=("per-stage", "threshold", "accuracy-drop"),
        default="per-stage",
        help="cloud-side update scheduler policy for 'fleet'",
    )
    parser.add_argument(
        "--fleet-seed",
        type=int,
        default=0,
        help="fleet scenario seed for 'fleet'",
    )
    parser.add_argument(
        "--mode",
        default="lockstep",
        help=(
            "fleet simulation mode: 'lockstep' (stage barrier, the "
            "reference) or 'event' (asynchronous epochs on the "
            "discrete-event kernel)"
        ),
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help=(
            "virtual-time budget in seconds for '--mode event': nodes "
            "cycle their acquisition schedule until the horizon"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for per-node fleet computation in "
            "'--mode lockstep' (default: 1 = serial; any value produces "
            "bit-identical results)"
        ),
    )
    parser.add_argument(
        "--topology",
        choices=("flat", "fan-out"),
        default="flat",
        help=(
            "fleet wiring for 'fleet': 'flat' (every node talks straight "
            "to the Cloud; the default, unchanged output) or 'fan-out' "
            "(nodes grouped under gateways that aggregate uploads; see "
            "--fan-out and the --agg-*/--second-opinion knobs)"
        ),
    )
    parser.add_argument(
        "--fan-out",
        type=int,
        default=4,
        help="nodes per gateway for '--topology fan-out' (default: 4)",
    )
    parser.add_argument(
        "--agg-images",
        type=int,
        default=32,
        help=(
            "gateway flush threshold in buffered images for "
            "'--topology fan-out' (default: 32); 0 disables aggregation"
        ),
    )
    parser.add_argument(
        "--agg-age-stages",
        type=int,
        default=2,
        help=(
            "flush when the oldest buffered upload is this many stages "
            "old, for '--topology fan-out' (default: 2)"
        ),
    )
    parser.add_argument(
        "--second-opinion",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help=(
            "fraction of flagged inputs the gateway model resolves "
            "locally instead of escalating, for '--topology fan-out' "
            "(default: 0.0 = disabled)"
        ),
    )
    parser.add_argument(
        "--overhead-bytes",
        type=int,
        default=2_000,
        help=(
            "fixed per-WAN-transfer framing overhead in bytes for "
            "'--topology fan-out' (default: 2000)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a virtual-time trace of the 'fleet' experiment to PATH "
            "(schema-v1 JSONL; see --trace-format)"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help=(
            "trace format for --trace: 'jsonl' (byte-deterministic schema "
            "v1) or 'chrome' (trace_event JSON for chrome://tracing / "
            "Perfetto)"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the 'fleet' experiment's metrics dump (JSON) to PATH",
    )
    args = parser.parse_args(argv)
    # choices= with nargs="*" rejects the no-argument case on some
    # CPython patch releases (gh-73484), so validation happens here.
    valid = set(_EXPERIMENTS) | {"all", "fleet"}
    selected = args.experiments or ["all"]
    if args.nodes < 1:
        parser.error("--nodes must be at least 1")
    # --mode is validated manually for the same reason as experiment
    # names: keep every argument failure on one consistent path.
    if args.mode not in ("lockstep", "event"):
        parser.error(
            f"invalid mode {args.mode!r} (choose from event, lockstep)"
        )
    if args.horizon is not None:
        if args.mode != "event":
            parser.error("--horizon only applies to --mode event")
        if args.horizon <= 0:
            parser.error("--horizon must be positive")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.workers > 1 and args.mode == "event":
        parser.error("--workers only applies to --mode lockstep")
    for name in selected:
        if name not in valid:
            parser.error(
                f"invalid experiment {name!r} (choose from "
                f"{', '.join(sorted(valid))})"
            )
    if (args.trace or args.metrics) and "fleet" not in selected:
        parser.error("--trace/--metrics only apply to the 'fleet' experiment")
    topology = None
    if args.topology == "fan-out":
        from repro.topology import AggregationPolicy, Topology

        if args.fan_out < 1:
            parser.error("--fan-out must be at least 1")
        if args.agg_images < 0:
            parser.error("--agg-images must be >= 0")
        if args.agg_age_stages < 1:
            parser.error("--agg-age-stages must be at least 1")
        if not 0.0 <= args.second_opinion <= 1.0:
            parser.error("--second-opinion must be in [0, 1]")
        if args.overhead_bytes < 0:
            parser.error("--overhead-bytes must be >= 0")
        aggregation = (
            AggregationPolicy(
                flush_images=args.agg_images,
                max_age_stages=args.agg_age_stages,
            )
            if args.agg_images > 0
            else AggregationPolicy(enabled=False)
        )
        topology = Topology.fan_out(
            args.nodes,
            args.fan_out,
            aggregation=aggregation,
            second_opinion_fraction=args.second_opinion,
            per_transfer_overhead_bytes=args.overhead_bytes,
        )
    if "all" in selected:
        selected = sorted(_EXPERIMENTS)
    tracer = None
    metrics = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.metrics:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
    for name in selected:
        if name == "fleet":
            if args.mode == "event":
                print(
                    _render_fleet_event(
                        args.nodes,
                        args.policy,
                        args.fleet_seed,
                        args.horizon,
                        tracer=tracer,
                        metrics=metrics,
                        topology=topology,
                    )
                )
            else:
                print(
                    _render_fleet(
                        args.nodes,
                        args.policy,
                        args.fleet_seed,
                        workers=args.workers,
                        tracer=tracer,
                        metrics=metrics,
                        topology=topology,
                    )
                )
        else:
            print(_EXPERIMENTS[name]())
        print()
    if tracer is not None:
        if args.trace_format == "chrome":
            tracer.write_chrome(args.trace)
        else:
            tracer.write_jsonl(args.trace)
    if metrics is not None:
        metrics.write_json(args.metrics)
    return 0
