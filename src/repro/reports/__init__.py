"""Experiment report generation: figure sweeps, tables, CLI."""

from repro.reports.figures import (
    engine_search_rows,
    fig11_rows,
    fig12_rows,
    fig14_rows,
    fig15_rows,
    fig16_rows,
    fig21_rows,
    fig22_rows,
    fig23_rows,
)
from repro.reports.tables import format_table

__all__ = [
    "engine_search_rows",
    "fig11_rows",
    "fig12_rows",
    "fig14_rows",
    "fig15_rows",
    "fig16_rows",
    "fig21_rows",
    "fig22_rows",
    "fig23_rows",
    "format_table",
]
