"""Analytical experiment sweeps behind the paper's figures.

Each ``figNN_rows`` function computes the data series of one figure from
the hardware models and returns it as a list of dicts; the benchmark suite
asserts on these rows and the CLI renders them as tables.  Training-based
experiments (Table I, Figs. 5-7, Table II, Fig. 25) live in the benchmark
files because they need shared trained-model fixtures.
"""

from __future__ import annotations

from repro.core import SingleRunningPlanner
from repro.hw import (
    TX1,
    VX690T,
    MeasuredGPU,
    NWSArch,
    TmTnEngine,
    WSArch,
    WSSArch,
    best_design,
    co_running_latency,
)
from repro.hw import fpga as fpga_model
from repro.hw import gpu as gpu_model
from repro.hw.pipeline import ARCH_FACTORIES
from repro.models import alexnet_spec, diagnosis_spec, vgg16_spec
from repro.models.layer_specs import NetworkSpec

__all__ = [
    "fig11_rows",
    "fig12_rows",
    "fig14_rows",
    "fig15_rows",
    "fig16_rows",
    "fig21_rows",
    "fig22_rows",
    "fig23_rows",
    "engine_search_rows",
]

_FIG11_BATCHES = (1, 2, 4, 8, 16, 32, 64)
_FIG12_BATCHES = (1, 2, 4, 8, 16, 32)
_FIG14_BATCHES = (1, 4, 16, 64)
_FIG15_BATCHES = (1, 2, 4, 8, 16, 32)
_FIG16_DUTIES = (0.0, 0.25, 0.5, 0.75, 1.0)
_FIG21_REQS = {
    "AlexNet": (0.05, 0.1, 0.25, 0.5),
    "VGGNet": (0.25, 0.5, 1.0, 2.0),
}
_FIG22_DEPTHS = (0, 3, 5)
_FIG22_PE_BUDGET = 2628
_FIG23_REQS_MS = (50, 100, 200, 400, 800)


def fig11_rows(network: NetworkSpec | None = None) -> list[dict]:
    """Latency and perf/W vs batch on TX1 and VX690T (Fig. 11)."""
    net = network if network is not None else alexnet_spec()
    engine = TmTnEngine.best_for(net.conv_layers, 2048)
    rows = []
    for batch in _FIG11_BATCHES:
        gpu_t = gpu_model.network_time(net, TX1, batch)
        fpga_t = fpga_model.network_time(net, engine, VX690T, batch)
        rows.append(
            {
                "batch": batch,
                "gpu_latency_ms": gpu_t.total_s * 1e3,
                "gpu_ppw": gpu_model.perf_per_watt(net, TX1, batch),
                "fpga_latency_ms": fpga_t.total_s * 1e3,
                "fpga_ppw": fpga_model.perf_per_watt(
                    net, engine, VX690T, batch
                ),
            }
        )
    return rows


def fig12_rows(network: NetworkSpec | None = None) -> list[dict]:
    """FCN share of runtime vs batch (Fig. 12)."""
    net = network if network is not None else alexnet_spec()
    engine = TmTnEngine.best_for(net.conv_layers, 2048)
    rows = []
    for batch in _FIG12_BATCHES:
        gpu_t = gpu_model.network_time(net, TX1, batch)
        fpga_t = fpga_model.network_time(
            net, engine, VX690T, batch, batch_optimized=False
        )
        rows.append(
            {
                "batch": batch,
                "gpu_fc_frac": gpu_t.fc_s / gpu_t.total_s,
                "fpga_fc_frac": fpga_t.fc_s / fpga_t.total_s,
            }
        )
    return rows


def fig14_rows(network: NetworkSpec | None = None) -> list[dict]:
    """Per-layer-type perf/W, with and without the FCN batch loop
    (Figs. 13-14)."""
    net = network if network is not None else alexnet_spec()
    conv_only = NetworkSpec(f"{net.name}-conv", net.conv_layers)
    fc_only = NetworkSpec(f"{net.name}-fc", net.fc_layers)
    engine = TmTnEngine.best_for(net.conv_layers, 2048)
    rows = []
    for batch in _FIG14_BATCHES:
        rows.append(
            {
                "batch": batch,
                "gpu_conv": gpu_model.perf_per_watt(conv_only, TX1, batch),
                "gpu_fc": gpu_model.perf_per_watt(fc_only, TX1, batch),
                "fpga_conv": fpga_model.perf_per_watt(
                    conv_only, engine, VX690T, batch
                ),
                "fpga_fc_nobatch": fpga_model.perf_per_watt(
                    fc_only, engine, VX690T, batch, batch_optimized=False
                ),
                "fpga_fc_batch": fpga_model.perf_per_watt(
                    fc_only, engine, VX690T, batch, batch_optimized=True
                ),
                "gpu_all": gpu_model.perf_per_watt(net, TX1, batch),
                "fpga_all": fpga_model.perf_per_watt(
                    net, engine, VX690T, batch
                ),
            }
        )
    return rows


def fig15_rows(network: NetworkSpec | None = None) -> list[dict]:
    """GPU (Eq. 3) vs FPGA (Eq. 4) utilization vs batch (Fig. 15)."""
    net = network if network is not None else alexnet_spec()
    engine = TmTnEngine.best_for(net.conv_layers, 2048)
    fc6 = net.layer("fc6")
    conv3 = net.layer("conv3")
    return [
        {
            "batch": batch,
            "gpu_fc6": gpu_model.utilization(fc6, TX1, batch),
            "gpu_conv3": gpu_model.utilization(conv3, TX1, batch),
            "fpga_conv3": engine.utilization(conv3),
        }
        for batch in _FIG15_BATCHES
    ]


def fig16_rows(network: NetworkSpec | None = None) -> list[dict]:
    """GPU co-running interference vs diagnosis duty (Fig. 16)."""
    net = network if network is not None else alexnet_spec()
    diag = diagnosis_spec(net)
    return [
        {
            "duty": duty,
            "result": co_running_latency(net, diag, TX1, diagnosis_duty=duty),
        }
        for duty in _FIG16_DUTIES
    ]


def fig21_rows() -> list[dict]:
    """Model-guided vs non-batch vs brute-force batch selection (Fig. 21)."""
    networks = {"AlexNet": alexnet_spec(), "VGGNet": vgg16_spec()}
    sim = MeasuredGPU(TX1)
    planner = SingleRunningPlanner(TX1)
    rows = []
    for name, net in networks.items():
        for req in _FIG21_REQS[name]:
            model_batch = planner.inference_batch(
                net, latency_requirement_s=req
            )
            best_batch = sim.brute_force_best_batch(
                net, latency_requirement_s=req, max_batch=128
            )
            nonbatch = sim.measure_perf_per_watt(net, 1)
            model = sim.measure_perf_per_watt(net, model_batch)
            best = sim.measure_perf_per_watt(net, best_batch)
            rows.append(
                {
                    "net": name,
                    "req_ms": req * 1e3,
                    "model_batch": model_batch,
                    "best_batch": best_batch,
                    "speedup_vs_nonbatch": model / nonbatch,
                    "fraction_of_best": model / best,
                }
            )
    return rows


def fig22_rows(network: NetworkSpec | None = None) -> list[dict]:
    """NWS / WS / WSS conv runtime at the 2628-PE budget (Fig. 22)."""
    net = network if network is not None else alexnet_spec()
    diag = diagnosis_spec(net)
    archs = {
        "NWS": NWSArch(_FIG22_PE_BUDGET, shape_for=net.conv_layers),
        "WS": WSArch(_FIG22_PE_BUDGET, shape_for=net.conv_layers),
        "WSS": WSSArch(_FIG22_PE_BUDGET),
    }
    rows = []
    for name, arch in archs.items():
        for depth in _FIG22_DEPTHS:
            rt = arch.conv_runtime(net, diag, VX690T, shared_depth=depth)
            rows.append(
                {
                    "arch": name,
                    "depth": depth,
                    "compute_ms": rt.compute_s * 1e3,
                    "access_ms": rt.weight_access_s * 1e3,
                    "total_ms": rt.total_s * 1e3,
                    "idle": rt.diagnosis_idle_fraction,
                }
            )
    return rows


def fig23_rows(network: NetworkSpec | None = None) -> list[dict]:
    """Pipeline throughput under latency requirements (Fig. 23)."""
    net = network if network is not None else alexnet_spec()
    diag = diagnosis_spec(net)
    rows = []
    for req_ms in _FIG23_REQS_MS:
        for arch in ARCH_FACTORIES:
            timing = best_design(
                arch,
                net,
                diag,
                VX690T,
                latency_requirement_s=req_ms / 1e3,
                max_batch=64,
            )
            rows.append(
                {
                    "req_ms": req_ms,
                    "arch": arch,
                    "ips": None if timing is None else timing.throughput_ips,
                    "batch": None
                    if timing is None
                    else timing.design.batch_size,
                }
            )
    return rows


def engine_search_rows(budgets: tuple[int, ...] = (512, 1024, 2628)) -> list[dict]:
    """Tm/Tn design-space search vs naive square engines (ablation)."""
    rows = []
    for spec in (alexnet_spec(), vgg16_spec()):
        for budget in budgets:
            tuned = TmTnEngine.best_for(spec.conv_layers, budget)
            naive = TmTnEngine.from_budget(budget)
            tuned_cycles = sum(tuned.conv_cycles(s) for s in spec.conv_layers)
            naive_cycles = sum(naive.conv_cycles(s) for s in spec.conv_layers)
            rows.append(
                {
                    "net": spec.name,
                    "budget": budget,
                    "tuned": f"{tuned.tm}x{tuned.tn}",
                    "naive": f"{naive.tm}x{naive.tn}",
                    "gain": naive_cycles / tuned_cycles,
                }
            )
    return rows
