"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table with a title banner."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(header[i])), max((len(r[i]) for r in cells), default=0))
        for i in range(len(header))
    ]
    lines = [f"=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
