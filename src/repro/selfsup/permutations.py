"""Permutation sets for the spatial-context (jigsaw) task.

The paper's unsupervised task (Fig. 3, after Noroozi & Favaro) reorders the
9 tiles of an image by a permutation drawn from a fixed set of 100 and asks
the network to predict *which* permutation was applied.  The permutation set
matters: permutations close in Hamming distance make the task ambiguous, so
the set is chosen to maximize pairwise Hamming distance.  This module
implements the standard greedy max-Hamming selection.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["PermutationSet", "max_hamming_permutations"]


def _hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distance between one permutation and many."""
    return (a[None, :] != b).sum(axis=1)


def max_hamming_permutations(
    num_perms: int,
    num_tiles: int = 9,
    *,
    rng: np.random.Generator,
    candidate_pool: int = 300,
) -> np.ndarray:
    """Greedy maximin-Hamming permutation selection.

    Starts from a random permutation, then repeatedly adds the candidate
    whose minimum Hamming distance to the already-chosen set is largest.

    Returns an array of shape ``(num_perms, num_tiles)`` whose rows are
    distinct permutations of ``0..num_tiles-1``.
    """
    if num_perms < 1:
        raise ValueError("num_perms must be >= 1")
    if num_tiles < 2:
        raise ValueError("num_tiles must be >= 2")
    max_distinct = math.factorial(num_tiles) if num_tiles <= 12 else None
    if max_distinct is not None and num_perms > max_distinct:
        raise ValueError(
            f"cannot draw {num_perms} distinct permutations of {num_tiles} tiles"
        )
    chosen = [rng.permutation(num_tiles)]
    seen = {tuple(chosen[0])}
    while len(chosen) < num_perms:
        candidates = np.array(
            [rng.permutation(num_tiles) for _ in range(candidate_pool)]
        )
        chosen_arr = np.array(chosen)
        best_candidate = None
        best_score = -1
        for cand in candidates:
            if tuple(cand) in seen:
                continue
            score = int(_hamming(cand, chosen_arr).min())
            if score > best_score:
                best_score = score
                best_candidate = cand
        if best_candidate is None:
            # Extremely unlikely unless the pool collides entirely; retry.
            continue
        chosen.append(best_candidate)
        seen.add(tuple(best_candidate))
    return np.array(chosen)


class PermutationSet:
    """An indexed set of tile permutations.

    Index *i* of the set is class *i* of the context-prediction task: the
    network sees tiles shuffled by ``perms[i]`` and must output ``i``.
    """

    def __init__(self, perms: np.ndarray) -> None:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2:
            raise ValueError(f"perms must be 2-D, got shape {perms.shape}")
        num_tiles = perms.shape[1]
        expected = np.arange(num_tiles)
        for i, row in enumerate(perms):
            if not np.array_equal(np.sort(row), expected):
                raise ValueError(f"row {i} is not a permutation: {row}")
        if len({tuple(r) for r in perms}) != len(perms):
            raise ValueError("permutations must be distinct")
        self.perms = perms

    @classmethod
    def generate(
        cls,
        num_perms: int = 100,
        num_tiles: int = 9,
        *,
        rng: np.random.Generator | None = None,
    ) -> "PermutationSet":
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(max_hamming_permutations(num_perms, num_tiles, rng=rng))

    def __len__(self) -> int:
        return len(self.perms)

    @property
    def num_tiles(self) -> int:
        return self.perms.shape[1]

    def __getitem__(self, index: int) -> np.ndarray:
        return self.perms[index]

    def apply(self, tiles: np.ndarray, index: int) -> np.ndarray:
        """Reorder a stack of tiles by permutation ``index``.

        ``tiles`` has the tile axis first (e.g. ``(9, 3, h, w)``).  Position
        ``j`` of the result receives ``tiles[perm[j]]`` — the layout the
        network sees, as in Fig. 3's reordered grid.
        """
        if tiles.shape[0] != self.num_tiles:
            raise ValueError(
                f"expected {self.num_tiles} tiles, got {tiles.shape[0]}"
            )
        return tiles[self.perms[index]]

    def min_pairwise_hamming(self) -> int:
        """Smallest Hamming distance between any two permutations in the set."""
        if len(self) < 2:
            return self.num_tiles
        best = self.num_tiles
        for i in range(len(self) - 1):
            dist = _hamming(self.perms[i], self.perms[i + 1 :]).min()
            best = min(best, int(dist))
        return best
