"""Jigsaw tiling and batch assembly for the context-prediction task."""

from __future__ import annotations

import numpy as np

from repro.selfsup.permutations import PermutationSet

__all__ = ["split_tiles", "reassemble_tiles", "JigsawSampler"]


def split_tiles(image: np.ndarray, grid: int = 3) -> np.ndarray:
    """Split a CHW image into a ``grid x grid`` stack of tiles.

    Returns shape ``(grid*grid, C, H/grid, W/grid)`` with tiles in
    row-major order (the paper's 3x3 grid indexing).
    """
    if image.ndim != 3:
        raise ValueError(f"expected (C, H, W), got shape {image.shape}")
    channels, height, width = image.shape
    if height % grid or width % grid:
        raise ValueError(
            f"image {height}x{width} not divisible into a {grid}x{grid} grid"
        )
    tile_h, tile_w = height // grid, width // grid
    tiles = image.reshape(channels, grid, tile_h, grid, tile_w)
    return tiles.transpose(1, 3, 0, 2, 4).reshape(
        grid * grid, channels, tile_h, tile_w
    )


def reassemble_tiles(tiles: np.ndarray, grid: int = 3) -> np.ndarray:
    """Inverse of :func:`split_tiles` for row-major ordered tiles."""
    num_tiles, channels, tile_h, tile_w = tiles.shape
    if num_tiles != grid * grid:
        raise ValueError(f"expected {grid * grid} tiles, got {num_tiles}")
    stacked = tiles.reshape(grid, grid, channels, tile_h, tile_w)
    return stacked.transpose(2, 0, 3, 1, 4).reshape(
        channels, grid * tile_h, grid * tile_w
    )


class JigsawSampler:
    """Assembles jigsaw training batches.

    For each image: split into the 3x3 grid, draw a permutation index from
    the set, reorder the tiles, and emit the index as the label.  Optional
    per-tile random cropping (``tile_crop``) reproduces the jitter the
    jigsaw literature uses to stop the network from solving the task with
    edge-continuity shortcuts.
    """

    def __init__(
        self,
        permset: PermutationSet,
        *,
        grid: int = 3,
        tile_crop: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if grid * grid != permset.num_tiles:
            raise ValueError(
                f"permutation set has {permset.num_tiles} tiles but grid "
                f"{grid}x{grid} produces {grid * grid}"
            )
        self.permset = permset
        self.grid = grid
        self.tile_crop = tile_crop
        self.rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def num_classes(self) -> int:
        return len(self.permset)

    def tile_shape(self, image_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        channels, height, width = image_shape
        tile_h, tile_w = height // self.grid, width // self.grid
        if self.tile_crop is not None:
            if self.tile_crop > min(tile_h, tile_w):
                raise ValueError(
                    f"tile_crop {self.tile_crop} exceeds tile size "
                    f"{tile_h}x{tile_w}"
                )
            return (channels, self.tile_crop, self.tile_crop)
        return (channels, tile_h, tile_w)

    def _maybe_crop(self, tiles: np.ndarray) -> np.ndarray:
        if self.tile_crop is None:
            return tiles
        crop = self.tile_crop
        _, _, tile_h, tile_w = tiles.shape
        out = np.empty(tiles.shape[:2] + (crop, crop), dtype=tiles.dtype)
        for i in range(tiles.shape[0]):
            top = int(self.rng.integers(0, tile_h - crop + 1))
            left = int(self.rng.integers(0, tile_w - crop + 1))
            out[i] = tiles[i, :, top : top + crop, left : left + crop]
        return out

    def sample(
        self, image: np.ndarray, perm_index: int | None = None
    ) -> tuple[np.ndarray, int]:
        """One jigsaw puzzle: (shuffled tiles ``(9, C, h, w)``, label)."""
        if perm_index is None:
            perm_index = int(self.rng.integers(0, len(self.permset)))
        tiles = split_tiles(image, self.grid)
        tiles = self._maybe_crop(tiles)
        return self.permset.apply(tiles, perm_index), perm_index

    def batch(
        self, images: np.ndarray, perm_indices: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Jigsaw puzzles for a whole image batch.

        Returns ``(B, 9, C, h, w)`` shuffled tiles and ``(B,)`` labels.
        """
        if images.ndim != 4:
            raise ValueError(f"expected (B, C, H, W), got {images.shape}")
        count = images.shape[0]
        if perm_indices is None:
            perm_indices = self.rng.integers(0, len(self.permset), size=count)
        perm_indices = np.asarray(perm_indices)
        if perm_indices.shape != (count,):
            raise ValueError("need one permutation index per image")
        first_tiles, _ = self.sample(images[0], int(perm_indices[0]))
        out = np.empty((count,) + first_tiles.shape, dtype=images.dtype)
        out[0] = first_tiles
        for i in range(1, count):
            out[i], _ = self.sample(images[i], int(perm_indices[i]))
        return out, perm_indices.astype(np.int64)
