"""Unsupervised pre-training loop (the Cloud's first job in Fig. 4).

Trains a :class:`ContextNetwork` on raw, unlabeled IoT images by solving
jigsaw puzzles.  The returned trunk carries the features that transfer
learning copies into the inference network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models import build_jigsaw_trunk, trunk_feature_size
from repro.nn import SGD, CrossEntropyLoss
from repro.obs import metrics as obs_metrics
from repro.selfsup.context_net import ContextNetwork, build_context_head
from repro.selfsup.jigsaw import JigsawSampler
from repro.selfsup.permutations import PermutationSet

__all__ = ["PretrainResult", "build_context_network", "pretrain", "permutation_accuracy"]


@dataclass
class PretrainResult:
    """History of an unsupervised pre-training run."""

    network: ContextNetwork
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    sample_steps: int = 0

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0


def build_context_network(
    permset: PermutationSet,
    *,
    width: float = 1.0,
    tile_size: int = 16,
    hidden: int = 128,
    rng: np.random.Generator | None = None,
) -> ContextNetwork:
    """Fresh jigsaw network sized for the given permutation set."""
    rng = rng if rng is not None else np.random.default_rng(0)
    trunk = build_jigsaw_trunk(rng, width=width, tile_size=tile_size)
    feature = trunk_feature_size(width=width, input_size=tile_size)
    head = build_context_head(
        feature, permset.num_tiles, len(permset), hidden=hidden, rng=rng
    )
    return ContextNetwork(trunk, head, num_tiles=permset.num_tiles)


def permutation_accuracy(
    network: ContextNetwork,
    images: np.ndarray,
    sampler: JigsawSampler,
    *,
    batch_size: int = 64,
) -> float:
    """Fraction of puzzles whose permutation the network identifies."""
    if len(images) == 0:
        raise ValueError("cannot evaluate on zero images")
    correct = 0
    for start in range(0, len(images), batch_size):
        chunk = images[start : start + batch_size]
        tiles, labels = sampler.batch(chunk)
        logits = network.predict(tiles)
        correct += int((logits.argmax(axis=1) == labels).sum())
    return correct / len(images)


def pretrain(
    network: ContextNetwork,
    images: np.ndarray,
    sampler: JigsawSampler,
    *,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 0.02,
    momentum: float = 0.9,
    rng: np.random.Generator | None = None,
    eval_images: np.ndarray | None = None,
) -> PretrainResult:
    """Train the context network on unlabeled images.

    ``images`` is a raw (B, C, H, W) array — labels are never consulted,
    which is the whole point: the supervisory signal is spatial context.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(network.parameters, lr=lr, momentum=momentum)
    result = PretrainResult(network=network)
    for _ in range(epochs):
        order = rng.permutation(len(images))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(images), batch_size):
            idx = order[start : start + batch_size]
            tiles, labels = sampler.batch(images[idx])
            logits = network.forward(tiles, training=True)
            epoch_loss += loss_fn(logits, labels)
            batches += 1
            network.zero_grad()
            network.backward(loss_fn.backward())
            optimizer.step()
            result.sample_steps += len(idx)
        result.losses.append(epoch_loss / max(1, batches))
        held_out = eval_images if eval_images is not None else images
        result.accuracies.append(
            permutation_accuracy(network, held_out, sampler)
        )
    registry = obs_metrics.active()
    if registry is not None:
        registry.counter("pretrain.runs").inc()
        registry.counter("pretrain.epochs").inc(epochs)
        registry.counter("pretrain.samples").inc(result.sample_steps)
        loss_hist = registry.histogram("pretrain.epoch_loss")
        for loss in result.losses:
            loss_hist.observe(loss)
    return result
