"""Unsupervised pre-training via spatial-context (jigsaw) prediction."""

from repro.selfsup.context_net import ContextNetwork, build_context_head
from repro.selfsup.jigsaw import JigsawSampler, reassemble_tiles, split_tiles
from repro.selfsup.permutations import PermutationSet, max_hamming_permutations
from repro.selfsup.pretrain import (
    PretrainResult,
    build_context_network,
    permutation_accuracy,
    pretrain,
)

__all__ = [
    "ContextNetwork",
    "JigsawSampler",
    "PermutationSet",
    "PretrainResult",
    "build_context_head",
    "build_context_network",
    "max_hamming_permutations",
    "permutation_accuracy",
    "pretrain",
    "reassemble_tiles",
    "split_tiles",
]
