"""The context-prediction (jigsaw) network with a weight-shared trunk.

Architecture of Fig. 3/Fig. 4: the *same* convolutional trunk processes each
of the 9 shuffled tiles (this is the paper's first level of weight sharing —
"all its input patches also share the same CONV layers"), the 9 feature
vectors are concatenated, and an FCN head predicts the permutation index.

Weight sharing is implemented by folding the tile axis into the batch axis,
so one trunk forward/backward serves all 9 tiles and the gradient from every
tile accumulates into the shared weights automatically.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Linear, ReLU, Sequential
from repro.nn.tensor import Parameter

__all__ = ["ContextNetwork", "build_context_head"]


def build_context_head(
    feature_size: int,
    num_tiles: int,
    num_classes: int,
    *,
    hidden: int = 128,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """FCN head mapping concatenated tile features to permutation logits."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return Sequential(
        [
            Linear(feature_size * num_tiles, hidden, rng=rng, name="fc6"),
            ReLU(name="relu6"),
            Linear(hidden, hidden, rng=rng, name="fc7"),
            ReLU(name="relu7"),
            Linear(hidden, num_classes, rng=rng, name="fc8"),
        ],
        input_shape=(feature_size * num_tiles,),
    )


class ContextNetwork:
    """Trunk-shared jigsaw network.

    Parameters
    ----------
    trunk:
        Per-tile network mapping ``(C, h, w)`` to a flat feature vector.
        Its conv layers (``conv1``..``conv5``) are the weights later
        transferred to the inference network.
    head:
        FCN over the concatenation of all tile features.
    num_tiles:
        Tiles per puzzle (9 for the 3x3 grid).
    """

    def __init__(self, trunk: Sequential, head: Sequential, num_tiles: int = 9) -> None:
        if len(trunk.output_shape) != 1:
            raise ValueError(
                f"trunk must output flat features, got shape {trunk.output_shape}"
            )
        feature_size = trunk.output_shape[0]
        expected = (feature_size * num_tiles,)
        if head.input_shape != expected:
            raise ValueError(
                f"head expects input shape {head.input_shape}, but "
                f"{num_tiles} tiles x {feature_size} features gives {expected}"
            )
        self.trunk = trunk
        self.head = head
        self.num_tiles = num_tiles
        self.feature_size = feature_size

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> list[Parameter]:
        return self.trunk.parameters + self.head.parameters

    @property
    def num_classes(self) -> int:
        return self.head.output_shape[0]

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    # ------------------------------------------------------------------
    def forward(self, tiles: np.ndarray, *, training: bool = False) -> np.ndarray:
        """Tiles ``(B, T, C, h, w)`` -> permutation logits ``(B, P)``."""
        if tiles.ndim != 5 or tiles.shape[1] != self.num_tiles:
            raise ValueError(
                f"expected (B, {self.num_tiles}, C, h, w), got {tiles.shape}"
            )
        batch = tiles.shape[0]
        folded = tiles.reshape((batch * self.num_tiles,) + tiles.shape[2:])
        features = self.trunk.forward(folded, training=training)
        concat = features.reshape(batch, self.num_tiles * self.feature_size)
        return self.head.forward(concat, training=training)

    def backward(self, grad_logits: np.ndarray) -> None:
        grad_concat = self.head.backward(grad_logits)
        batch = grad_concat.shape[0]
        grad_features = grad_concat.reshape(
            batch * self.num_tiles, self.feature_size
        )
        self.trunk.backward(grad_features)

    def predict(self, tiles: np.ndarray) -> np.ndarray:
        return self.forward(tiles, training=False)

    def __call__(self, tiles: np.ndarray, *, training: bool = False) -> np.ndarray:
        return self.forward(tiles, training=training)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {f"trunk:{k}": v for k, v in self.trunk.state_dict().items()}
        state.update(
            {f"head:{k}": v for k, v in self.head.state_dict().items()}
        )
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        trunk_state = {
            k.removeprefix("trunk:"): v
            for k, v in state.items()
            if k.startswith("trunk:")
        }
        head_state = {
            k.removeprefix("head:"): v
            for k, v in state.items()
            if k.startswith("head:")
        }
        self.trunk.load_state_dict(trunk_state)
        self.head.load_state_dict(head_state)
