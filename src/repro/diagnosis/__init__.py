"""Autonomous IoT data diagnosis: flag unrecognized (valuable) samples."""

from repro.diagnosis.diagnoser import (
    Diagnoser,
    InferenceConfidenceDiagnoser,
    JigsawDiagnoser,
    OracleDiagnoser,
    RandomDiagnoser,
)
from repro.diagnosis.policy import (
    BudgetedDiagnoser,
    DiagnosisReport,
    calibrate_threshold,
    evaluate_diagnoser,
)

__all__ = [
    "BudgetedDiagnoser",
    "DiagnosisReport",
    "Diagnoser",
    "InferenceConfidenceDiagnoser",
    "JigsawDiagnoser",
    "OracleDiagnoser",
    "RandomDiagnoser",
    "calibrate_threshold",
    "evaluate_diagnoser",
]
