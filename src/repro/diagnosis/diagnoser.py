"""Autonomous IoT data diagnosis (the paper's "diagnosis task").

The diagnosis task decides, on the node, which newly acquired samples are
*valuable* — i.e. likely unrecognized by the current inference model — and
therefore worth uploading to the Cloud for incremental training.  The paper
deploys the unsupervised context network for this job; this module provides
that diagnoser plus the baselines the ablation benches compare against:

* :class:`JigsawDiagnoser` — the paper's design: a sample whose jigsaw
  puzzles the unsupervised network cannot solve confidently is flagged.
* :class:`InferenceConfidenceDiagnoser` — softmax-confidence thresholding on
  the inference network itself.
* :class:`OracleDiagnoser` — ground-truth misclassification (the "incorrect
  predictions" criterion of Fig. 7; an upper bound, not deployable).
* :class:`RandomDiagnoser` — uniform random selection at a fixed budget.

All diagnosers share one contract: ``flags(dataset)`` returns a boolean mask
with True for unrecognized/valuable samples.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import Dataset
from repro.nn import Sequential, softmax
from repro.obs import metrics as obs_metrics
from repro.selfsup.context_net import ContextNetwork
from repro.selfsup.jigsaw import JigsawSampler

__all__ = [
    "Diagnoser",
    "JigsawDiagnoser",
    "InferenceConfidenceDiagnoser",
    "OracleDiagnoser",
    "RandomDiagnoser",
]


class Diagnoser:
    """Interface: mark which samples are unrecognized (upload-worthy)."""

    def flags(self, data: Dataset) -> np.ndarray:
        raise NotImplementedError

    def diagnose(self, data: Dataset) -> np.ndarray:
        """``flags`` plus flag-rate accounting into the ambient metrics.

        The mask is identical to :meth:`flags`; the only addition is the
        scanned/flagged counters, recorded per diagnoser class so the
        upload-selectivity of each design is visible in one dump.
        """
        mask = self.flags(data)
        registry = obs_metrics.active()
        if registry is not None:
            kind = type(self).__name__
            registry.counter("diagnosis.scanned", diagnoser=kind).inc(
                len(data)
            )
            registry.counter("diagnosis.flagged", diagnoser=kind).inc(
                int(np.count_nonzero(mask))
            )
        return mask

    def upload_fraction(self, data: Dataset) -> float:
        """Fraction of the dataset that would be uploaded."""
        if len(data) == 0:
            raise ValueError("cannot diagnose an empty dataset")
        return float(self.flags(data).mean())


class JigsawDiagnoser(Diagnoser):
    """Diagnosis through the unsupervised context network.

    Each image is turned into ``trials`` jigsaw puzzles with known
    permutations; the sample counts as *recognized* when the network solves
    at least ``min_correct`` of them.  Failing the spatial-context task
    indicates the trunk's features do not describe the image well — the same
    features the inference network relies on — so the sample is valuable.

    ``score`` exposes the underlying mean-confidence signal for threshold
    calibration (see :mod:`repro.diagnosis.policy`).
    """

    def __init__(
        self,
        network: ContextNetwork,
        sampler: JigsawSampler,
        *,
        trials: int = 2,
        min_correct: int | None = None,
        rng: np.random.Generator | None = None,
        batch_size: int = 64,
    ) -> None:
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.network = network
        self.sampler = sampler
        self.trials = trials
        self.min_correct = min_correct if min_correct is not None else trials
        if not 1 <= self.min_correct <= trials:
            raise ValueError("min_correct must be in [1, trials]")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.batch_size = batch_size

    def _solve_counts(self, images: np.ndarray) -> np.ndarray:
        """Puzzles solved per image, out of ``self.trials``."""
        counts = np.zeros(len(images), dtype=np.int64)
        for _ in range(self.trials):
            for start in range(0, len(images), self.batch_size):
                stop = start + self.batch_size
                tiles, labels = self.sampler.batch(images[start:stop])
                logits = self.network.predict(tiles)
                counts[start:stop] += logits.argmax(axis=1) == labels
        return counts

    def flags(self, data: Dataset) -> np.ndarray:
        counts = self._solve_counts(data.images)
        return counts < self.min_correct

    def score(self, data: Dataset) -> np.ndarray:
        """Mean correct-permutation probability per image (high = recognized)."""
        scores = np.zeros(len(data))
        for _ in range(self.trials):
            for start in range(0, len(data), self.batch_size):
                stop = start + self.batch_size
                tiles, labels = self.sampler.batch(data.images[start:stop])
                probs = softmax(self.network.predict(tiles), axis=1)
                scores[start:stop] += probs[np.arange(len(labels)), labels]
        return scores / self.trials


class InferenceConfidenceDiagnoser(Diagnoser):
    """Flag samples whose inference softmax confidence is below a threshold."""

    def __init__(
        self, network: Sequential, threshold: float = 0.6, *, batch_size: int = 128
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.network = network
        self.threshold = threshold
        self.batch_size = batch_size

    def score(self, data: Dataset) -> np.ndarray:
        scores = np.zeros(len(data))
        for start in range(0, len(data), self.batch_size):
            stop = start + self.batch_size
            probs = softmax(self.network.predict(data.images[start:stop]), axis=1)
            scores[start:stop] = probs.max(axis=1)
        return scores

    def flags(self, data: Dataset) -> np.ndarray:
        return self.score(data) < self.threshold


class OracleDiagnoser(Diagnoser):
    """Ground-truth misclassification — the ideal "unrecognized" criterion.

    Requires labels, so it is an experimental upper bound (it is exactly the
    selection rule Fig. 7 uses when it builds Net-Err from the images the
    model got wrong).
    """

    def __init__(self, network: Sequential, *, batch_size: int = 128) -> None:
        self.network = network
        self.batch_size = batch_size

    def flags(self, data: Dataset) -> np.ndarray:
        wrong = np.zeros(len(data), dtype=bool)
        for start in range(0, len(data), self.batch_size):
            stop = start + self.batch_size
            preds = self.network.predict(data.images[start:stop]).argmax(axis=1)
            wrong[start:stop] = preds != data.labels[start:stop]
        return wrong


class RandomDiagnoser(Diagnoser):
    """Upload a uniform random fraction — the naive budget baseline."""

    def __init__(self, fraction: float, *, rng: np.random.Generator) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.rng = rng

    def flags(self, data: Dataset) -> np.ndarray:
        return self.rng.random(len(data)) < self.fraction
