"""Diagnosis calibration and upload policies."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.diagnosis.diagnoser import Diagnoser

__all__ = [
    "calibrate_threshold",
    "BudgetedDiagnoser",
    "DiagnosisReport",
    "evaluate_diagnoser",
]


def calibrate_threshold(scores: np.ndarray, target_fraction: float) -> float:
    """Threshold such that ~``target_fraction`` of scores fall below it.

    Used to calibrate score-based diagnosers against an upload budget: flag
    the lowest-scoring ``target_fraction`` of samples.
    """
    scores = np.asarray(scores, dtype=np.float64)  # repro-lint: ignore[RPR004] cold-path quantile; goldens pin the f64 threshold values
    if scores.size == 0:
        raise ValueError("cannot calibrate on zero scores")
    if not 0.0 <= target_fraction <= 1.0:
        raise ValueError("target_fraction must be in [0, 1]")
    if target_fraction == 0.0:
        return float(scores.min()) - 1e-9
    if target_fraction == 1.0:
        return float(scores.max()) + 1e-9
    return float(np.quantile(scores, target_fraction))


class BudgetedDiagnoser(Diagnoser):
    """Cap another diagnoser's upload fraction at a hard budget.

    Battery- or bandwidth-limited nodes cannot always afford to upload
    everything a diagnoser flags.  When the base diagnoser exposes a
    ``score`` method (low score = more valuable), the budget keeps the
    lowest-scoring flagged samples; otherwise a uniform random subset of
    the flags is kept.
    """

    def __init__(
        self,
        base: Diagnoser,
        budget_fraction: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in [0, 1]")
        self.base = base
        self.budget_fraction = budget_fraction
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def flags(self, data: Dataset) -> np.ndarray:
        flags = self.base.flags(data)
        limit = int(np.floor(self.budget_fraction * len(data)))
        flagged = int(flags.sum())
        if flagged <= limit:
            return flags
        indices = np.flatnonzero(flags)
        if hasattr(self.base, "score"):
            scores = self.base.score(data)[indices]
            keep = indices[np.argsort(scores)[:limit]]
        else:
            keep = self.rng.choice(indices, size=limit, replace=False)
        capped = np.zeros_like(flags)
        capped[keep] = True
        return capped


@dataclass(frozen=True)
class DiagnosisReport:
    """Quality of a diagnoser measured against the misclassification oracle."""

    upload_fraction: float
    precision: float  # flagged samples that were actually misclassified
    recall: float  # misclassified samples that were flagged
    error_rate: float  # overall misclassification rate of the model

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_diagnoser(
    diagnoser: Diagnoser, oracle: Diagnoser, data: Dataset
) -> DiagnosisReport:
    """Score a diagnoser's flags against ground-truth misclassification."""
    if len(data) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    flagged = diagnoser.flags(data)
    wrong = oracle.flags(data)
    true_pos = float(np.logical_and(flagged, wrong).sum())
    precision = true_pos / flagged.sum() if flagged.any() else 0.0
    recall = true_pos / wrong.sum() if wrong.any() else 1.0
    return DiagnosisReport(
        upload_fraction=float(flagged.mean()),
        precision=float(precision),
        recall=float(recall),
        error_rate=float(wrong.mean()),
    )
