"""2-D convolution layer implemented with im2col matrix multiplication.

This is the layer the whole paper revolves around: Eq. (1) measures its op
count, the GPU model times its matmul form (Fig. 8), and the FPGA engines in
``repro.hw`` execute its loop-nest form (Fig. 9).  The numerical layer here
is the *functional* reference those hardware models are validated against.

The dense path keeps a small per-layer pool of scratch arrays (column
matrices, gradient rows, col2im scratch) so the steady-state training loop
performs no large allocations: the same buffers are rewritten every step.
All reuse is pure data movement — GEMM call shapes and accumulation order
are unchanged — so results stay bit-identical to the unpooled code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.base import Layer, Shape
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.init import he_normal
from repro.nn.tensor import Parameter
from repro.obs.profile import profiled

__all__ = ["Conv2D"]


class _ScratchPool:
    """Reusable scratch arrays keyed by (role, shape, dtype).

    A convolution layer sees a handful of distinct batch shapes (train
    batches, the trailing partial batch, eval batches); the pool keeps one
    live array per role/shape pair with LRU eviction so alternating shapes
    don't thrash.  Evicting an array that a caller still references is
    harmless — they hold the only reference and it simply stops being
    reused.
    """

    __slots__ = ("_arrays", "_cap")

    def __init__(self, cap: int = 16) -> None:
        self._arrays: dict[tuple, np.ndarray] = {}
        self._cap = cap

    def get(
        self, role: str, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        key = (role, shape, np.dtype(dtype).str)
        buf = self._arrays.pop(key, None)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
        self._arrays[key] = buf
        while len(self._arrays) > self._cap:
            del self._arrays[next(iter(self._arrays))]
        return buf


class Conv2D(Layer):
    """Square-kernel 2-D convolution over NCHW batches.

    Parameters
    ----------
    in_channels:
        ``N`` in the paper's notation — number of input feature maps.
    out_channels:
        ``M`` — number of filters / output feature maps.
    kernel:
        ``K`` — square kernel side.
    stride, pad:
        Convolution geometry.
    groups:
        Channel groups (AlexNet's two-tower convs use 2): input and output
        channels are split into ``groups`` independent convolutions.
    rng:
        Generator for He-normal weight init; required so model builds are
        reproducible.

    Notes
    -----
    ``backward`` returns an input gradient that may alias a per-layer
    scratch buffer rewritten on the *next* ``backward`` call; consume it
    within the current backprop pass (as :class:`~repro.nn.network.Sequential`
    does) rather than storing it across steps.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        *,
        groups: int = 1,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ) -> None:
        if min(in_channels, out_channels, kernel, stride, groups) < 1:
            raise ValueError("conv dimensions must be >= 1")
        if pad < 0:
            raise ValueError("pad must be >= 0")
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels} -> {out_channels}) must divide "
                f"evenly into {groups} groups"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups
        self.name = name
        fan_in = (in_channels // groups) * kernel * kernel
        self.weight = Parameter(
            he_normal(
                (out_channels, in_channels // groups, kernel, kernel),
                fan_in,
                rng,
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias")
        #: set True (e.g. by Sequential) when no upstream layer consumes the
        #: input gradient, letting backward skip the expensive col2im scatter
        self.skip_input_grad = False
        self._cache: tuple[np.ndarray, Shape] | None = None
        self._pool = _ScratchPool()

    @property
    def parameters(self) -> Sequence[Parameter]:
        return (self.weight, self.bias)

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} channels, "
                f"got {channels}"
            )
        out_h = conv_output_size(height, self.kernel, self.stride, self.pad)
        out_w = conv_output_size(width, self.kernel, self.stride, self.pad)
        return (self.out_channels, out_h, out_w)

    @profiled("conv.forward")
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if self.groups == 1:
            return self._forward_dense(x, training=training)
        return self._forward_grouped(x, training=training)

    @profiled("conv.backward")
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called without a training forward"
            )
        if self.groups == 1:
            return self._backward_dense(grad_out)
        return self._backward_grouped(grad_out)

    # ------------------------------------------------------------------
    # groups == 1 (the common path)
    # ------------------------------------------------------------------
    def _col_shape(self, x_shape: Shape) -> tuple[int, int]:
        batch = x_shape[0]
        _, out_h, out_w = self.output_shape(x_shape[1:])
        return (
            batch * out_h * out_w,
            self.in_channels * self.kernel * self.kernel,
        )

    def _forward_dense(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        batch = x.shape[0]
        _, out_h, out_w = self.output_shape(x.shape[1:])
        if training:
            # The training column matrix lives in self._cache until backward
            # consumes it; only hand out the pooled buffer when no live cache
            # still points at it.
            col_buf = (
                self._pool.get("cols_train", self._col_shape(x.shape), x.dtype)
                if self._cache is None
                else None
            )
        else:
            col_buf = self._pool.get(
                "cols_infer", self._col_shape(x.shape), x.dtype
            )
        cols = im2col(x, self.kernel, self.stride, self.pad, out=col_buf)
        # Fm (M x NK^2) @ Dm^T, computed as Dm_rows @ Fm^T for cache locality.
        flat_w = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ flat_w.T
        out += self.bias.data
        if training:
            self._cache = (cols, x.shape)
        return (
            out.reshape(batch, out_h, out_w, self.out_channels)
            .transpose(0, 3, 1, 2)
        )

    def _backward_dense(self, grad_out: np.ndarray) -> np.ndarray:
        cols, x_shape = self._cache
        self._cache = None
        batch, _, out_h, out_w = grad_out.shape
        rows_shape = (batch * out_h * out_w, self.out_channels)
        grad_rows = self._pool.get("grad_rows", rows_shape, grad_out.dtype)
        np.copyto(
            grad_rows.reshape(batch, out_h, out_w, self.out_channels),
            grad_out.transpose(0, 2, 3, 1),
        )
        flat_w = self.weight.data.reshape(self.out_channels, -1)
        grad_w = self._pool.get("grad_w", flat_w.shape, grad_rows.dtype)
        np.matmul(grad_rows.T, cols, out=grad_w)
        self.weight.accumulate(grad_w.reshape(self.weight.data.shape))
        self.bias.accumulate(grad_rows.sum(axis=0))
        if self.skip_input_grad:
            return np.zeros(x_shape, dtype=grad_out.dtype)
        grad_cols = self._pool.get("grad_cols", cols.shape, grad_rows.dtype)
        np.matmul(grad_rows, flat_w, out=grad_cols)
        six_shape = (
            batch,
            self.in_channels,
            self.kernel,
            self.kernel,
            out_h,
            out_w,
        )
        padded_shape = (
            batch,
            self.in_channels,
            x_shape[2] + 2 * self.pad,
            x_shape[3] + 2 * self.pad,
        )
        return col2im(
            grad_cols,
            x_shape,
            self.kernel,
            self.stride,
            self.pad,
            scratch=self._pool.get("col2im_scratch", six_shape, grad_rows.dtype),
            padded_out=self._pool.get(
                "col2im_padded", padded_shape, grad_rows.dtype
            ),
        )

    # ------------------------------------------------------------------
    # groups > 1 (AlexNet's two-tower convolutions)
    # ------------------------------------------------------------------
    def _forward_grouped(self, x: np.ndarray, *, training: bool) -> np.ndarray:
        batch = x.shape[0]
        _, out_h, out_w = self.output_shape(x.shape[1:])
        in_per = self.in_channels // self.groups
        out_per = self.out_channels // self.groups
        group_cols = []
        out = np.empty(
            (batch * out_h * out_w, self.out_channels), dtype=x.dtype
        )
        for g in range(self.groups):
            cols = im2col(
                x[:, g * in_per : (g + 1) * in_per],
                self.kernel,
                self.stride,
                self.pad,
            )
            group_cols.append(cols)
            w_g = self.weight.data[g * out_per : (g + 1) * out_per].reshape(
                out_per, -1
            )
            out[:, g * out_per : (g + 1) * out_per] = cols @ w_g.T
        out += self.bias.data
        if training:
            self._cache = (group_cols, x.shape)
        return (
            out.reshape(batch, out_h, out_w, self.out_channels)
            .transpose(0, 3, 1, 2)
        )

    def _backward_grouped(self, grad_out: np.ndarray) -> np.ndarray:
        group_cols, x_shape = self._cache
        self._cache = None
        batch, _, out_h, out_w = grad_out.shape
        in_per = self.in_channels // self.groups
        out_per = self.out_channels // self.groups
        grad_rows = grad_out.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        self.bias.accumulate(grad_rows.sum(axis=0))
        grad_in = (
            None
            if self.skip_input_grad
            else np.empty(x_shape, dtype=grad_out.dtype)
        )
        grad_w_full = np.empty_like(self.weight.data)
        for g in range(self.groups):
            rows_g = grad_rows[:, g * out_per : (g + 1) * out_per]
            cols = group_cols[g]
            grad_w_full[g * out_per : (g + 1) * out_per] = (
                rows_g.T @ cols
            ).reshape(out_per, in_per, self.kernel, self.kernel)
            if grad_in is not None:
                w_g = self.weight.data[
                    g * out_per : (g + 1) * out_per
                ].reshape(out_per, -1)
                grad_cols = rows_g @ w_g
                group_shape = (x_shape[0], in_per, x_shape[2], x_shape[3])
                grad_in[:, g * in_per : (g + 1) * in_per] = col2im(
                    grad_cols, group_shape, self.kernel, self.stride, self.pad
                )
        # Routed through accumulate (not a direct self.weight.grad poke) so
        # frozen-parameter semantics match the dense path.
        self.weight.accumulate(grad_w_full)
        if grad_in is None:
            return np.zeros(x_shape, dtype=grad_out.dtype)
        return grad_in
