"""im2col / col2im — the matrix-multiplication view of convolution.

The paper (Fig. 8) describes how GPUs convert convolutions into matrix
multiplications: ``im2col`` stretches local input regions into the columns of
a data matrix ``Dm`` (shape ``N*K*K x R*C``), the filters are flattened into
``Fm`` (shape ``M x N*K*K``), and the convolution becomes ``Fm @ Dm``.  This
module implements exactly that transformation (and its transpose, used by the
backward pass).
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    images:
        Batch in NCHW layout, shape ``(B, N, H, W)``.
    kernel, stride, pad:
        Square-kernel convolution geometry.

    Returns
    -------
    np.ndarray
        Shape ``(B * R * C, N * kernel * kernel)`` where ``R``/``C`` are the
        output spatial dims.  Row ``b*R*C + r*C + c`` holds the receptive
        field of output pixel ``(r, c)`` of sample ``b``.
    """
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )

    cols = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=images.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[
                :, :, ky:y_max:stride, kx:x_max:stride
            ]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )


def col2im(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Scatter columns back into an image batch (adjoint of :func:`im2col`).

    Overlapping patches are *summed*, which is exactly the gradient
    accumulation the convolution backward pass needs.
    """
    batch, channels, height, width = image_shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    cols6 = np.ascontiguousarray(cols6.transpose(0, 3, 4, 5, 1, 2))

    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols6[
                :, :, ky, kx, :, :
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
