"""im2col / col2im — the matrix-multiplication view of convolution.

The paper (Fig. 8) describes how GPUs convert convolutions into matrix
multiplications: ``im2col`` stretches local input regions into the columns of
a data matrix ``Dm`` (shape ``N*K*K x R*C``), the filters are flattened into
``Fm`` (shape ``M x N*K*K``), and the convolution becomes ``Fm @ Dm``.  This
module implements exactly that transformation (and its transpose, used by the
backward pass).

Both transforms are pure data movement, so they are bit-exact regardless of
strategy; the strategies below were picked by measurement:

* ``im2col`` builds the GEMM matrix from a zero-copy
  :func:`numpy.lib.stride_tricks.sliding_window_view` with a **single** copy
  into the output layout.  For 3x3 kernels the windowed copy's short inner
  runs lose to a two-step gather (per-tap slice copies into a small scratch,
  then one blocked transpose), so small kernels dispatch to that path — on
  one CPU core the split point is ~2.5x either way at AlexNet-ish shapes.
* ``col2im`` keeps a *contiguity copy* before the overlap-add scatter:
  scattering straight out of the transposed view was measured 1.5-2x slower
  (strided reads defeat the adds) than copy-then-contiguous-adds.  What the
  old implementation paid per call — fresh ``ascontiguousarray`` and
  ``zeros`` allocations — is instead hoisted into caller-reusable buffers.

Callers that run every step (:class:`~repro.nn.conv.Conv2D`) pass reusable
``out=`` / ``scratch=`` buffers so the hot loop stops allocating the big
column matrices at all.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.obs.profile import profiled

__all__ = ["conv_output_size", "im2col", "col2im"]

#: kernels at least this wide use the single-copy sliding-window gather;
#: smaller kernels (3x3, 2x2) measured faster on the two-step path.
_SLIDING_MIN_KERNEL = 4


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def _check_buffer(
    buf: np.ndarray, shape: tuple[int, ...], dtype: np.dtype, name: str
) -> None:
    if buf.shape != shape or buf.dtype != dtype:
        raise ValueError(
            f"{name} buffer mismatch: need {shape} {dtype}, "
            f"got {buf.shape} {buf.dtype}"
        )


@profiled("nn.im2col")
def im2col(
    images: np.ndarray,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    images:
        Batch in NCHW layout, shape ``(B, N, H, W)``.
    kernel, stride, pad:
        Square-kernel convolution geometry.
    out:
        Optional preallocated result buffer of the exact output shape and
        dtype; pass a reused per-layer buffer to keep the training hot loop
        allocation-free.

    Returns
    -------
    np.ndarray
        Shape ``(B * R * C, N * kernel * kernel)`` where ``R``/``C`` are the
        output spatial dims.  Row ``b*R*C + r*C + c`` holds the receptive
        field of output pixel ``(r, c)`` of sample ``b``.
    """
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )

    shape = (batch * out_h * out_w, channels * kernel * kernel)
    if out is None:
        out = np.empty(shape, dtype=images.dtype)
    else:
        _check_buffer(out, shape, images.dtype, "im2col out")
    out6 = out.reshape(batch, out_h, out_w, channels, kernel, kernel)

    if kernel >= _SLIDING_MIN_KERNEL or kernel == 1:
        windows = sliding_window_view(images, (kernel, kernel), axis=(2, 3))[
            :, :, ::stride, ::stride
        ]
        np.copyto(out6, windows.transpose(0, 2, 3, 1, 4, 5))
        return out

    cols = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=images.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[
                :, :, ky:y_max:stride, kx:x_max:stride
            ]
    np.copyto(out6, cols.transpose(0, 4, 5, 1, 2, 3))
    return out


@profiled("nn.col2im")
def col2im(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    pad: int = 0,
    *,
    scratch: np.ndarray | None = None,
    padded_out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter columns back into an image batch (adjoint of :func:`im2col`).

    Overlapping patches are *summed*, which is exactly the gradient
    accumulation the convolution backward pass needs.

    ``scratch`` (shape ``(B, N, K, K, R, C)``) receives the contiguity copy
    and ``padded_out`` (shape ``(B, N, H+2p, W+2p)``) the accumulation;
    passing reused buffers makes the call allocation-free.  When ``pad > 0``
    the returned array is a view into ``padded_out``.
    """
    batch, channels, height, width = image_shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    six_shape = (batch, channels, kernel, kernel, out_h, out_w)
    if scratch is None:
        scratch = np.empty(six_shape, dtype=cols.dtype)
    else:
        _check_buffer(scratch, six_shape, cols.dtype, "col2im scratch")
    # One blocked copy into (B, N, K, K, R, C): the K*K overlap-adds below
    # then stream over contiguous planes, which measures 1.5-2x faster than
    # adding straight from the transposed view.
    np.copyto(
        scratch,
        cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
            0, 3, 4, 5, 1, 2
        ),
    )

    padded_shape = (batch, channels, height + 2 * pad, width + 2 * pad)
    if padded_out is None:
        padded = np.zeros(padded_shape, dtype=cols.dtype)
    else:
        _check_buffer(padded_out, padded_shape, cols.dtype, "col2im padded")
        padded = padded_out
        padded.fill(0.0)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += scratch[
                :, :, ky, kx, :, :
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
