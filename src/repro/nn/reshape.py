"""Shape-manipulating layers."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Shape

__all__ = ["Flatten"]


class Flatten(Layer):
    """Flatten everything but the batch dimension (CONV -> FCN boundary)."""

    def __init__(self, name: str = "flatten") -> None:
        self.name = name
        self._in_shape: tuple[int, ...] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        shape, self._in_shape = self._in_shape, None
        return grad_out.reshape(shape)
