"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Shape

__all__ = ["Dropout"]


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    Uses its own :class:`numpy.random.Generator` so training runs are
    reproducible independently of any other randomness in the program.
    """

    def __init__(
        self,
        rate: float = 0.5,
        *,
        rng: np.random.Generator | None = None,
        name: str = "dropout",
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.name = name
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None if not training else np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        mask = ((self._rng.random(x.shape) < keep) / keep).astype(x.dtype)
        self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        mask, self._mask = self._mask, None
        return grad_out * mask
