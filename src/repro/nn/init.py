"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so every
experiment in the repo is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "gaussian", "zeros"]


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He et al. initialization, the right default for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for tanh/sigmoid layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def gaussian(
    shape: tuple[int, ...], std: float, rng: np.random.Generator
) -> np.ndarray:
    """Plain Gaussian init (Caffe's historical default)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
