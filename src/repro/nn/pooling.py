"""Spatial pooling layers (max / average / global average)."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Shape
from repro.nn.im2col import conv_output_size

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


def _windows(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """View the input as ``(B, C, R, C_out, kernel, kernel)`` windows."""
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, 0)
    out_w = conv_output_size(width, kernel, stride, 0)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    return np.lib.stride_tricks.as_strided(
        x, (batch, channels, out_h, out_w, kernel, kernel), strides
    )


class MaxPool2D(Layer):
    """Max pooling with a square window.

    AlexNet/VGG use overlapping and non-overlapping variants; both are
    supported via independent ``kernel``/``stride``.
    """

    def __init__(self, kernel: int, stride: int | None = None, name: str = "pool") -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        self.name = name
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        return (
            channels,
            conv_output_size(height, self.kernel, self.stride, 0),
            conv_output_size(width, self.kernel, self.stride, 0),
        )

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        windows = _windows(x, self.kernel, self.stride)
        out = windows.max(axis=(4, 5))
        if training:
            self._cache = (x, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x, out = self._cache
        self._cache = None
        k, s = self.kernel, self.stride
        if k == s and x.shape[2] % k == 0 and x.shape[3] % k == 0:
            return self._backward_tiled(x, out, grad_out)
        grad_in = np.zeros_like(x)
        out_h, out_w = out.shape[2], out.shape[3]
        for r in range(out_h):
            for c in range(out_w):
                window = x[:, :, r * s : r * s + k, c * s : c * s + k]
                mask = window == out[:, :, r : r + 1, c : c + 1]
                # Split gradient equally among ties (matters for flat inputs).
                counts = mask.sum(axis=(2, 3), keepdims=True).astype(
                    grad_out.dtype
                )
                grad_in[:, :, r * s : r * s + k, c * s : c * s + k] += (
                    mask * grad_out[:, :, r : r + 1, c : c + 1] / counts
                )
        return grad_in

    def _backward_tiled(
        self, x: np.ndarray, out: np.ndarray, grad_out: np.ndarray
    ) -> np.ndarray:
        """Vectorized backward for non-overlapping pooling (the common case)."""
        batch, channels, height, width = x.shape
        k = self.kernel
        tiles = x.reshape(batch, channels, height // k, k, width // k, k)
        mask = tiles == out[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True).astype(grad_out.dtype)
        grad = mask * grad_out[:, :, :, None, :, None] / counts
        return grad.reshape(batch, channels, height, width)


class AvgPool2D(Layer):
    def __init__(self, kernel: int, stride: int | None = None, name: str = "avgpool") -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        self.name = name
        self._in_shape: tuple[int, ...] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = input_shape
        return (
            channels,
            conv_output_size(height, self.kernel, self.stride, 0),
            conv_output_size(width, self.kernel, self.stride, 0),
        )

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        windows = _windows(x, self.kernel, self.stride)
        if training:
            self._in_shape = x.shape
        return windows.mean(axis=(4, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        shape, self._in_shape = self._in_shape, None
        grad_in = np.zeros(shape, dtype=grad_out.dtype)
        k, s = self.kernel, self.stride
        share = grad_out / (k * k)
        for r in range(grad_out.shape[2]):
            for c in range(grad_out.shape[3]):
                grad_in[:, :, r * s : r * s + k, c * s : c * s + k] += share[
                    :, :, r : r + 1, c : c + 1
                ]
        return grad_in


class GlobalAvgPool2D(Layer):
    """Average each feature map down to a single value (GoogleNet-style head)."""

    def __init__(self, name: str = "gap") -> None:
        self.name = name
        self._in_shape: tuple[int, ...] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        channels = input_shape[0]
        return (channels,)

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if training:
            self._in_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        shape, self._in_shape = self._in_shape, None
        _, _, height, width = shape
        grad = grad_out[:, :, None, None] / (height * width)
        return np.broadcast_to(grad, shape).copy()
