"""Global numeric configuration for the framework.

Training at IoT scale on CPU is memory-bandwidth bound, so the framework
defaults to ``float32`` (as Caffe and the TX1 do).  Gradient-check tests
switch to ``float64`` for headroom via :func:`set_default_dtype`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["default_dtype", "set_default_dtype", "dtype_scope"]

_DEFAULT_DTYPE = np.float32


def default_dtype() -> np.dtype:
    """The dtype new parameters and datasets are created with."""
    return np.dtype(_DEFAULT_DTYPE)


def set_default_dtype(dtype: np.dtype | type) -> None:
    """Set the framework-wide default floating dtype."""
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be floating, got {resolved}")
    _DEFAULT_DTYPE = resolved


@contextmanager
def dtype_scope(dtype: np.dtype | type) -> Iterator[None]:
    """Temporarily switch the default dtype (used by gradient-check tests)."""
    previous = default_dtype()
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
