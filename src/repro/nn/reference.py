"""Reference (pre-optimization) implementations of the NN hot paths.

These are the loop-based ``im2col``/``col2im`` from the original tree, kept
verbatim as the ground truth for two consumers:

* the hypothesis property tests in ``tests/nn/test_im2col.py``, which assert
  the optimized :mod:`repro.nn.im2col` matches these **bit-exactly** across a
  kernel/stride/pad grid, and
* ``benchmarks/bench_hotpath.py``, which reports optimized-vs-reference
  speedups without needing to check out the old revision.

Do not optimize this module — its whole value is staying slow and obviously
correct.
"""

from __future__ import annotations

import numpy as np

from .im2col import conv_output_size

__all__ = ["im2col_reference", "col2im_reference"]


def im2col_reference(
    images: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Loop-based im2col: per-tap gather then transpose+reshape copy."""
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )

    cols = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=images.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[
                :, :, ky:y_max:stride, kx:x_max:stride
            ]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )


def col2im_reference(
    cols: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Loop-based col2im with per-call ``ascontiguousarray``/``zeros``."""
    batch, channels, height, width = image_shape
    out_h = conv_output_size(height, kernel, stride, pad)
    out_w = conv_output_size(width, kernel, stride, pad)

    cols6 = cols.reshape(batch, out_h, out_w, channels, kernel, kernel)
    cols6 = np.ascontiguousarray(cols6.transpose(0, 3, 4, 5, 1, 2))

    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=cols.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols6[
                :, :, ky, kx, :, :
            ]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
