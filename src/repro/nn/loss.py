"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import softmax

__all__ = ["CrossEntropyLoss", "MSELoss", "accuracy", "top_k_accuracy"]


class CrossEntropyLoss:
    """Fused softmax + cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient of
    that mean loss w.r.t. the logits (the familiar ``(p - y) / B``).
    """

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch "
                f"{logits.shape[0]}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("labels out of range for logits")
        probs = softmax(logits, axis=1)
        self._cache = (probs, labels)
        picked = probs[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        self._cache = None
        grad = probs.copy()
        grad[np.arange(len(labels)), labels] -= 1.0
        return grad / len(labels)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error over arbitrary-shaped targets."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        if pred.shape != target.shape:
            raise ValueError(
                f"prediction shape {pred.shape} != target shape {target.shape}"
            )
        self._cache = (pred, target)
        return float(np.mean((pred - target) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        pred, target = self._cache
        self._cache = None
        return 2.0 * (pred - target) / pred.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    labels = np.asarray(labels)
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((logits.argmax(axis=1) == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy in [0, 1]."""
    labels = np.asarray(labels)
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    k = min(k, logits.shape[1])
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())
