"""Optimizers and learning-rate schedules.

SGD with momentum and weight decay covers everything the paper trains (it
uses Caffe's standard solver).  Frozen parameters are skipped entirely, which
is both correct for CONV-i locking and the source of the locked-layer
training speedup measured in Fig. 6.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["SGD", "StepLR", "ConstantLR"]


class SGD:
    """Stochastic gradient descent with classical momentum.

    Parameters
    ----------
    params:
        Parameters to update (frozen ones are filtered per-step, so freezing
        after construction works).
    lr:
        Learning rate.
    momentum:
        Classical momentum coefficient in [0, 1).
    weight_decay:
        L2 penalty added to the gradient.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, vel in zip(self.params, self._velocity):
            if p.frozen:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            vel *= self.momentum
            vel -= self.lr * grad
            p.data += vel

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class ConstantLR:
    """Trivial schedule: the learning rate never changes."""

    def __init__(self, optimizer: SGD) -> None:
        self.optimizer = optimizer

    def step(self) -> None:
        return None


class StepLR:
    """Decay the learning rate by ``gamma`` every ``step_size`` calls."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
