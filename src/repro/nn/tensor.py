"""Parameter container used by every trainable layer.

The framework keeps things deliberately simple: a :class:`Parameter` is a
numpy array plus its gradient accumulator and a ``frozen`` flag.  Freezing is
a first-class concept because the paper's transfer-learning strategy (lock
the first *n* convolutional layers, Fig. 6) and its FPGA weight-sharing
architecture both hinge on which weights are fixed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.config import default_dtype

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with a gradient buffer.

    Parameters
    ----------
    data:
        Initial value.  Stored in the framework default dtype (``float32``
        unless changed via :func:`repro.nn.config.set_default_dtype`).
    name:
        Human-readable identifier used in network summaries and when copying
        weights between networks during transfer learning.
    """

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=default_dtype())
        self.grad = np.zeros_like(self.data)  # repro-lint: ignore[RPR007] Parameter owns the buffer it allocates
        self.name = name
        self.frozen = False

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator in place."""
        self.grad[...] = 0.0  # repro-lint: ignore[RPR007] zero_grad is one of the two sanctioned write points

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient buffer unless the parameter is frozen.

        Frozen parameters skip accumulation entirely — this is what makes
        locked-layer fine-tuning cheaper (the paper reports a 1.7X training
        speedup from sharing conv1-conv3), and the optimizer never touches
        them either.
        """
        if self.frozen:
            return
        self.grad += grad  # repro-lint: ignore[RPR007] accumulate() is the sanctioned write point the rule funnels everyone into

    def copy_from(self, other: "Parameter") -> None:
        """Copy another parameter's values (transfer-learning surgery)."""
        if other.data.shape != self.data.shape:
            raise ValueError(
                f"shape mismatch copying {other.name} {other.data.shape} "
                f"into {self.name} {self.data.shape}"
            )
        self.data[...] = other.data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "frozen" if self.frozen else "trainable"
        return f"Parameter({self.name}, shape={self.data.shape}, {state})"
