"""Sequential network container with transfer-learning surgery hooks.

Beyond forward/backward, the container supports the operations the paper's
framework needs constantly: naming and addressing layers ("conv1"..."conv5",
"fc6"...), freezing prefixes of convolutional layers (CONV-i locking, Fig. 6),
copying the first *n* layers' weights from a donor network (Fig. 4 transfer),
and saving/loading weights as ``.npz`` files so cloud and node can exchange
models.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.nn.base import Layer, Shape
from repro.nn.conv import Conv2D
from repro.nn.tensor import Parameter

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers.

    Parameters
    ----------
    layers:
        Layers in execution order.  Each layer must carry a unique ``name``;
        names are the handles used for weight copying and freezing.
    input_shape:
        Per-sample input shape (C, H, W) used for shape validation and
        summaries.
    """

    def __init__(self, layers: Iterable[Layer], input_shape: Shape) -> None:
        self.layers: list[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate layer names: {dupes}")
        # Validate that shapes chain together; fail at build time, not epoch 3.
        shape = self.input_shape
        self._shapes: list[Shape] = [shape]
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)
        # The first layer's input gradient has no consumer; let convs skip
        # the expensive col2im scatter there.
        if self.layers and isinstance(self.layers[0], Conv2D):
            self.layers[0].skip_input_grad = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no caches, dropout off)."""
        return self.forward(x, training=False)

    def __call__(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def output_shape(self) -> Shape:
        return self._shapes[-1]

    def layer_output_shape(self, name: str) -> Shape:
        return self._shapes[self._index_of(name) + 1]

    def shape_at(self, index: int) -> Shape:
        """Input shape seen by layer ``index`` (``len(self)`` = output shape)."""
        return self._shapes[index]

    @property
    def parameters(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, name: str) -> Layer:
        return self.layers[self._index_of(name)]

    def _index_of(self, name: str) -> int:
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"no layer named {name!r}")

    def conv_layers(self) -> list[Conv2D]:
        """Convolutional layers in order (the paper's conv1..convN)."""
        return [layer for layer in self.layers if isinstance(layer, Conv2D)]

    def summary(self) -> str:
        """Human-readable table of layers, shapes, and parameter counts."""
        lines = [f"{'layer':<14}{'type':<18}{'output shape':<18}{'params':>10}"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            flag = " (frozen)" if layer.frozen else ""
            lines.append(
                f"{layer.name:<14}{type(layer).__name__:<18}"
                f"{str(shape):<18}{layer.num_parameters:>10}{flag}"
            )
        lines.append(f"total parameters: {self.num_parameters}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Training-state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def freeze_layers(self, names: Sequence[str]) -> None:
        """Freeze the named layers (paper: lock conv1..convi)."""
        for name in names:
            self[name].freeze()

    def unfreeze_all(self) -> None:
        for layer in self.layers:
            layer.unfreeze()

    def frozen_layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers if layer.frozen]

    # ------------------------------------------------------------------
    # Weight exchange (cloud <-> node model deployment)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """All weights keyed by parameter name."""
        return {p.name: p.data.copy() for p in self.parameters}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for p in self.parameters:
            if p.name not in state:
                raise KeyError(f"missing parameter {p.name!r} in state dict")
            if state[p.name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {p.name}: "
                    f"{state[p.name].shape} vs {p.data.shape}"
                )
            p.data[...] = state[p.name]

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def copy_layer_weights(self, donor: "Sequential", names: Sequence[str]) -> None:
        """Copy the named layers' parameters from ``donor``.

        This is the transfer-learning primitive of Fig. 4: copy the first
        ``n`` layers of the unsupervised network into the inference network.
        Layers are matched by name and must agree in parameter shapes.
        """
        for name in names:
            src = donor[name]
            dst = self[name]
            src_params = src.parameters
            dst_params = dst.parameters
            if len(src_params) != len(dst_params):
                raise ValueError(
                    f"layer {name!r}: donor has {len(src_params)} params, "
                    f"target has {len(dst_params)}"
                )
            for sp, dp in zip(src_params, dst_params):
                dp.copy_from(sp)

    def clone_weights_to(self, other: "Sequential") -> None:
        """Copy every same-named layer's weights into ``other``."""
        names = [
            layer.name
            for layer in self.layers
            if layer.parameters
            and any(o.name == layer.name for o in other.layers)
        ]
        other.copy_layer_weights(self, names)
