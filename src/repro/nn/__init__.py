"""From-scratch numpy deep-learning framework.

This is the training/inference substrate for the In-situ AI reproduction —
the role Caffe plays in the paper.  NCHW layout throughout; explicit
forward/backward with per-layer caches; first-class support for layer
freezing and weight transfer (the operations the paper's framework relies
on).
"""

from repro.nn.activations import (
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    softmax,
)
from repro.nn.base import Layer
from repro.nn.config import default_dtype, dtype_scope, set_default_dtype
from repro.nn.conv import Conv2D
from repro.nn.dropout import Dropout
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.linear import Linear
from repro.nn.loss import CrossEntropyLoss, MSELoss, accuracy, top_k_accuracy
from repro.nn.network import Sequential
from repro.nn.norm import BatchNorm2D, LocalResponseNorm
from repro.nn.optim import SGD, ConstantLR, StepLR
from repro.nn.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.reshape import Flatten
from repro.nn.tensor import Parameter

__all__ = [
    "AvgPool2D",
    "BatchNorm2D",
    "ConstantLR",
    "Conv2D",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "Layer",
    "LeakyReLU",
    "Linear",
    "LocalResponseNorm",
    "MSELoss",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softmax",
    "StepLR",
    "Tanh",
    "accuracy",
    "col2im",
    "conv_output_size",
    "default_dtype",
    "dtype_scope",
    "im2col",
    "set_default_dtype",
    "softmax",
    "top_k_accuracy",
]
