"""Normalization layers: local response norm (AlexNet) and batch norm."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.base import Layer, Shape
from repro.nn.tensor import Parameter

__all__ = ["LocalResponseNorm", "BatchNorm2D"]


class LocalResponseNorm(Layer):
    """Cross-channel LRN as used by AlexNet.

    ``b_c = a_c / (k + alpha/n * sum_{c'} a_{c'}^2) ** beta`` with the sum over
    a window of ``n`` adjacent channels.  Backward is implemented with the
    exact analytic gradient.
    """

    def __init__(
        self,
        size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 2.0,
        name: str = "lrn",
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.name = name
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def _denominator(self, x: np.ndarray) -> np.ndarray:
        sq = x * x
        channels = x.shape[1]
        half = self.size // 2
        acc = np.zeros_like(x)
        for offset in range(-half, half + 1):
            lo = max(0, -offset)
            hi = min(channels, channels - offset)
            acc[:, lo:hi] += sq[:, lo + offset : hi + offset]
        return self.k + (self.alpha / self.size) * acc

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        denom = self._denominator(x)
        out = x * denom ** (-self.beta)
        if training:
            self._cache = (x, denom, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x, denom, out = self._cache
        self._cache = None
        channels = x.shape[1]
        half = self.size // 2
        # d out_c / d x_j = denom^-beta * [c==j]
        #   - 2 beta alpha/n * x_c * x_j * denom_c^(-beta-1) for |c-j| <= half
        ratio = grad_out * out / denom  # grad * x_c * denom^(-beta-1)
        cross = np.zeros_like(x)
        for offset in range(-half, half + 1):
            lo = max(0, -offset)
            hi = min(channels, channels - offset)
            cross[:, lo + offset : hi + offset] += ratio[:, lo:hi]
        return grad_out * denom ** (-self.beta) - (
            2.0 * self.beta * self.alpha / self.size
        ) * x * cross


class BatchNorm2D(Layer):
    """Batch normalization over NCHW feature maps with running statistics."""

    def __init__(
        self,
        channels: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: str = "bn",
    ) -> None:
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.name = name
        self.gamma = Parameter(np.ones(channels), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{name}.beta")
        self.running_mean = np.zeros(channels, dtype=self.gamma.data.dtype)
        self.running_var = np.ones(channels, dtype=self.gamma.data.dtype)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def parameters(self) -> Sequence[Parameter]:
        return (self.gamma, self.beta)

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(
                f"{self.name}: expected {self.channels} channels, got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(self.running_mean.dtype)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(self.running_var.dtype)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if training:
            self._cache = (x_hat, inv_std, x)
        return (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x_hat, inv_std, x = self._cache
        self._cache = None
        count = x.shape[0] * x.shape[2] * x.shape[3]
        self.gamma.accumulate((grad_out * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate(grad_out.sum(axis=(0, 2, 3)))
        g = grad_out * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (g - sum_g / count - x_hat * sum_gx / count)
        )
