"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.base import Layer, Shape

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Softmax", "softmax"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class _Elementwise(Layer):
    """Shared machinery for shape-preserving activations."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape


class ReLU(_Elementwise):
    def __init__(self, name: str = "relu") -> None:
        self.name = name
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        mask, self._mask = self._mask, None
        return np.where(mask, grad_out, 0.0)


class LeakyReLU(_Elementwise):
    def __init__(self, slope: float = 0.01, name: str = "lrelu") -> None:
        if slope < 0:
            raise ValueError("slope must be >= 0")
        self.slope = slope
        self.name = name
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        mask, self._mask = self._mask, None
        return np.where(mask, grad_out, self.slope * grad_out)


class Tanh(_Elementwise):
    def __init__(self, name: str = "tanh") -> None:
        self.name = name
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        out, self._out = self._out, None
        return grad_out * (1.0 - out * out)


class Sigmoid(_Elementwise):
    def __init__(self, name: str = "sigmoid") -> None:
        self.name = name
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        out, self._out = self._out, None
        return grad_out * out * (1.0 - out)


class Softmax(_Elementwise):
    """Softmax over the last axis, usable as a standalone inference head.

    Training normally uses the fused softmax-cross-entropy loss instead (see
    :mod:`repro.nn.loss`) for numerical stability, so ``backward`` here
    implements the full Jacobian product for completeness.
    """

    def __init__(self, name: str = "softmax") -> None:
        self.name = name
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = softmax(x, axis=-1)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        out, self._out = self._out, None
        dot = (grad_out * out).sum(axis=-1, keepdims=True)
        return out * (grad_out - dot)
