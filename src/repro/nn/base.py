"""Layer protocol shared by every module in the framework.

Layers are stateful objects with an explicit ``forward`` / ``backward`` pair.
The design mirrors Caffe (the training framework used by the paper) rather
than autograd frameworks: each layer caches what it needs during the forward
pass and consumes it during backward.  That keeps the substrate small,
auditable, and fast enough for IoT-scale experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["Layer", "Shape"]

Shape = tuple[int, ...]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward`, :meth:`backward`, and
    :meth:`output_shape`.  Layers with weights expose them through
    :attr:`parameters`.
    """

    #: set by Sequential when the layer is registered, e.g. ``"conv1"``
    name: str = ""

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def parameters(self) -> Sequence[Parameter]:
        """Trainable parameters (empty for stateless layers)."""
        return ()

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of the output for a single sample (no batch dimension)."""
        raise NotImplementedError

    @property
    def frozen(self) -> bool:
        """True when every parameter of the layer is frozen."""
        params = self.parameters
        return bool(params) and all(p.frozen for p in params)

    def freeze(self) -> None:
        """Lock all parameters (paper: 'CONV-i locking')."""
        for p in self.parameters:
            p.frozen = True

    def unfreeze(self) -> None:
        for p in self.parameters:
            p.frozen = False

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"
