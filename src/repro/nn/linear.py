"""Fully-connected (FCN) layer.

The paper treats FCN layers as a special case of convolution with
``K = R = C = 1`` (Eq. 8) and shows they dominate runtime at small batch
sizes (Fig. 12) because their weights see no reuse.  The numeric layer here
is a plain dense matmul; the reuse/bandwidth story lives in ``repro.hw``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.base import Layer, Shape
from repro.nn.init import he_normal
from repro.nn.tensor import Parameter

__all__ = ["Linear"]


class Linear(Layer):
    """Dense layer ``y = x @ W.T + b`` over flattened inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: np.random.Generator | None = None,
        name: str = "fc",
    ) -> None:
        if min(in_features, out_features) < 1:
            raise ValueError("linear dimensions must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(
            he_normal((out_features, in_features), in_features, rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._cache: np.ndarray | None = None

    @property
    def parameters(self) -> Sequence[Parameter]:
        return (self.weight, self.bias)

    def output_shape(self, input_shape: Shape) -> Shape:
        flat = int(np.prod(input_shape))
        if flat != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got "
                f"{flat} (shape {input_shape})"
            )
        return (self.out_features,)

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1)
        if flat.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} inputs, got "
                f"{flat.shape[1]}"
            )
        if training:
            self._cache = flat
        return flat @ self.weight.data.T + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                f"{self.name}: backward called without a training forward"
            )
        flat = self._cache
        self._cache = None
        self.weight.accumulate(grad_out.T @ flat)
        self.bias.accumulate(grad_out.sum(axis=0))
        return grad_out @ self.weight.data
