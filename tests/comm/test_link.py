"""Network link model tests."""

from __future__ import annotations

import pytest

from repro.comm import JPEG_IMAGE_BYTES, LTE, WIFI, NetworkLink


class TestNetworkLink:
    def test_transfer_time_includes_latency(self):
        link = NetworkLink("t", bandwidth_bps=8e6, latency_s=0.1,
                           energy_per_byte_j=1e-7)
        # 1 MB at 1 MB/s + 0.1 s latency.
        assert link.transfer_time_s(1_000_000) == pytest.approx(1.1)

    def test_zero_bytes_is_free(self):
        assert WIFI.transfer_time_s(0) == 0.0
        assert WIFI.transfer_energy_j(0) == 0.0

    def test_energy_linear(self):
        assert WIFI.transfer_energy_j(2000) == pytest.approx(
            2 * WIFI.transfer_energy_j(1000)
        )

    def test_image_upload_helpers(self):
        t = WIFI.image_upload_time_s(10)
        e = WIFI.image_upload_energy_j(10)
        assert t == pytest.approx(WIFI.transfer_time_s(10 * JPEG_IMAGE_BYTES))
        assert e == pytest.approx(
            WIFI.transfer_energy_j(10 * JPEG_IMAGE_BYTES)
        )

    def test_lte_costs_more_per_byte(self):
        assert LTE.energy_per_byte_j > WIFI.energy_per_byte_j

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            WIFI.transfer_time_s(-1)
        with pytest.raises(ValueError):
            WIFI.transfer_energy_j(-1)

    def test_invalid_link(self):
        with pytest.raises(ValueError):
            NetworkLink("bad", 0.0, 0.1, 1e-7)
        with pytest.raises(ValueError):
            NetworkLink("bad", 1e6, -0.1, 1e-7)
