"""Data-movement ledger tests."""

from __future__ import annotations

import pytest

from repro.comm import DataMovementLedger


@pytest.fixture
def ledger():
    return DataMovementLedger(image_bytes=1000)


class TestLedger:
    def test_record_and_totals(self, ledger):
        ledger.record(0, acquired=100, uploaded=100)
        ledger.record(1, acquired=100, uploaded=72)
        assert ledger.total_acquired_images == 200
        assert ledger.total_uploaded_images == 172
        assert ledger.total_uploaded_bytes == 172_000

    def test_normalized_per_stage_matches_table2_shape(self, ledger):
        """The paper's Table II row c/d: 1, 0.72, 0.51, 0.35, 0.29."""
        acquired = [100, 100, 200, 400, 400]
        uploaded = [100, 72, 102, 140, 116]
        for i, (a, u) in enumerate(zip(acquired, uploaded)):
            ledger.record(i, a, u)
        norm = ledger.normalized_per_stage()
        assert norm[0] == 1.0
        assert norm == pytest.approx([1.0, 0.72, 0.51, 0.35, 0.29])

    def test_overall_reduction(self, ledger):
        ledger.record(0, 100, 100)
        ledger.record(1, 100, 50)
        assert ledger.overall_reduction_vs_full() == pytest.approx(0.25)

    def test_reduction_empty_is_zero(self, ledger):
        assert ledger.overall_reduction_vs_full() == 0.0

    def test_uploaded_exceeding_acquired_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.record(0, acquired=10, uploaded=11)

    def test_negative_counts_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.record(0, acquired=-1, uploaded=0)

    def test_stage_movement_fields(self, ledger):
        movement = ledger.record(2, acquired=50, uploaded=25)
        assert movement.upload_fraction == 0.5
        assert movement.uploaded_bytes == 25_000
        assert movement.stage_index == 2


class TestRunningTotals:
    """Totals are O(1) running counters, consistent at any point mid-run."""

    def test_snapshot_freezes_midrun_totals(self, ledger):
        ledger.record(0, acquired=100, uploaded=40)
        first = ledger.snapshot()
        ledger.record(1, acquired=100, uploaded=10)
        ledger.record_download(1, 5_000)
        second = ledger.snapshot()
        # The first snapshot is immutable: later records don't reach it.
        assert first.uploaded_images == 40
        assert first.downloaded_bytes == 0
        assert second.stages_recorded == 2
        assert second.acquired_images == 200
        assert second.uploaded_images == 50
        assert second.uploaded_bytes == 50_000
        assert second.downloaded_bytes == 5_000
        assert second.total_bytes_moved == 55_000
        assert second.upload_fraction == 0.25

    def test_snapshot_matches_resummed_stage_list(self, ledger):
        for i in range(5):
            ledger.record(i, acquired=10 * (i + 1), uploaded=5 * (i + 1))
            ledger.record_download(i, 100 * i)
        snap = ledger.snapshot()
        assert snap.acquired_images == sum(
            s.acquired_images for s in ledger.stages
        )
        assert snap.uploaded_bytes == sum(
            s.uploaded_bytes for s in ledger.stages
        )
        assert snap.downloaded_bytes == sum(
            s.downloaded_bytes for s in ledger.stages
        )

    def test_download_without_matching_stage_still_counted(self, ledger):
        ledger.record_download(3, 2_000)
        assert ledger.total_downloaded_bytes == 2_000
        assert ledger.snapshot().downloaded_bytes == 2_000

    def test_empty_snapshot(self, ledger):
        snap = ledger.snapshot()
        assert snap.stages_recorded == 0
        assert snap.total_bytes_moved == 0
        assert snap.upload_fraction == 0.0


class TestTierOverlay:
    """Per-tier fields are an additive overlay on the flat ledger.

    A flat run never calls ``record_tier``, so every tier field stays
    zero and the flat totals are exactly what they were before the
    hierarchical topology existed — the regression contract the fleet
    equivalence tests rely on.
    """

    def test_flat_ledger_has_zero_tier_fields(self, ledger):
        ledger.record(0, acquired=100, uploaded=40)
        ledger.record_download(0, 5_000)
        snap = ledger.snapshot()
        assert snap.edge_to_gateway_bytes == 0
        assert snap.gateway_to_cloud_bytes == 0
        assert snap.gateway_to_edge_bytes == 0
        assert snap.cloud_to_gateway_bytes == 0
        assert snap.edge_transfer_events == 0
        assert snap.wan_transfer_events == 0
        assert snap.transfer_overhead_bytes == 0
        assert snap.tiered_bytes_moved == 0

    def test_record_tier_does_not_touch_flat_totals(self, ledger):
        ledger.record(0, acquired=100, uploaded=40)
        flat_before = (
            ledger.total_uploaded_bytes,
            ledger.total_downloaded_bytes,
            len(ledger.stages),
        )
        ledger.record_tier(
            0,
            edge_up_bytes=40_000,
            wan_up_bytes=42_000,
            edge_down_bytes=1_000,
            wan_down_bytes=500,
            edge_up_transfers=4,
            wan_up_transfers=1,
            overhead_bytes=2_000,
        )
        assert (
            ledger.total_uploaded_bytes,
            ledger.total_downloaded_bytes,
            len(ledger.stages),
        ) == flat_before

    def test_record_tier_accumulates(self, ledger):
        ledger.record_tier(0, edge_up_bytes=10, wan_up_bytes=12,
                           edge_up_transfers=2, wan_up_transfers=1,
                           overhead_bytes=2)
        ledger.record_tier(1, edge_up_bytes=5, wan_down_bytes=7,
                           edge_down_bytes=3)
        snap = ledger.snapshot()
        assert snap.edge_to_gateway_bytes == 15
        assert snap.gateway_to_cloud_bytes == 12
        assert snap.cloud_to_gateway_bytes == 7
        assert snap.gateway_to_edge_bytes == 3
        assert snap.edge_transfer_events == 2
        assert snap.wan_transfer_events == 1
        assert snap.transfer_overhead_bytes == 2
        assert snap.tiered_bytes_moved == 15 + 12 + 7 + 3

    def test_record_tier_rejects_negative(self, ledger):
        with pytest.raises(ValueError):
            ledger.record_tier(0, edge_up_bytes=-1)
        with pytest.raises(ValueError):
            ledger.record_tier(0, overhead_bytes=-5)
