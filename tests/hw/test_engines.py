"""FPGA engine cycle models."""

from __future__ import annotations

import math

import pytest

from repro.hw import PEArrayEngine, TmTnEngine, square_factors
from repro.models import alexnet_spec
from repro.models.layer_specs import LayerSpec


class TestSquareFactors:
    def test_perfect_square(self):
        assert square_factors(64) == (8, 8)

    def test_uses_budget_well(self):
        a, b = square_factors(2628)
        assert a * b <= 2628
        assert a * b >= 0.9 * 2628

    def test_one(self):
        assert square_factors(1) == (1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            square_factors(0)


class TestTmTnEngine:
    def test_pe_count(self):
        assert TmTnEngine(16, 8).pe_count == 128

    def test_utilization_eq4(self):
        """Eq. (4): N*M / (Tn*Tm*ceil(N/Tn)*ceil(M/Tm))."""
        engine = TmTnEngine(tm=10, tn=10)
        layer = LayerSpec("c", "conv", 15, 15, 3, 8, 8)
        expected = (15 * 15) / (100 * 2 * 2)
        assert engine.utilization(layer) == pytest.approx(expected)

    def test_utilization_batch_independent(self):
        """The paper's key FPGA observation: Eq. (4) has no batch term, so
        conv energy-efficiency is flat across batch sizes (Fig. 14)."""
        engine = TmTnEngine(16, 16)
        layer = alexnet_spec().layer("conv2")
        c1 = engine.conv_cycles(layer, 1)
        c8 = engine.conv_cycles(layer, 8)
        assert c8 == 8 * c1  # per-image cycles identical

    def test_conv_cycles_formula(self):
        engine = TmTnEngine(8, 4)
        layer = LayerSpec("c", "conv", 16, 8, 3, 5, 5)
        expected = math.ceil(16 / 8) * math.ceil(8 / 4) * 9 * 25
        assert engine.conv_cycles(layer) == expected

    def test_fc_cycles_eq12(self):
        engine = TmTnEngine(8, 8)
        layer = LayerSpec("fc", "fc", 64, 32, 1, 1, 1)
        assert engine.fc_compute_cycles(layer, 4) == 8 * 4 * 4

    def test_fc_cycles_rejects_conv(self):
        engine = TmTnEngine(8, 8)
        with pytest.raises(ValueError):
            engine.fc_compute_cycles(alexnet_spec().layer("conv1"))

    def test_best_for_beats_square(self):
        """The design-space search must be at least as good as the naive
        square engine on the target stack (conv1's N=3 punishes Tn=51)."""
        layers = alexnet_spec().conv_layers
        budget = 2601
        tuned = TmTnEngine.best_for(layers, budget)
        naive = TmTnEngine.from_budget(budget)
        tuned_cycles = sum(tuned.conv_cycles(s) for s in layers)
        naive_cycles = sum(naive.conv_cycles(s) for s in layers)
        assert tuned_cycles <= naive_cycles
        assert tuned.pe_count <= budget

    def test_best_for_empty_layers(self):
        with pytest.raises(ValueError):
            TmTnEngine.best_for([], 100)


class TestPEArrayEngine:
    def test_pe_count(self):
        assert PEArrayEngine(14, 14).pe_count == 196

    def test_cycles_per_map_eq11(self):
        engine = PEArrayEngine(14, 14)
        layer = LayerSpec("c", "conv", 96, 3, 11, 55, 55, stride=4)
        expected = 3 * 121 * math.ceil(55 / 14) * math.ceil(55 / 14)
        assert engine.conv_cycles_per_map(layer) == expected

    def test_parallel_maps_divide_work(self):
        engine = PEArrayEngine(14, 14)
        layer = alexnet_spec().layer("conv3")
        assert engine.conv_cycles(layer, parallel_maps=4) < engine.conv_cycles(
            layer, parallel_maps=1
        )

    def test_half_size_engine_matches_quarter_load(self):
        """The WSS balance: a Tr/2 x Tc/2 engine on a half-size output map
        takes the same cycles as the full engine on the full map."""
        full = PEArrayEngine(14, 14)
        half = PEArrayEngine(7, 7)
        inf_layer = LayerSpec("c", "conv", 96, 3, 11, 55, 55, stride=4)
        diag_layer = LayerSpec("c", "conv", 96, 3, 11, 28, 28, stride=4)
        assert full.conv_cycles_per_map(inf_layer) == half.conv_cycles_per_map(
            diag_layer
        )

    def test_utilization_edge_waste(self):
        engine = PEArrayEngine(14, 14)
        layer = LayerSpec("c", "conv", 8, 4, 3, 55, 55)
        util = engine.utilization(layer)
        assert 0.0 < util <= 1.0
        # 55 = 3*14 + 13: edge tiles waste PEs.
        assert util < 1.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PEArrayEngine(0, 14)
