"""Energy accounting and the 'measured' GPU simulator."""

from __future__ import annotations

import pytest

from repro.hw import (
    TITAN_X,
    TX1,
    VX690T,
    MeasuredGPU,
    TrainingCostModel,
    fpga_energy_j,
    gpu_energy_j,
)
from repro.models import alexnet_spec


class TestEnergyAccounting:
    def test_gpu_energy(self):
        assert gpu_energy_j(TX1, 10.0, 1.0) == pytest.approx(
            TX1.peak_power_w * 10.0
        )

    def test_fpga_energy(self):
        assert fpga_energy_j(VX690T, 2.0) == pytest.approx(50.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            gpu_energy_j(TX1, -1.0, 0.5)
        with pytest.raises(ValueError):
            fpga_energy_j(VX690T, -1.0)


class TestTrainingCostModel:
    @pytest.fixture
    def model(self):
        return TrainingCostModel(TITAN_X)

    def test_more_images_cost_more(self, model):
        ops = float(alexnet_spec().total_ops)
        t1 = model.training_time_s(images=1000, epochs=3, forward_ops=ops)
        t2 = model.training_time_s(images=2000, epochs=3, forward_ops=ops)
        assert t2 == pytest.approx(2 * t1)

    def test_frozen_prefix_cheaper(self, model):
        """The weight-sharing speedup: frozen layers run forward once."""
        net = alexnet_spec()
        total = float(net.total_ops)
        frozen3 = total - sum(
            net.layer(n).ops for n in ("conv1", "conv2", "conv3")
        )
        full = model.training_time_s(
            images=1000, epochs=3, forward_ops=total
        )
        shared = model.training_time_s(
            images=1000, epochs=3, forward_ops=total,
            trainable_forward_ops=frozen3,
        )
        assert shared < full

    def test_trainable_cannot_exceed_total(self, model):
        with pytest.raises(ValueError):
            model.training_time_s(
                images=10, epochs=1, forward_ops=100.0,
                trainable_forward_ops=200.0,
            )

    def test_energy_proportional_to_time(self, model):
        assert model.training_energy_j(10.0) == pytest.approx(
            2 * model.training_energy_j(5.0)
        )

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            TrainingCostModel(TITAN_X, efficiency=0.0)


class TestMeasuredGPU:
    @pytest.fixture
    def sim(self):
        return MeasuredGPU(TX1)

    def test_measured_close_to_model_but_not_equal(self, sim):
        from repro.hw.gpu import network_time

        net = alexnet_spec()
        for batch in (1, 4, 16):
            model_t = network_time(net, TX1, batch).total_s
            measured_t = sim.measure_latency_s(net, batch)
            assert measured_t != model_t
            assert 0.5 * model_t < measured_t < 2.0 * model_t

    def test_deterministic(self, sim):
        net = alexnet_spec()
        assert sim.measure_latency_s(net, 7) == sim.measure_latency_s(net, 7)

    def test_brute_force_respects_latency(self, sim):
        net = alexnet_spec()
        best = sim.brute_force_best_batch(
            net, latency_requirement_s=0.1, max_batch=64
        )
        assert sim.measure_latency_s(net, best) <= 0.1

    def test_brute_force_infeasible_raises(self, sim):
        with pytest.raises(ValueError):
            sim.brute_force_best_batch(
                alexnet_spec(), latency_requirement_s=1e-9, max_batch=4
            )

    def test_invalid_batch(self, sim):
        with pytest.raises(ValueError):
            sim.measure_latency_s(alexnet_spec(), 0)
