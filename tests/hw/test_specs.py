"""Device spec invariants."""

from __future__ import annotations

import pytest

from repro.hw import TITAN_X, TX1, VX690T, FPGASpec, GPUSpec


class TestGPUSpec:
    def test_tx1_peak(self):
        """TX1 fp32 peak is ~512 GFLOP/s."""
        assert 4.5e11 < TX1.max_ops < 5.5e11

    def test_titan_x_peak(self):
        """Titan X Maxwell is ~6.6 TFLOP/s."""
        assert 6e12 < TITAN_X.max_ops < 7e12

    def test_power_model_bounds(self):
        assert TX1.power(0.0) == TX1.idle_power_w
        assert TX1.power(1.0) == TX1.peak_power_w
        assert TX1.idle_power_w < TX1.power(0.5) < TX1.peak_power_w

    def test_power_rejects_bad_util(self):
        with pytest.raises(ValueError):
            TX1.power(1.5)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", 0, 256, 32, 32, 32, 1e9, 1e9, 1.0, 10.0)
        with pytest.raises(ValueError):
            GPUSpec("bad", 1e9, 256, 32, 32, 32, 1e9, 1e9, 20.0, 10.0)

    def test_cloud_device_much_faster_than_node(self):
        assert TITAN_X.max_ops > 10 * TX1.max_ops


class TestFPGASpec:
    def test_vx690t_dsps(self):
        assert VX690T.dsp_slices == 3600

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            FPGASpec("bad", 150e6, 0, 1e6, 1e9, 25.0)
