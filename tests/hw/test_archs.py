"""Co-running architectures: the Fig. 22 ordering and weight traffic."""

from __future__ import annotations

import pytest

from repro.hw import VX690T, NWSArch, WSArch, WSSArch
from repro.models import alexnet_spec, diagnosis_spec

BUDGET = 2628  # PE count used in the paper's Fig. 22 experiment


@pytest.fixture
def nets():
    inf = alexnet_spec()
    return inf, diagnosis_spec(inf)


@pytest.fixture
def archs(nets):
    inf, _ = nets
    return {
        "NWS": NWSArch(BUDGET, shape_for=inf.conv_layers),
        "WS": WSArch(BUDGET, shape_for=inf.conv_layers),
        "WSS": WSSArch(BUDGET),
    }


class TestBudgets:
    def test_pe_counts_within_budget(self, archs):
        for arch in archs.values():
            assert arch.pe_count <= BUDGET
            assert arch.pe_count > 0.8 * BUDGET  # budget actually used

    def test_wss_group_size(self, nets):
        arch = WSSArch(BUDGET)
        # 196 + 9*49 = 637 PEs per unit -> 4 units fit in 2628.
        assert arch.group_size == 4

    def test_budget_too_small(self):
        with pytest.raises(ValueError):
            WSSArch(100)
        with pytest.raises(ValueError):
            WSArch(5)

    def test_wss_odd_tile_rejected(self):
        with pytest.raises(ValueError):
            WSSArch(BUDGET, inference_tile=13)


class TestFig22Ordering:
    def test_compute_ordering_wss_best_ws_worst(self, nets, archs):
        inf, diag = nets
        times = {
            name: arch.conv_runtime(inf, diag, VX690T).compute_s
            for name, arch in archs.items()
        }
        assert times["WSS"] < times["NWS"] < times["WS"]

    def test_ws_diagnosis_idles_about_75_percent(self, nets, archs):
        """Uniform unrolling leaves diagnosis engines idle ~75% of cycles."""
        inf, diag = nets
        rt = archs["WS"].conv_runtime(inf, diag, VX690T)
        assert 0.65 < rt.diagnosis_idle_fraction < 0.85

    def test_wss_engines_balanced(self, nets, archs):
        """Output-proportional sizing removes the idleness."""
        inf, diag = nets
        rt = archs["WSS"].conv_runtime(inf, diag, VX690T)
        assert rt.diagnosis_idle_fraction < 0.1


class TestWeightTraffic:
    def test_access_decreases_with_shared_depth(self, nets, archs):
        inf, diag = nets
        for name in ("WS", "WSS"):
            times = [
                archs[name]
                .conv_runtime(inf, diag, VX690T, shared_depth=d)
                .weight_access_s
                for d in (0, 3, 5)
            ]
            assert times[0] > times[1] > times[2]

    def test_nws_access_flat_in_shared_depth(self, nets, archs):
        """No weight sharing: NWS fetches twice regardless of strategy."""
        inf, diag = nets
        times = {
            d: archs["NWS"]
            .conv_runtime(inf, diag, VX690T, shared_depth=d)
            .weight_access_s
            for d in (0, 3, 5)
        }
        assert times[0] == times[3] == times[5]

    def test_wss_access_never_exceeds_nws(self, nets, archs):
        inf, diag = nets
        for depth in (0, 3, 5):
            wss = archs["WSS"].conv_runtime(inf, diag, VX690T, shared_depth=depth)
            nws = archs["NWS"].conv_runtime(inf, diag, VX690T, shared_depth=depth)
            assert wss.weight_access_s <= nws.weight_access_s


class TestValidation:
    def test_mismatched_stacks_rejected(self, archs):
        from repro.models import vgg16_spec

        inf = alexnet_spec()
        with pytest.raises(ValueError):
            archs["WSS"].conv_runtime(inf, vgg16_spec(), VX690T)
