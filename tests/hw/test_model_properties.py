"""Property-based tests on the analytical hardware models.

These pin down the invariants the planners rely on: utilizations live in
(0, 1], ceil-based cycle counts never undercount work, batching never
reduces total latency, and the pipeline period is exactly the max of its
stages — across randomized layer shapes, not just AlexNet's.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import TX1, PEArrayEngine, TmTnEngine
from repro.hw.gpu import (
    conv_layer_time,
    fc_layer_time,
    memory_required,
    utilization,
)
from repro.models.layer_specs import LayerSpec, NetworkSpec

conv_specs = st.builds(
    LayerSpec,
    name=st.just("conv"),
    kind=st.just("conv"),
    out_maps=st.integers(1, 512),
    in_maps=st.integers(1, 512),
    kernel=st.integers(1, 11),
    out_rows=st.integers(1, 64),
    out_cols=st.integers(1, 64),
    stride=st.integers(1, 4),
)

fc_specs = st.builds(
    LayerSpec,
    name=st.just("fc"),
    kind=st.just("fc"),
    out_maps=st.integers(1, 8192),
    in_maps=st.integers(1, 8192),
    kernel=st.just(1),
    out_rows=st.just(1),
    out_cols=st.just(1),
)


class TestGPUProperties:
    @settings(max_examples=60, deadline=None)
    @given(layer=conv_specs, batch=st.integers(1, 64))
    def test_utilization_bounds(self, layer, batch):
        util = utilization(layer, TX1, batch)
        assert 0.0 < util <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(layer=conv_specs, batch=st.integers(1, 32))
    def test_conv_time_never_beats_peak(self, layer, batch):
        """No layer can run faster than the device's peak throughput."""
        t = conv_layer_time(layer, TX1, batch)
        assert t >= layer.ops * batch / TX1.max_ops - 1e-15

    @settings(max_examples=60, deadline=None)
    @given(layer=fc_specs, batch=st.integers(1, 32))
    def test_fc_time_respects_both_roofs(self, layer, batch):
        """Eq. (6): achieved perf is below compute AND bandwidth roofs."""
        t = fc_layer_time(layer, TX1, batch)
        assert t >= layer.ops * batch / TX1.max_ops - 1e-15
        weight_floor = layer.weight_bytes / TX1.mem_bandwidth_bps
        assert t >= weight_floor * 0.99

    @settings(max_examples=40, deadline=None)
    @given(layer=conv_specs, batch=st.integers(1, 31))
    def test_memory_monotone_and_time_bounded(self, layer, batch):
        """Memory grows with batch; time never exceeds the worst-case
        single-resident-block rate (util >= 1/max_blocks).

        Note total latency is NOT monotone in batch for tiny layers: Eq. 3
        utilization is a sawtooth in grid size, so an extra image can raise
        utilization enough to shrink the whole batch's latency.  The tests
        assert only what the model actually guarantees.
        """
        net = NetworkSpec("n", (layer,))
        assert memory_required(net, batch + 1) >= memory_required(net, batch)
        worst = layer.ops * batch / (TX1.max_ops / TX1.max_blocks)
        assert conv_layer_time(layer, TX1, batch) <= worst + 1e-15


class TestEngineProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        layer=conv_specs,
        tm=st.integers(1, 64),
        tn=st.integers(1, 64),
    )
    def test_tm_tn_cycles_cover_all_work(self, layer, tm, tn):
        """Cycle count x PEs never falls below the MAC count (ops/2)."""
        engine = TmTnEngine(tm, tn)
        macs = layer.ops // 2
        assert engine.conv_cycles(layer) * engine.pe_count >= macs

    @settings(max_examples=60, deadline=None)
    @given(
        layer=conv_specs,
        tm=st.integers(1, 64),
        tn=st.integers(1, 64),
    )
    def test_eq4_utilization_consistent_with_cycles(self, layer, tm, tn):
        """Eq. (4) equals useful-MACs / (cycles * PEs) exactly."""
        engine = TmTnEngine(tm, tn)
        macs = layer.out_maps * layer.in_maps  # per K^2*R*C position
        padded = (
            engine.tm
            * engine.tn
            * -(-layer.out_maps // engine.tm)
            * -(-layer.in_maps // engine.tn)
        )
        assert engine.utilization(layer) == macs / padded

    @settings(max_examples=60, deadline=None)
    @given(
        layer=conv_specs,
        tr=st.integers(1, 32),
        tc=st.integers(1, 32),
        group=st.integers(1, 8),
    )
    def test_pe_array_group_speedup_bounded(self, layer, tr, tc, group):
        """group engines are at most group-times faster, never slower."""
        engine = PEArrayEngine(tr, tc)
        solo = engine.conv_cycles(layer, parallel_maps=1)
        grouped = engine.conv_cycles(layer, parallel_maps=group)
        assert grouped <= solo
        assert grouped * group >= solo

    @settings(max_examples=40, deadline=None)
    @given(budget=st.integers(1, 4096))
    def test_square_factors_within_budget(self, budget):
        from repro.hw import square_factors

        a, b = square_factors(budget)
        assert 1 <= a * b <= budget
