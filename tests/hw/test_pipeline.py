"""WSS-NWS pipeline model and the Fig. 23 throughput search."""

from __future__ import annotations

import pytest

from repro.hw import VX690T, best_design
from repro.hw.pipeline import ARCH_FACTORIES
from repro.models import alexnet_spec, diagnosis_spec


@pytest.fixture(scope="module")
def nets():
    inf = alexnet_spec()
    return inf, diagnosis_spec(inf)


@pytest.fixture(scope="module")
def designs(nets):
    """Best designs per architecture at a relaxed 400 ms requirement."""
    inf, diag = nets
    return {
        name: best_design(
            name, inf, diag, VX690T, latency_requirement_s=0.4, max_batch=32
        )
        for name in ARCH_FACTORIES
    }


class TestEq13:
    def test_latency_is_twice_period(self, designs):
        timing = designs["WSS-NWS"]
        assert timing.latency_s == pytest.approx(2 * timing.period_s)

    def test_period_is_max_of_stages(self, designs):
        timing = designs["WSS-NWS"]
        assert timing.period_s == max(timing.conv_stage_s, timing.fcn_stage_s)

    def test_dsp_constraint_eq10(self, designs):
        for timing in designs.values():
            assert timing.design.dsp_used <= VX690T.dsp_slices


class TestFig23:
    def test_wss_nws_best_everywhere(self, nets):
        inf, diag = nets
        for req in (0.1, 0.4, 0.8):
            results = {
                name: best_design(
                    name, inf, diag, VX690T,
                    latency_requirement_s=req, max_batch=32,
                )
                for name in ARCH_FACTORIES
            }
            wss = results["WSS-NWS"]
            assert wss is not None
            for name, timing in results.items():
                if timing is not None and name != "WSS-NWS":
                    assert wss.throughput_ips >= timing.throughput_ips

    def test_ws_fails_strict_latency(self, nets):
        """Fig. 23: WS cannot meet the 50 ms requirement (marked x)."""
        inf, diag = nets
        assert (
            best_design(
                "WS", inf, diag, VX690T, latency_requirement_s=0.05, max_batch=32
            )
            is None
        )

    def test_wss_nws_meets_strict_latency(self, nets):
        inf, diag = nets
        timing = best_design(
            "WSS-NWS", inf, diag, VX690T, latency_requirement_s=0.05, max_batch=32
        )
        assert timing is not None
        assert timing.latency_s <= 0.05

    def test_nws_throughput_flat_in_requirement(self, nets):
        """Without batch optimization, looser latency buys NWS nothing."""
        inf, diag = nets
        strict = best_design(
            "NWS", inf, diag, VX690T, latency_requirement_s=0.1, max_batch=32
        )
        loose = best_design(
            "NWS", inf, diag, VX690T, latency_requirement_s=0.8, max_batch=32
        )
        assert loose.throughput_ips == pytest.approx(
            strict.throughput_ips, rel=0.1
        )

    def test_wss_at_strict_beats_nws_batch_at_loose(self, nets):
        """The paper's headline Fig. 23 claim."""
        inf, diag = nets
        wss_strict = best_design(
            "WSS-NWS", inf, diag, VX690T, latency_requirement_s=0.05, max_batch=32
        )
        nws_loose = best_design(
            "NWS-batch", inf, diag, VX690T, latency_requirement_s=0.8, max_batch=32
        )
        assert wss_strict.throughput_ips > nws_loose.throughput_ips


class TestSearchValidation:
    def test_unknown_arch(self, nets):
        inf, diag = nets
        with pytest.raises(KeyError):
            best_design("XYZ", inf, diag, VX690T, latency_requirement_s=0.1)

    def test_bad_latency(self, nets):
        inf, diag = nets
        with pytest.raises(ValueError):
            best_design(
                "NWS", inf, diag, VX690T, latency_requirement_s=0.0
            )

    def test_impossible_latency_returns_none(self, nets):
        inf, diag = nets
        assert (
            best_design(
                "WSS-NWS", inf, diag, VX690T,
                latency_requirement_s=1e-6, max_batch=4,
            )
            is None
        )

    def test_diagnosis_sustainability_flag(self, nets, designs):
        inf, diag = nets
        timing = designs["WSS-NWS"]
        assert timing.diagnosis_fcn_sustainable(diag, VX690T) in (True, False)
