"""Discrete-event simulators vs. the closed-form models.

The analytical pipeline (Eq. 13) and interference models are what the
planners optimize; these tests check them against event-by-event execution
of the same layer costs.
"""

from __future__ import annotations

import pytest

from repro.hw import TX1, VX690T, best_design, co_running_latency
from repro.hw.eventsim import simulate_pipeline
from repro.hw.gpusim import simulate_corun
from repro.models import alexnet_spec, diagnosis_spec


@pytest.fixture(scope="module")
def nets():
    inf = alexnet_spec()
    return inf, diagnosis_spec(inf)


@pytest.fixture(scope="module")
def wss_timing(nets):
    inf, diag = nets
    return best_design(
        "WSS-NWS", inf, diag, VX690T, latency_requirement_s=0.2, max_batch=32
    )


class TestPipelineSim:
    def test_steady_throughput_matches_eq13(self, nets, wss_timing):
        inf, diag = nets
        result = simulate_pipeline(
            wss_timing.design, inf, diag, VX690T, num_images=64
        )
        steady = result.steady_state_throughput_ips(
            2, wss_timing.design.batch_size
        )
        assert steady == pytest.approx(wss_timing.throughput_ips, rel=0.1)

    def test_service_latency_bounded_by_eq13(self, nets, wss_timing):
        """Eq. (13)'s 2x-period latency bounds the simulated per-image
        service latency (conv start -> FCN done)."""
        inf, diag = nets
        result = simulate_pipeline(
            wss_timing.design, inf, diag, VX690T, num_images=64
        )
        assert result.max_service_latency_s <= wss_timing.latency_s * 1.05

    def test_backlog_queueing_exceeds_service(self, nets, wss_timing):
        """With everything arriving at t=0, sojourn latency >> service."""
        inf, diag = nets
        result = simulate_pipeline(
            wss_timing.design, inf, diag, VX690T, num_images=64
        )
        assert result.max_latency_s > result.max_service_latency_s

    def test_paced_arrivals_keep_latency_near_service(self, nets, wss_timing):
        """Arrivals paced at the pipeline's throughput avoid queue growth."""
        inf, diag = nets
        interval = 1.0 / wss_timing.throughput_ips
        result = simulate_pipeline(
            wss_timing.design,
            inf,
            diag,
            VX690T,
            num_images=64,
            arrival_interval_s=interval * 1.05,
        )
        assert result.max_latency_s < 3 * wss_timing.latency_s

    def test_traces_complete_and_ordered(self, nets, wss_timing):
        inf, diag = nets
        result = simulate_pipeline(
            wss_timing.design, inf, diag, VX690T, num_images=10
        )
        assert result.images == 10
        for trace in result.traces:
            assert (
                trace.arrival_s
                <= trace.conv_start_s
                <= trace.conv_done_s
                <= trace.fcn_done_s
            )

    def test_invalid_args(self, nets, wss_timing):
        inf, diag = nets
        with pytest.raises(ValueError):
            simulate_pipeline(
                wss_timing.design, inf, diag, VX690T, num_images=0
            )


class TestCoRunSim:
    def test_reproduces_paper_3x_at_batched_diagnosis(self, nets):
        """At the paper's batched-diagnosis operating point, kernel-level
        interleaving yields ~3X inference slowdown."""
        inf, diag = nets
        result = simulate_corun(inf, diag, TX1, diagnosis_batch=16)
        assert 2.3 < result.inference_slowdown < 3.8

    def test_slowdown_grows_with_diagnosis_batch(self, nets):
        """Longer non-preemptible diagnosis kernels block inference more —
        the mechanism behind the measured interference."""
        inf, diag = nets
        slowdowns = [
            simulate_corun(
                inf, diag, TX1, diagnosis_batch=b
            ).inference_slowdown
            for b in (1, 8, 32)
        ]
        assert slowdowns == sorted(slowdowns)

    def test_material_interference_agrees_with_analytical(self, nets):
        """Both models agree interference is severe (>1.5X) at a moderate
        operating point, even though they disagree on the fine structure."""
        inf, diag = nets
        sim = simulate_corun(inf, diag, TX1, diagnosis_batch=8)
        ana = co_running_latency(inf, diag, TX1, diagnosis_batch=8)
        assert sim.inference_slowdown > 1.5
        assert ana.inference_slowdown > 1.5

    def test_solo_latency_matches_model(self, nets):
        from repro.hw.gpu import network_time

        inf, diag = nets
        result = simulate_corun(inf, diag, TX1)
        assert result.inference_solo_s == pytest.approx(
            network_time(inf, TX1, 1).total_s
        )

    def test_invalid_args(self, nets):
        inf, diag = nets
        with pytest.raises(ValueError):
            simulate_corun(inf, diag, TX1, num_images=0)
