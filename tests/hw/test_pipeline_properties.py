"""Property-style checks on pipeline designs across random configurations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import VX690T, TmTnEngine, WSSArch
from repro.hw.pipeline import PipelineDesign, pipeline_timing
from repro.models import alexnet_spec, diagnosis_spec


@pytest.fixture(scope="module")
def nets():
    inf = alexnet_spec()
    return inf, diagnosis_spec(inf)


def make_design(batch, conv_budget, fcn_budget, include_diag, nets):
    inf, _ = nets
    return PipelineDesign(
        arch_name="WSS-NWS",
        conv_arch=WSSArch(conv_budget),
        fcn_engine=TmTnEngine.best_for(inf.fc_layers, fcn_budget),
        batch_size=batch,
        fcn_batch_optimized=True,
        include_diagnosis_fcn=include_diag,
    )


class TestPipelineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 32),
        conv_budget=st.integers(700, 3000),
        fcn_budget=st.integers(64, 1024),
        include_diag=st.booleans(),
    )
    def test_eq13_identities(self, batch, conv_budget, fcn_budget, include_diag):
        inf = alexnet_spec()
        diag = diagnosis_spec(inf)
        design = make_design(
            batch, conv_budget, fcn_budget, include_diag, (inf, diag)
        )
        timing = pipeline_timing(design, inf, diag, VX690T)
        assert timing.period_s == max(
            timing.conv_stage_s, timing.fcn_stage_s
        )
        assert timing.latency_s == pytest.approx(2 * timing.period_s)
        assert timing.throughput_ips == pytest.approx(
            batch / timing.period_s
        )

    def test_including_diag_fcn_never_faster(self, nets):
        inf, diag = nets
        base = pipeline_timing(
            make_design(4, 2548, 512, False, nets), inf, diag, VX690T
        )
        with_diag = pipeline_timing(
            make_design(4, 2548, 512, True, nets), inf, diag, VX690T
        )
        assert with_diag.fcn_stage_s >= base.fcn_stage_s
        assert with_diag.period_s >= base.period_s

    def test_included_diag_fcn_is_trivially_sustainable(self, nets):
        inf, diag = nets
        timing = pipeline_timing(
            make_design(4, 2548, 512, True, nets), inf, diag, VX690T
        )
        assert timing.diagnosis_fcn_sustainable(diag, VX690T)

    def test_conv_stage_linear_in_batch(self, nets):
        inf, diag = nets
        t1 = pipeline_timing(
            make_design(1, 2548, 512, False, nets), inf, diag, VX690T
        )
        t8 = pipeline_timing(
            make_design(8, 2548, 512, False, nets), inf, diag, VX690T
        )
        assert t8.conv_stage_s == pytest.approx(8 * t1.conv_stage_s)

    def test_fcn_stage_sublinear_in_batch_with_optimization(self, nets):
        """Weight reuse: doubling the batch must not double FCN time."""
        inf, diag = nets
        t1 = pipeline_timing(
            make_design(1, 2548, 512, False, nets), inf, diag, VX690T
        )
        t8 = pipeline_timing(
            make_design(8, 2548, 512, False, nets), inf, diag, VX690T
        )
        assert t8.fcn_stage_s < 2 * t1.fcn_stage_s
