"""GPU co-running interference model (Fig. 16)."""

from __future__ import annotations

import pytest

from repro.hw import TX1, co_running_latency
from repro.models import alexnet_spec, diagnosis_spec


@pytest.fixture
def nets():
    inf = alexnet_spec()
    return inf, diagnosis_spec(inf)


class TestInterference:
    def test_corun_slower_than_solo(self, nets):
        inf, diag = nets
        result = co_running_latency(inf, diag, TX1)
        assert result.inference_corun_s > result.inference_solo_s
        assert result.diagnosis_corun_s > result.diagnosis_solo_s

    def test_fig16_up_to_3x_slowdown(self, nets):
        """The paper measures up to 3X inference slowdown on the GPU."""
        inf, diag = nets
        result = co_running_latency(inf, diag, TX1, diagnosis_duty=1.0)
        assert 2.0 < result.inference_slowdown < 4.0

    def test_duty_scales_interference(self, nets):
        inf, diag = nets
        light = co_running_latency(inf, diag, TX1, diagnosis_duty=0.2)
        heavy = co_running_latency(inf, diag, TX1, diagnosis_duty=1.0)
        assert light.inference_slowdown < heavy.inference_slowdown

    def test_zero_duty_no_interference(self, nets):
        inf, diag = nets
        result = co_running_latency(inf, diag, TX1, diagnosis_duty=0.0)
        assert result.inference_slowdown == pytest.approx(1.0)
        assert result.diagnosis_slowdown == pytest.approx(1.0)

    def test_invalid_duty(self, nets):
        inf, diag = nets
        with pytest.raises(ValueError):
            co_running_latency(inf, diag, TX1, diagnosis_duty=1.5)

    def test_slowdowns_conserve_demand(self, nets):
        """Fair sharing: 1/slowdown_inf + 1/slowdown_diag == 1."""
        inf, diag = nets
        result = co_running_latency(inf, diag, TX1)
        shares = 1 / result.inference_slowdown + 1 / result.diagnosis_slowdown
        assert shares == pytest.approx(1.0)
