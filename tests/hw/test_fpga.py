"""FPGA layer-time model and the Fig. 13/14 batch optimization."""

from __future__ import annotations

import pytest

from repro.hw import TX1, VX690T, TmTnEngine
from repro.hw.fpga import (
    fc_data_access_bytes,
    fc_layer_time,
    network_time,
    perf_per_watt,
)
from repro.hw.gpu import perf_per_watt as gpu_perf_per_watt
from repro.models import alexnet_spec


@pytest.fixture
def alexnet():
    return alexnet_spec()


@pytest.fixture
def engine(alexnet):
    return TmTnEngine.best_for(alexnet.conv_layers, 2048)


class TestFCDataAccess:
    def test_batch_optimized_reads_weights_once(self, alexnet):
        fc6 = alexnet.layer("fc6")
        opt = fc_data_access_bytes(fc6, 8, batch_optimized=True)
        naive = fc_data_access_bytes(fc6, 8, batch_optimized=False)
        assert naive > 7 * opt  # weights dominate and are read 8x vs 1x

    def test_batch_1_identical(self, alexnet):
        fc6 = alexnet.layer("fc6")
        assert fc_data_access_bytes(
            fc6, 1, batch_optimized=True
        ) == fc_data_access_bytes(fc6, 1, batch_optimized=False)

    def test_rejects_conv(self, alexnet):
        with pytest.raises(ValueError):
            fc_data_access_bytes(alexnet.layer("conv1"), 1, batch_optimized=True)


class TestFCLayerTime:
    def test_fig13_batch_opt_improves_per_image_time(self, alexnet, engine):
        """The green batch loop of Fig. 13: weight reuse across the batch."""
        fc6 = alexnet.layer("fc6")
        naive = fc_layer_time(fc6, engine, VX690T, 16, batch_optimized=False)
        opt = fc_layer_time(fc6, engine, VX690T, 16, batch_optimized=True)
        assert opt < naive / 4

    def test_without_batch_opt_time_linear_in_batch(self, alexnet, engine):
        fc6 = alexnet.layer("fc6")
        t1 = fc_layer_time(fc6, engine, VX690T, 1, batch_optimized=False)
        t8 = fc_layer_time(fc6, engine, VX690T, 8, batch_optimized=False)
        assert t8 == pytest.approx(8 * t1, rel=0.05)


class TestNetworkTiming:
    def test_fig14_conv_efficiency_flat_on_fpga(self, alexnet, engine):
        """FPGA conv perf/W is batch-independent (Eq. 4 has no batch term)."""
        timings = [
            network_time(alexnet, engine, VX690T, b).conv_s / b
            for b in (1, 4, 16)
        ]
        assert max(timings) == pytest.approx(min(timings), rel=1e-6)

    def test_fig14_fcn_efficiency_improves_with_batch_opt(self, alexnet, engine):
        per_image_1 = network_time(alexnet, engine, VX690T, 1).fc_s
        per_image_16 = network_time(alexnet, engine, VX690T, 16).fc_s / 16
        assert per_image_16 < per_image_1 / 2

    def test_fig14_gpu_beats_fpga_overall(self, alexnet, engine):
        """Section IV-A2: GPU's overall energy-efficiency (CONV+FCN) is
        better than FPGA's in Single-running mode — the reason the paper
        picks the GPU for that mode."""
        for batch in (1, 8, 32):
            assert gpu_perf_per_watt(alexnet, TX1, batch) > perf_per_watt(
                alexnet, engine, VX690T, batch
            )

    def test_throughput_positive(self, alexnet, engine):
        timing = network_time(alexnet, engine, VX690T, 4)
        assert timing.throughput_ips > 0
        assert timing.total_s == timing.conv_s + timing.fc_s
