"""GPU analytical model: Eqs. (2)-(9) and the paper's Fig. 11/12 shapes."""

from __future__ import annotations

import math

import pytest

from repro.hw import TX1
from repro.hw.gpu import (
    conv_layer_time,
    fc_layer_time,
    grid_size,
    max_batch_under_memory,
    memory_required,
    network_time,
    perf_per_watt,
    utilization,
)
from repro.models import alexnet_spec
from repro.models.layer_specs import LayerSpec


@pytest.fixture
def alexnet():
    return alexnet_spec()


class TestGridAndUtilization:
    def test_grid_size_formula(self, alexnet):
        conv1 = alexnet.layer("conv1")
        expected = math.ceil(96 / TX1.tile_m) * math.ceil(55 * 55 / TX1.tile_n)
        assert grid_size(conv1, TX1) == expected

    def test_batch_scales_grid(self, alexnet):
        conv1 = alexnet.layer("conv1")
        assert grid_size(conv1, TX1, 8) > grid_size(conv1, TX1, 1)

    def test_utilization_bounds(self, alexnet):
        for layer in alexnet.layers:
            for batch in (1, 4, 32):
                util = utilization(layer, TX1, batch)
                assert 0.0 < util <= 1.0

    def test_batching_improves_fc_utilization(self, alexnet):
        """Eq. (3): batch raises grid size, filling idle blocks (Fig. 15)."""
        fc8 = alexnet.layer("fc8")
        assert utilization(fc8, TX1, 32) >= utilization(fc8, TX1, 1)

    def test_batch_must_be_positive(self, alexnet):
        with pytest.raises(ValueError):
            grid_size(alexnet.layer("conv1"), TX1, 0)


class TestLayerTimes:
    def test_conv_time_positive_and_scales(self, alexnet):
        conv2 = alexnet.layer("conv2")
        t1 = conv_layer_time(conv2, TX1, 1)
        t8 = conv_layer_time(conv2, TX1, 8)
        assert 0 < t1 < t8

    def test_fc_memory_bound_at_batch_1(self, alexnet):
        """FCN at batch 1 runs at memory speed: time ~ weight bytes / MBW."""
        fc6 = alexnet.layer("fc6")
        t = fc_layer_time(fc6, TX1, 1)
        mem_floor = fc6.weight_bytes / TX1.mem_bandwidth_bps
        assert t == pytest.approx(mem_floor, rel=0.1)

    def test_fc_batching_amortizes_weights(self, alexnet):
        """Per-image FCN time shrinks with batch (weight reuse)."""
        fc6 = alexnet.layer("fc6")
        per_image_1 = fc_layer_time(fc6, TX1, 1)
        per_image_32 = fc_layer_time(fc6, TX1, 32) / 32
        assert per_image_32 < per_image_1 / 4

    def test_fc_time_rejects_conv(self, alexnet):
        with pytest.raises(ValueError):
            fc_layer_time(alexnet.layer("conv1"), TX1, 1)


class TestNetworkTiming:
    def test_fig11_latency_monotone_in_batch(self, alexnet):
        latencies = [
            network_time(alexnet, TX1, b).total_s for b in (1, 2, 4, 8, 16)
        ]
        assert latencies == sorted(latencies)

    def test_fig11_efficiency_improves_with_batch(self, alexnet):
        ppw = [perf_per_watt(alexnet, TX1, b) for b in (1, 4, 16, 64)]
        assert ppw == sorted(ppw)

    def test_fig12_fcn_dominates_small_batch(self, alexnet):
        """FCN layers are ~50%+ of runtime at batch 1, fading with batch."""
        t1 = network_time(alexnet, TX1, 1)
        t32 = network_time(alexnet, TX1, 32)
        assert t1.fc_s / t1.total_s > 0.4
        assert t32.fc_s / t32.total_s < t1.fc_s / t1.total_s

    def test_batch1_latency_plausible_for_tx1(self, alexnet):
        """Real TX1 AlexNet inference is ~10-30 ms."""
        assert 0.005 < network_time(alexnet, TX1, 1).total_s < 0.05

    def test_mean_utilization_bounds(self, alexnet):
        timing = network_time(alexnet, TX1, 4)
        assert 0.0 < timing.mean_utilization <= 1.0


class TestMemoryModel:
    def test_memory_grows_with_batch(self, alexnet):
        assert memory_required(alexnet, 16) > memory_required(alexnet, 1)

    def test_max_batch_fits(self, alexnet):
        best = max_batch_under_memory(alexnet, TX1)
        assert memory_required(alexnet, best) <= TX1.mem_capacity_bytes
        assert memory_required(alexnet, best + 1) > TX1.mem_capacity_bytes

    def test_too_large_network_rejected(self):
        huge = LayerSpec("x", "fc", 100_000, 100_000, 1, 1, 1)
        from repro.models.layer_specs import NetworkSpec

        net = NetworkSpec("huge", (huge,))
        with pytest.raises(ValueError):
            max_batch_under_memory(net, TX1)
