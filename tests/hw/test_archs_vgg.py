"""Co-running architectures generalize beyond AlexNet (VGG-16 stack)."""

from __future__ import annotations

import pytest

from repro.hw import VX690T, NWSArch, WSArch, WSSArch
from repro.models import diagnosis_spec, vgg16_spec


@pytest.fixture(scope="module")
def nets():
    inf = vgg16_spec()
    return inf, diagnosis_spec(inf)


class TestVGGCoRunning:
    def test_wss_still_fastest(self, nets):
        inf, diag = nets
        times = {}
        for cls in (NWSArch, WSArch, WSSArch):
            arch = cls(2628, shape_for=inf.conv_layers)
            times[cls.__name__] = arch.conv_runtime(
                inf, diag, VX690T
            ).total_s
        assert times["WSSArch"] < times["NWSArch"]
        assert times["WSSArch"] < times["WSArch"]

    def test_vgg_conv_much_slower_than_alexnet(self, nets):
        from repro.models import alexnet_spec

        inf, diag = nets
        arch = WSSArch(2628)
        vgg_time = arch.conv_runtime(inf, diag, VX690T).compute_s
        alex = alexnet_spec()
        alex_time = arch.conv_runtime(
            alex, diagnosis_spec(alex), VX690T
        ).compute_s
        # VGG-16 conv stack is ~14x AlexNet's conv ops.
        assert vgg_time > 8 * alex_time

    def test_diagnosis_depth_matches(self, nets):
        inf, diag = nets
        assert len(diag.conv_layers) == 13
        assert diag.fc_layers[-1].out_maps == 100
