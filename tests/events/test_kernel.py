"""The discrete-event kernel: clock, queue, processes, resources.

Everything virtual-time in the repo (hw pipeline sim, uplink flows, the
asynchronous fleet) runs on this kernel, so its determinism contract —
same-time events fire in schedule order, no wall clock, no RNG — is
load-bearing for every reproducibility claim downstream.
"""

from __future__ import annotations

import pytest

from repro.events import Resource, Simulator, Store


class TestClockAndTimeouts:
    def test_timeouts_advance_the_clock(self):
        sim = Simulator()
        seen = []

        def proc():
            yield sim.timeout(1.5)
            seen.append(sim.now)
            yield sim.timeout(2.0)
            seen.append(sim.now)

        sim.process(proc())
        end = sim.run()
        assert seen == [1.5, 3.5]
        assert end == 3.5
        assert sim.now == 3.5

    def test_timeout_value_is_sent_back_in(self):
        sim = Simulator()
        got = []

        def proc():
            got.append((yield sim.timeout(1.0, "payload")))

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        for name in "abcd":
            sim.process(proc(name, 1.0))
        sim.run()
        assert order == list("abcd")

    def test_two_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []

            def proc(name, delays):
                for d in delays:
                    yield sim.timeout(d)
                    log.append((name, sim.now))

            sim.process(proc("x", [0.3, 0.3, 0.1]))
            sim.process(proc("y", [0.2, 0.5]))
            sim.process(proc("z", [0.7]))
            sim.run()
            return log

        assert trace() == trace()


class TestEvents:
    def test_succeed_fires_at_current_time_with_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            got.append((yield ev))

        def firer():
            yield sim.timeout(2.0)
            ev.succeed(42)

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [42]
        assert sim.now == 2.0

    def test_succeed_twice_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_yielding_already_processed_event_resumes_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        got = []

        def late_waiter():
            yield sim.timeout(1.0)
            got.append((yield ev))
            got.append(sim.now)

        sim.process(late_waiter())
        sim.run()
        assert got == ["early", 1.0]

    def test_yielding_non_event_is_a_type_error(self):
        sim = Simulator()

        def bad():
            yield 3.0

        sim.process(bad())
        with pytest.raises(TypeError):
            sim.run()


class TestProcesses:
    def test_process_value_is_generator_return(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert proc.value == "done"

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return "child-result"

        results = []

        def parent():
            results.append((yield sim.process(child())))
            results.append(sim.now)

        sim.process(parent())
        sim.run()
        assert results == ["child-result", 3.0]


class TestRunUntil:
    def test_until_freezes_later_events(self):
        sim = Simulator()
        fired = []

        def proc(delay):
            yield sim.timeout(delay)
            fired.append(delay)

        for d in (1.0, 2.0, 5.0):
            sim.process(proc(d))
        end = sim.run(until=3.0)
        assert fired == [1.0, 2.0]
        assert end == 3.0
        assert sim.now == 3.0

    def test_events_exactly_at_until_still_fire(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(3.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=3.0)
        assert fired == [3.0]

    def test_empty_queue_returns_current_clock(self):
        sim = Simulator()
        assert sim.run() == 0.0


class TestResource:
    def test_fifo_handover(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            yield res.request()
            order.append(("start", name, sim.now))
            yield sim.timeout(hold)
            order.append(("end", name, sim.now))
            res.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert [o[1] for o in order if o[0] == "start"] == ["a", "b", "c"]
        assert order[-1] == ("end", "c", 4.0)

    def test_capacity_bounds_concurrency(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker():
            yield res.request()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            res.release()

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(peak) == 2
        assert res.queued == 0

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestStore:
    def test_items_arrive_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield sim.timeout(1.0)
                store.put(i)

        def consumer():
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [0, 1, 2]

    def test_get_before_put_blocks_until_item(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            got.append(((yield store.get()), sim.now))

        def producer():
            yield sim.timeout(4.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 4.0)]

    def test_len_counts_queued_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        store.put("y")
        assert len(store) == 2
