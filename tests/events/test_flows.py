"""Dynamic max-min fluid flows on the shared bottleneck.

The fleet's byte-movement claims ride on this model, so the tests pin
both exact closed-form cases (hand-computed drain times for joins and
leaves mid-transfer) and the safety invariant: at no reallocation
instant may the rates exceed the bottleneck capacity or a flow's own
access cap.  The invariant is property-tested over randomized flow sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import FlowLink, Simulator, max_min_rates

#: relative slack for float comparisons on rate sums
_EPS = 1e-9


class TestMaxMinRates:
    def test_uncapped_flows_split_equally(self):
        assert max_min_rates([100.0, 100.0], 10.0) == [5.0, 5.0]

    def test_bottlenecked_flow_keeps_cap_leftover_resplits(self):
        assert max_min_rates([2.0, 100.0, 100.0], 12.0) == [2.0, 5.0, 5.0]

    def test_all_capped_below_share(self):
        assert max_min_rates([1.0, 2.0], 100.0) == [1.0, 2.0]

    def test_empty(self):
        assert max_min_rates([], 10.0) == []


class TestFlowLinkExact:
    def test_solo_flow_drains_at_min_of_cap_and_capacity(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        ev = link.transfer(10, 4.0, latency_s=0.5)  # 80 bits at 4 bps
        sim.run()
        rec = ev.value
        assert rec.drain_s == pytest.approx(20.0)
        assert rec.done_s == pytest.approx(20.5)

    def test_simultaneous_flows_get_fair_shares(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        a = link.transfer(10, 100.0)  # 80 bits, uncapped
        b = link.transfer(10, 100.0)
        sim.run()
        # Equal shares of 5 bps each: both drain at 16 s.
        assert a.value.drain_s == pytest.approx(16.0)
        assert b.value.drain_s == pytest.approx(16.0)

    def test_late_join_reshapes_rates_mid_transfer(self):
        """Hand-computed dynamic case.

        Capacity 10 bps.  A (80 bits) starts alone at t=0 and drains at
        10 bps.  B (80 bits) joins at t=4 when A has 40 bits left; both
        then run at 5 bps.  A drains at t=12; B has 40 bits left, takes
        the full 10 bps, and drains at t=16.
        """
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        results = {}

        def starter(name, delay, num_bytes):
            yield sim.timeout(delay)
            rec = yield link.transfer(num_bytes, 100.0, tag=name)
            results[name] = rec

        sim.process(starter("a", 0.0, 10))
        sim.process(starter("b", 4.0, 10))
        sim.run()
        assert results["a"].drain_s == pytest.approx(12.0)
        assert results["b"].drain_s == pytest.approx(16.0)

    def test_leave_frees_capacity_for_remaining_flow(self):
        """A short flow leaving mid-transfer speeds up the long one:
        two uncapped flows at 5 bps each; the 40-bit one drains at t=8,
        the 120-bit one then takes 10 bps and drains at t=16."""
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        short = link.transfer(5, 100.0)  # 40 bits
        long = link.transfer(15, 100.0)  # 120 bits
        sim.run()
        assert short.value.drain_s == pytest.approx(8.0)
        assert long.value.drain_s == pytest.approx(16.0)

    def test_latency_charged_after_drain_not_on_link(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=8.0)
        a = link.transfer(1, 8.0, latency_s=5.0)  # 8 bits -> drains t=1
        sim.run()
        assert a.value.drain_s == pytest.approx(1.0)
        assert a.value.done_s == pytest.approx(6.0)
        # The link was free after t=1 even though done fires at t=6.
        assert link.active_flows == 0

    def test_zero_byte_transfer_completes_instantly(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        ev = link.transfer(0, 5.0, latency_s=3.0)
        assert ev.processed or ev.triggered
        sim.run()
        rec = ev.value
        assert rec.num_bytes == 0
        assert rec.start_s == rec.drain_s == rec.done_s == 0.0
        assert link.rate_history == []  # never touched the link

    def test_flow_record_duration(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=8.0)
        ev = link.transfer(2, 8.0, latency_s=0.25)  # 16 bits -> 2 s
        sim.run()
        assert ev.value.duration_s == pytest.approx(2.25)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlowLink(sim, capacity_bps=0.0)
        link = FlowLink(sim, capacity_bps=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1, 5.0)
        with pytest.raises(ValueError):
            link.transfer(10, 0.0)
        with pytest.raises(ValueError):
            link.transfer(10, 5.0, latency_s=-1.0)


class TestRateInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        flows=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=500_000),  # bytes
                st.floats(min_value=1e3, max_value=1e8),  # access cap
                st.floats(min_value=0.0, max_value=30.0),  # start delay
            ),
            min_size=1,
            max_size=8,
        ),
        capacity=st.floats(min_value=1e3, max_value=1e8),
    )
    def test_rates_never_exceed_caps_or_capacity(self, flows, capacity):
        """At every reallocation instant: sum(rates) <= capacity and each
        flow's rate <= its own access cap — no matter how flows arrive
        and leave."""
        sim = Simulator()
        link = FlowLink(sim, capacity)
        events = []

        def starter(delay, num_bytes, cap):
            yield sim.timeout(delay)
            events.append((yield link.transfer(num_bytes, cap)))

        for num_bytes, cap, delay in flows:
            sim.process(starter(delay, num_bytes, cap))
        sim.run()
        assert len(events) == len(flows)  # every flow completed
        assert link.rate_history  # at least one reallocation happened
        for when, rates, caps in link.rate_history:
            assert sum(rates) <= capacity * (1 + _EPS)
            for rate, cap in zip(rates, caps):
                assert rate <= cap * (1 + _EPS)

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=200_000), min_size=1, max_size=6
        ),
        capacity=st.floats(min_value=1e4, max_value=1e8),
    )
    def test_aggregate_drain_bounded_by_capacity(self, sizes, capacity):
        """All flows together can never finish faster than the bottleneck
        allows: last drain >= total bits / capacity."""
        sim = Simulator()
        link = FlowLink(sim, capacity)
        events = [link.transfer(n, 1e9) for n in sizes]
        sim.run()
        last_drain = max(ev.value.drain_s for ev in events)
        total_bits = sum(n * 8.0 for n in sizes)
        assert last_drain >= total_bits / capacity * (1 - 1e-9)


class TestFlowCancel:
    """Node-crash-mid-upload semantics: cancellation is loss, not delivery.

    The scenario engine's churn process crashes nodes between stages, but
    the kernel-level guarantee it leans on lives here: a cancelled flow
    wakes its waiter immediately with a ``cancelled=True`` record, counts
    only the bits that actually crossed the link, and never reaches the
    ``flows.completed`` / ``flows.bytes`` counters — so byte ledgers that
    account at completion time cannot double-count a crashed upload.
    """

    def test_cancel_mid_transfer_reports_partial_bytes(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        ev = link.transfer(10, 100.0)  # 80 bits at 10 bps -> drain t=8

        records = []

        def crash():
            yield sim.timeout(4.0)  # halfway: 40 bits = 5 bytes drained
            records.append(link.cancel(ev))

        sim.process(crash())
        sim.run()
        rec = ev.value
        assert rec.cancelled
        assert rec.bytes_transferred == 5
        assert rec.delivered_bytes == 5
        assert rec.num_bytes == 10  # the intent is preserved alongside
        assert rec.done_s == pytest.approx(4.0)  # waiter wakes at crash time
        assert records[0] is rec

    def test_cancelled_flow_never_counts_as_completed(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0, metrics=metrics, name="up")
        doomed = link.transfer(10, 100.0)
        survivor = link.transfer(10, 100.0)

        def crash():
            yield sim.timeout(4.0)
            link.cancel(doomed)

        sim.process(crash())
        sim.run()
        assert metrics.counter("flows.started", link="up").value == 2
        assert metrics.counter("flows.cancelled", link="up").value == 1
        # Only the survivor completes and only its bytes are ledgered:
        # the doomed flow's 5 delivered bytes stay out of flows.bytes, so
        # a retry upload of the full payload cannot double-count.
        assert metrics.counter("flows.completed", link="up").value == 1
        assert metrics.counter("flows.bytes", link="up").value == 10

    def test_cancel_releases_bandwidth_to_survivors(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        doomed = link.transfer(10, 100.0)
        survivor = link.transfer(10, 100.0)

        def crash():
            yield sim.timeout(4.0)
            link.cancel(doomed)

        sim.process(crash())
        sim.run()
        # Fair share 5 bps until t=4 (60 bits left on the survivor), then
        # the full 10 bps: 60/10 = 6 more seconds -> drain at t=10, not
        # the t=16 a fair split to the end would give.
        assert survivor.value.drain_s == pytest.approx(10.0)
        assert not survivor.value.cancelled

    def test_cancel_after_drain_is_a_noop(self):
        sim = Simulator()
        link = FlowLink(sim, capacity_bps=10.0)
        ev = link.transfer(10, 100.0)
        sim.run()
        assert ev.value.cancelled is False
        assert link.cancel(ev) is None
        # The completed record is untouched by the late cancel.
        assert ev.value.delivered_bytes == 10
