"""Persistent worker pool: bit-identity, placement invariance, cleanup.

The pool's contract is that parallelism is *invisible* in the results:
any worker count produces byte-identical reports and traces on every
lockstep path (flat, topology, scenario), because all diagnosis
randomness is reseeded per (node, stage) and node results merge in
fixed node order regardless of which worker ran them.  The other half
of the contract is hygiene: shared-memory segments never outlive the
run, whether it exits normally or raises mid-stage.
"""

from __future__ import annotations

import glob

import pytest

from repro.core.systems import system_by_id
from repro.fleet.pool import _ACTIVE_SEGMENTS, FleetWorkerPool
from repro.fleet.profiles import FleetScenario
from repro.fleet.simulation import (
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
    run_fleet_all_systems,
)
from repro.obs import Tracer
from repro.scenario import (
    load_spec,
    prepare_scenario_assets,
    run_scenario_lockstep,
)
from repro.topology import Topology

NUM_NODES = 3

SCENARIO_YAML = """\
scenario:
  name: pool-tiny
  seed: 3
  engine: lockstep
  barrier: true

fleet:
  nodes: 3
  stages: 4
  base:
    stream_scale: 0.02
    pretrain_images: 32
    pretrain_epochs: 1
    init_epochs: 2
    update_epochs: 1
    eval_images: 32

processes:
  churn:
    rate: 0.4
  per_node_heads:
    groups: 2
    epochs: 1
"""


def tiny_fleet() -> FleetScenario:
    base = fleet_base_scenario(
        stream_scale=0.02,
        pretrain_images=32,
        pretrain_epochs=1,
        init_epochs=2,
        update_epochs=1,
        eval_images=32,
    )
    return FleetScenario(base=base, num_nodes=NUM_NODES, seed=7)


@pytest.fixture(scope="module")
def assets():
    return prepare_fleet_assets(tiny_fleet())


def fleet_signature(report):
    return (
        [s.eval_accuracy for s in report.stages],
        [s.uploaded for s in report.stages],
        [s.download_bytes for s in report.stages],
        [n.accuracy_trajectory for n in report.nodes],
        report.total_uploaded_bytes,
        report.total_downloaded_bytes,
    )


def scenario_signature(report):
    return (
        [n.accuracy_trajectory for n in report.fleet.nodes],
        report.stage_info,
        report.final_eval_accuracy,
        report.phase_accuracies,
        report.head_accuracies,
    )


def flat_run(assets, workers):
    tracer = Tracer()
    report = run_fleet(
        system_by_id("d"), assets, workers=workers, tracer=tracer
    )
    return fleet_signature(report), tracer.to_jsonl()


def topology_run(assets, workers):
    tracer = Tracer()
    report = run_fleet(
        system_by_id("d"),
        assets,
        workers=workers,
        tracer=tracer,
        topology=Topology.fan_out(NUM_NODES, 2),
    )
    return fleet_signature(report), tracer.to_jsonl()


@pytest.fixture(scope="module")
def flat_serial(assets):
    return flat_run(assets, 1)


@pytest.fixture(scope="module")
def topology_serial(assets):
    return topology_run(assets, 1)


@pytest.fixture(scope="module")
def scenario_spec():
    return load_spec(SCENARIO_YAML, filename="pool-tiny.yaml")


@pytest.fixture(scope="module")
def scenario_assets(scenario_spec):
    return prepare_scenario_assets(scenario_spec)


def scenario_run(spec, assets, workers):
    tracer = Tracer()
    report = run_scenario_lockstep(
        spec, assets=assets, workers=workers, tracer=tracer
    )
    return scenario_signature(report), tracer.to_jsonl()


@pytest.fixture(scope="module")
def scenario_serial(scenario_spec, scenario_assets):
    return scenario_run(scenario_spec, scenario_assets, 1)


class TestBitIdentity:
    """workers in {2, 4}: reports and trace bytes match serial exactly."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_flat(self, assets, flat_serial, workers):
        assert flat_run(assets, workers) == flat_serial

    @pytest.mark.parametrize("workers", [2, 4])
    def test_topology(self, assets, topology_serial, workers):
        assert topology_run(assets, workers) == topology_serial

    @pytest.mark.parametrize("workers", [2, 4])
    def test_scenario(self, scenario_spec, scenario_assets, scenario_serial, workers):
        assert (
            scenario_run(scenario_spec, scenario_assets, workers)
            == scenario_serial
        )


class TestPlacementInvariance:
    def test_chunk_boundaries_do_not_matter(self, assets, flat_serial):
        # 3 nodes over 2 vs 3 workers produces different node->worker
        # chunk assignments; per-(node, stage) reseeding makes the
        # placement unobservable in the results.
        assert flat_run(assets, 3) == flat_serial


class TestPoolReuse:
    def test_one_pool_serves_all_system_variants(self):
        scenario = tiny_fleet()
        serial = run_fleet_all_systems(scenario)
        pooled = run_fleet_all_systems(scenario, workers=2)
        assert serial.keys() == pooled.keys()
        for system_id in serial:
            assert fleet_signature(serial[system_id]) == fleet_signature(
                pooled[system_id]
            )

    def test_foreign_assets_rejected(self, assets, scenario_assets):
        with FleetWorkerPool(assets, 2) as pool:
            with pytest.raises(ValueError, match="FleetAssets"):
                run_fleet(
                    system_by_id("d"), scenario_assets, workers=2, pool=pool
                )


def _shm_names() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


class _ExplodingTracer(Tracer):
    """Raises from the merge loop after worker results arrive."""

    def extend(self, records) -> None:
        raise RuntimeError("tracer exploded mid-stage")


class TestSegmentCleanup:
    def test_normal_exit_leaves_no_segments(self, assets):
        before = _shm_names()
        run_fleet(system_by_id("d"), assets, workers=2)
        assert _ACTIVE_SEGMENTS == set()
        assert _shm_names() == before

    def test_exception_leaves_no_segments(self, assets):
        before = _shm_names()
        with pytest.raises(RuntimeError, match="exploded"):
            run_fleet(
                system_by_id("d"),
                assets,
                workers=2,
                tracer=_ExplodingTracer(),
            )
        assert _ACTIVE_SEGMENTS == set()
        assert _shm_names() == before

    def test_context_manager_unlinks_on_error(self, assets):
        before = _shm_names()
        with pytest.raises(RuntimeError, match="boom"):
            with FleetWorkerPool(assets, 2):
                raise RuntimeError("boom")
        assert _ACTIVE_SEGMENTS == set()
        assert _shm_names() == before
