"""Fleet simulation tests: determinism, movement ordering, rollout paths."""

from __future__ import annotations

import pytest

from repro.core import system_by_id
from repro.fleet import (
    FleetScenario,
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
)


def tiny_fleet(**overrides) -> FleetScenario:
    base = fleet_base_scenario(
        stream_scale=0.02,
        pretrain_images=32,
        pretrain_epochs=1,
        init_epochs=2,
        update_epochs=1,
        eval_images=32,
    )
    kwargs = dict(base=base, num_nodes=2, seed=0)
    kwargs.update(overrides)
    return FleetScenario(**kwargs)


@pytest.fixture(scope="module")
def assets():
    return prepare_fleet_assets(tiny_fleet())


@pytest.fixture(scope="module")
def report_a(assets):
    return run_fleet(system_by_id("a"), assets)


@pytest.fixture(scope="module")
def report_d(assets):
    return run_fleet(system_by_id("d"), assets)


class TestDeterminism:
    def test_same_scenario_same_reports(self):
        """Same FleetScenario seed => identical per-node reports and ledger."""
        first = run_fleet(
            system_by_id("d"), prepare_fleet_assets(tiny_fleet())
        )
        second = run_fleet(
            system_by_id("d"), prepare_fleet_assets(tiny_fleet())
        )
        for t1, t2 in zip(first.nodes, second.nodes):
            assert t1.profile == t2.profile
            assert t1.records == t2.records
            assert t1.ledger.stages == t2.ledger.stages
        assert first.ledger.stages == second.ledger.stages
        assert [s for s in first.stages] == [s for s in second.stages]

    def test_different_seed_different_fleet(self):
        a = prepare_fleet_assets(tiny_fleet(seed=0))
        b = prepare_fleet_assets(tiny_fleet(seed=1))
        assert a.profiles != b.profiles


class TestMovement:
    def test_stage0_uploads_everything(self, report_a, report_d):
        for report in (report_a, report_d):
            stage0 = report.stages[0]
            assert stage0.uploaded == stage0.acquired

    def test_diagnosis_moves_fewer_bytes(self, report_a, report_d):
        assert (
            report_d.total_uploaded_bytes < report_a.total_uploaded_bytes
        )
        assert report_d.total_bytes_moved < report_a.total_bytes_moved

    def test_downlink_charged_to_every_node(self, report_d):
        # Stage 0 publishes v1 and pushes it to the whole fleet.
        for trajectory in report_d.nodes:
            assert trajectory.records[0].download_bytes > 0
        assert report_d.total_downloaded_bytes > 0

    def test_ledger_totals_match_node_sum(self, report_d):
        assert report_d.ledger.total_uploaded_images == sum(
            t.ledger.total_uploaded_images for t in report_d.nodes
        )
        assert report_d.ledger.total_downloaded_bytes == sum(
            t.ledger.total_downloaded_bytes for t in report_d.nodes
        )

    def test_contention_stretches_uploads(self, report_a):
        for trajectory in report_a.nodes:
            assert trajectory.contention_stretch >= 1.0


class TestRollouts:
    def test_registry_starts_at_v1(self, report_d):
        assert report_d.registry.history()[0] == 1

    def test_rollout_events_cover_fleet_on_promotion(self, report_d):
        promoted = [r for r in report_d.rollouts if r.promoted]
        for rollout in promoted:
            touched = {e.node_id for e in rollout.events}
            assert touched == {t.profile.node_id for t in report_d.nodes}

    def test_rejected_rollouts_touch_canaries_only(self, report_d):
        for rollout in report_d.rollouts:
            if rollout.promoted:
                continue
            touched = {e.node_id for e in rollout.events}
            assert touched == set(rollout.canary_ids)
            kinds = {e.kind for e in rollout.events}
            assert kinds == {"canary", "rollback"}

    def test_cloud_cost_reported(self, report_d):
        assert report_d.total_update_time_s > 0
        assert report_d.total_cloud_energy_j > 0

    def test_weight_sharing_cuts_cloud_time(self, assets):
        report_c = run_fleet(system_by_id("c"), assets)
        report_d = run_fleet(system_by_id("d"), assets)
        # Identical uploads (same diagnoser, same data); d freezes the
        # shared convs so its per-image Cloud cost must be lower whenever
        # it trained at all.
        if report_d.total_update_time_s > 0:
            per_img_d = report_d.total_update_time_s / max(
                1, sum(s.pooled_for_training for s in report_d.stages)
            )
            per_img_c = report_c.total_update_time_s / max(
                1, sum(s.pooled_for_training for s in report_c.stages)
            )
            assert per_img_d < per_img_c


class TestAccuracy:
    def test_eval_trajectory_recorded(self, report_d):
        assert len(report_d.stages) == 5
        for stage in report_d.stages:
            assert 0.0 <= stage.eval_accuracy <= 1.0
            assert 0.0 <= stage.fleet_accuracy_on_new <= 1.0

    def test_per_node_trajectories_full_length(self, report_d):
        for trajectory in report_d.nodes:
            assert len(trajectory.records) == 5
