"""FleetScheduler policy and canary-rollout tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import InSituCloud, ModelRegistry, UpdateGuard
from repro.data import ImageGenerator, make_dataset
from repro.fleet import FleetScheduler
from repro.models import alexnet_spec
from repro.selfsup import PermutationSet


def _dataset(n, generator, rng):
    return make_dataset(n, generator=generator, rng=rng)


@pytest.fixture
def generator(rng):
    return ImageGenerator(image_size=48, num_classes=4, rng=rng)


def make_trigger_scheduler(policy: str, **kwargs) -> FleetScheduler:
    """Scheduler for trigger-logic tests (no cloud interaction)."""
    return FleetScheduler(
        cloud=None, registry=None, guard=None, policy=policy, **kwargs
    )


class TestTriggerPolicies:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            make_trigger_scheduler("nightly")

    def test_empty_pool_never_fires(self):
        scheduler = make_trigger_scheduler("per-stage")
        assert not scheduler.should_update(0.5)

    def test_per_stage_fires_on_any_upload(self, generator, rng):
        scheduler = make_trigger_scheduler("per-stage")
        scheduler.offer(1, 0, _dataset(2, generator, rng))
        assert scheduler.should_update(0.9)

    def test_offer_ignores_empty_uploads(self, generator, rng):
        scheduler = make_trigger_scheduler("per-stage")
        scheduler.offer(1, 0, _dataset(4, generator, rng).take(0))
        assert not scheduler.pool

    def test_threshold_waits_for_enough_images(self, generator, rng):
        scheduler = make_trigger_scheduler("threshold", upload_threshold=10)
        scheduler.offer(1, 0, _dataset(4, generator, rng))
        assert not scheduler.should_update(0.9)
        scheduler.offer(1, 1, _dataset(6, generator, rng))
        assert scheduler.should_update(0.9)

    def test_accuracy_drop_fires_only_on_regression(self, generator, rng):
        scheduler = make_trigger_scheduler("accuracy-drop", accuracy_drop=0.1)
        scheduler.offer(1, 0, _dataset(4, generator, rng))
        assert not scheduler.should_update(0.8)  # establishes the best
        assert not scheduler.should_update(0.75)  # within tolerance
        assert scheduler.should_update(0.65)  # 0.15 below best

    def test_drain_pools_and_clears(self, generator, rng):
        scheduler = make_trigger_scheduler("per-stage")
        scheduler.offer(1, 0, _dataset(4, generator, rng))
        scheduler.offer(1, 1, _dataset(3, generator, rng))
        pooled, count = scheduler.drain()
        assert count == 7 == len(pooled)
        assert not scheduler.pool
        with pytest.raises(ValueError):
            scheduler.drain()


class TestCanaryRollout:
    @pytest.fixture
    def setup(self, generator, rng):
        """A trained cloud + registry with version 1 active."""
        cloud = InSituCloud(
            4,
            PermutationSet.generate(4, rng=rng),
            cost_spec=alexnet_spec(),
            rng=np.random.default_rng(7),
        )
        train = _dataset(64, generator, rng)
        cloud.initialize_inference(train, epochs=4, use_transfer=False)
        registry = ModelRegistry()
        registry.publish(cloud.model_state(), {"stage": 0})
        holdout = _dataset(64, generator, rng)
        guard = UpdateGuard(validation_data=holdout, max_regression=0.02)
        scheduler = FleetScheduler(
            cloud=cloud,
            registry=registry,
            guard=guard,
            policy="per-stage",
            canary_ids=(0, 1),
        )
        return cloud, registry, scheduler, holdout

    def test_regressing_update_hits_canary_only_then_rolls_back(
        self, setup, generator, rng
    ):
        cloud, registry, scheduler, holdout = setup
        v1_state = registry.active.state
        # Poison the pooled uploads: permuted labels destroy the model.
        # Drop the replay archive so the update trains on poison alone.
        cloud.archive = None
        poison = _dataset(48, generator, rng)
        poison.labels = (poison.labels + 1) % 4
        result = scheduler.rollout(
            1,
            poison,
            holdout,
            all_node_ids=(0, 1, 2, 3),
            weight_shared=False,
            epochs=4,
            lr=0.05,
        )
        assert not result.promoted
        assert result.canary_ids == (0, 1)
        # Candidate reached the canary subset only...
        canary_events = [e for e in result.events if e.kind == "canary"]
        assert {e.node_id for e in canary_events} == {0, 1}
        assert all(e.version == -1 for e in canary_events)
        # ...no fleet-wide push happened...
        assert not [e for e in result.events if e.kind == "fleet"]
        # ...and the canaries were rolled back to the active version.
        rollback_events = [e for e in result.events if e.kind == "rollback"]
        assert {e.node_id for e in rollback_events} == {0, 1}
        assert all(e.version == 1 for e in rollback_events)
        # Registry never saw the candidate; the Cloud runs v1 again.
        assert registry.history() == [1]
        assert registry.active.version == 1
        for name, value in cloud.model_state().items():
            assert np.array_equal(value, v1_state[name])
        assert scheduler.rejection_count == 1

    def test_good_update_promotes_fleet_wide(self, setup, generator, rng):
        cloud, registry, scheduler, holdout = setup
        clean = _dataset(48, generator, rng)
        result = scheduler.rollout(
            1,
            clean,
            holdout,
            all_node_ids=(0, 1, 2, 3),
            weight_shared=True,
            epochs=2,
        )
        assert result.promoted
        assert registry.active.version == 2
        fleet_events = [e for e in result.events if e.kind == "fleet"]
        assert {e.node_id for e in fleet_events} == {2, 3}
        assert all(e.version == 2 for e in fleet_events)
        canary_events = [e for e in result.events if e.kind == "canary"]
        assert {e.node_id for e in canary_events} == {0, 1}

    def test_degenerate_fleet_uses_first_node_as_canary(
        self, setup, generator, rng
    ):
        cloud, registry, scheduler, holdout = setup
        scheduler.canary_ids = ()
        clean = _dataset(32, generator, rng)
        result = scheduler.rollout(
            1,
            clean,
            holdout,
            all_node_ids=(5,),
            weight_shared=True,
            epochs=1,
        )
        assert result.canary_ids == (5,)
