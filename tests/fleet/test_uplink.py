"""Shared-uplink contention model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import LTE, WIFI
from repro.fleet import SharedUplink, Transfer, model_state_bytes


def mb(n: float) -> int:
    return int(n * 1e6)


class TestFairRates:
    def test_single_flow_gets_own_link_rate(self):
        uplink = SharedUplink(100e6)
        t = Transfer(0, WIFI, mb(10))
        times = uplink.transfer_times([t])
        # Capacity exceeds the access link, so the WiFi rate bounds it.
        assert times[0] == pytest.approx(WIFI.transfer_time_s(mb(10)))

    def test_bottleneck_splits_evenly(self):
        # Two identical flows through a backhaul half as fast as one link:
        # each gets capacity/2 and takes twice the uncontended bottleneck time.
        uplink = SharedUplink(WIFI.bandwidth_bps / 2)
        flows = [Transfer(i, WIFI, mb(10)) for i in range(2)]
        times = uplink.transfer_times(flows)
        solo = uplink.solo_time(flows[0])
        expected = WIFI.latency_s + mb(10) * 8.0 / (WIFI.bandwidth_bps / 4)
        assert times[0] == pytest.approx(times[1])
        assert times[0] == pytest.approx(expected)
        assert times[0] > solo

    def test_slow_link_does_not_hold_capacity_hostage(self):
        # LTE caps itself below the fair share; WiFi takes the remainder.
        uplink = SharedUplink(25e6)
        flows = [Transfer(0, WIFI, mb(10)), Transfer(1, LTE, mb(10))]
        times = uplink.transfer_times(flows)
        # WiFi gets 25 - 10 = 15 Mbit/s while LTE is active, then all 20.
        assert times[0] < WIFI.latency_s + mb(10) * 8.0 / 12.5e6

    def test_completion_frees_bandwidth(self):
        uplink = SharedUplink(20e6)
        small = Transfer(0, WIFI, mb(1))
        large = Transfer(1, WIFI, mb(10))
        t_small, t_large = uplink.transfer_times([small, large])
        assert t_small < t_large
        # The large flow must beat the everyone-shares-forever bound.
        forever_shared = WIFI.latency_s + mb(10) * 8.0 / 10e6
        assert t_large < forever_shared
        # ... but it cannot beat having the link alone.
        assert t_large > uplink.solo_time(large)

    def test_zero_byte_transfers_are_free(self):
        uplink = SharedUplink(20e6)
        times = uplink.transfer_times(
            [Transfer(0, WIFI, 0), Transfer(1, WIFI, mb(1))]
        )
        assert times[0] == 0.0
        assert times[1] > 0.0

    def test_makespan(self):
        uplink = SharedUplink(20e6)
        flows = [Transfer(i, WIFI, mb(i + 1)) for i in range(3)]
        times, makespan = uplink.stage_upload_times(flows)
        assert makespan == max(times)

    def test_conservation(self):
        # Total service never exceeds capacity: N equal flows finish no
        # earlier than total_bits / capacity.
        uplink = SharedUplink(30e6)
        flows = [Transfer(i, WIFI, mb(5)) for i in range(4)]
        times = uplink.transfer_times(flows)
        lower_bound = 4 * mb(5) * 8.0 / 30e6
        assert max(times) >= lower_bound

    def test_push_times_contend_too(self):
        uplink = SharedUplink(20e6)
        times = uplink.push_times([WIFI, WIFI, LTE], mb(2))
        assert len(times) == 3
        assert max(times) > uplink.solo_time(Transfer(0, WIFI, mb(2)))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SharedUplink(0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            Transfer(0, WIFI, -1)


class TestEdgeCases:
    def test_empty_transfer_list_is_a_noop(self):
        uplink = SharedUplink(20e6)
        assert uplink.transfer_times([]) == []
        times, makespan = uplink.stage_upload_times([])
        assert times == []
        assert makespan == 0.0

    def test_all_zero_byte_transfers(self):
        uplink = SharedUplink(20e6)
        flows = [Transfer(i, WIFI, 0) for i in range(3)]
        times, makespan = uplink.stage_upload_times(flows)
        assert times == [0.0, 0.0, 0.0]
        assert makespan == 0.0

    def test_zero_byte_flow_consumes_no_capacity(self):
        # A zero-byte flow must not dilute the fair share of real flows.
        uplink = SharedUplink(20e6)
        alone = uplink.transfer_times([Transfer(0, WIFI, mb(5))])
        with_ghost = uplink.transfer_times(
            [Transfer(0, WIFI, mb(5)), Transfer(1, WIFI, 0)]
        )
        assert with_ghost[0] == pytest.approx(alone[0])

    def test_solo_time_zero_bytes(self):
        uplink = SharedUplink(20e6)
        assert uplink.solo_time(Transfer(0, WIFI, 0)) == 0.0

    def test_push_times_zero_model_bytes(self):
        uplink = SharedUplink(20e6)
        assert uplink.push_times([WIFI, LTE], 0) == [0.0, 0.0]

    def test_open_binds_capacity_to_a_simulator(self):
        from repro.events import Simulator

        uplink = SharedUplink(20e6)
        sim = Simulator()
        link = uplink.open(sim)
        assert link.capacity_bps == 20e6
        assert uplink.open(sim, downlink=True).capacity_bps == 20e6


def test_model_state_bytes():
    state = {
        "w": np.zeros((4, 4), dtype=np.float32),
        "b": np.zeros(4, dtype=np.float32),
    }
    assert model_state_bytes(state) == 4 * 4 * 4 + 4 * 4
