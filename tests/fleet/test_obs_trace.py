"""Observability determinism at fleet scale.

The contract under test: a tracer/metrics pair attached to a seeded
fleet run is a *pure function of the seed* — rerunning produces the
same bytes, the worker pool produces the same bytes as the serial path,
and turning observability off changes neither the records collected
(none) nor the simulation's own trajectory.
"""

from __future__ import annotations

import pytest

from repro.core.systems import system_by_id
from repro.fleet.async_sim import run_fleet_event
from repro.fleet.profiles import FleetScenario
from repro.fleet.simulation import (
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
)
from repro.obs import MetricsRegistry, Tracer, explain_divergence


@pytest.fixture(scope="module")
def assets():
    base = fleet_base_scenario(
        stream_scale=0.02,
        pretrain_images=32,
        pretrain_epochs=1,
        init_epochs=2,
        update_epochs=1,
        eval_images=32,
    )
    return prepare_fleet_assets(FleetScenario(base=base, num_nodes=3, seed=7))


def _signature(report):
    return (
        [s.eval_accuracy for s in report.stages],
        [s.uploaded for s in report.stages],
        [s.download_bytes for s in report.stages],
        report.total_uploaded_bytes,
        report.total_downloaded_bytes,
    )


def _traced_lockstep(assets, *, workers=1):
    tracer, metrics = Tracer(), MetricsRegistry()
    report = run_fleet(
        system_by_id("d"),
        assets,
        workers=workers,
        tracer=tracer,
        metrics=metrics,
    )
    return report, tracer.to_jsonl(), metrics.to_json()


@pytest.fixture(scope="module")
def traced_serial(assets):
    return _traced_lockstep(assets)


class TestLockstepTraceDeterminism:
    def test_rerun_is_byte_identical(self, assets, traced_serial):
        _, trace_a, metrics_a = traced_serial
        _, trace_b, metrics_b = _traced_lockstep(assets)
        assert trace_a == trace_b, explain_divergence(
            trace_a, trace_b, label_a="run1", label_b="run2"
        )
        assert metrics_a == metrics_b

    def test_worker_pool_produces_identical_bytes(self, assets, traced_serial):
        serial_report, serial_trace, serial_metrics = traced_serial
        pooled_report, pooled_trace, pooled_metrics = _traced_lockstep(
            assets, workers=2
        )
        assert pooled_trace == serial_trace, explain_divergence(
            pooled_trace, serial_trace, label_a="pooled", label_b="serial"
        )
        assert pooled_metrics == serial_metrics
        assert _signature(pooled_report) == _signature(serial_report)

    def test_trace_covers_every_component(self, traced_serial):
        _, trace, _ = traced_serial
        assert trace
        assert '"cat":"node"' in trace
        assert '"cat":"net"' in trace
        assert '"cat":"cloud"' in trace

    def test_metrics_cover_fleet_and_cloud(self, traced_serial):
        _, _, metrics = traced_serial
        for name in (
            "fleet.images.acquired",
            "fleet.upload_time_s",
            "cloud.updates",
            "train.epoch_loss",
        ):
            assert name in metrics


class TestDisabledObservability:
    def test_disabled_tracer_collects_nothing_and_moves_nothing(
        self, assets, traced_serial
    ):
        tracer = Tracer(enabled=False)
        report = run_fleet(system_by_id("d"), assets, tracer=tracer)
        assert tracer.records == []
        assert _signature(report) == _signature(traced_serial[0])

    def test_plain_run_matches_traced_run(self, assets, traced_serial):
        report = run_fleet(system_by_id("d"), assets)
        assert _signature(report) == _signature(traced_serial[0])


class TestEventTraceDeterminism:
    def test_rerun_is_byte_identical(self, assets):
        def run():
            tracer, metrics = Tracer(), MetricsRegistry()
            report = run_fleet_event(
                system_by_id("d"), assets, tracer=tracer, metrics=metrics
            )
            return report, tracer.to_jsonl(), metrics.to_json()

        report_a, trace_a, metrics_a = run()
        report_b, trace_b, metrics_b = run()
        assert trace_a == trace_b, explain_divergence(
            trace_a, trace_b, label_a="run1", label_b="run2"
        )
        assert metrics_a == metrics_b
        assert report_a.makespan_s == report_b.makespan_s
        assert trace_a  # non-empty: node, net, and cloud records
        assert '"cat":"cloud"' in trace_a

    def test_disabled_event_run_matches_plain(self, assets):
        plain = run_fleet_event(system_by_id("d"), assets)
        tracer = Tracer(enabled=False)
        traced = run_fleet_event(system_by_id("d"), assets, tracer=tracer)
        assert tracer.records == []
        assert traced.makespan_s == plain.makespan_s
        assert traced.final_eval_accuracy == plain.final_eval_accuracy
