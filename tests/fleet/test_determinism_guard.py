"""Determinism guard: worker pools and event mode must not move results.

The hot-path PR parallelized :func:`run_fleet` across a process pool and
reseeded all diagnosis randomness per ``(node, stage)``.  These tests pin
the contract that bought us:

* ``workers=1`` and ``workers=4`` produce *bit-identical* reports;
* ``run_fleet_event(barrier=True)`` still reproduces the lockstep
  accuracy trajectory;
* the whole trajectory matches the values recorded from the seed
  revision (pre-parallelism, pre-cache), so none of the rewrites —
  batched rendering, dataset cache, buffer-pooled conv — moved a single
  prediction.
"""

from __future__ import annotations

import pytest

from repro.core.systems import system_by_id
from repro.fleet.async_sim import run_fleet_event
from repro.fleet.profiles import FleetScenario
from repro.fleet.simulation import (
    fleet_base_scenario,
    prepare_fleet_assets,
    run_fleet,
)

# Recorded from the seed revision (commit 9777dbe) for the scenario below.
GOLDEN_EVAL_ACCURACY = [0.28125, 0.28125, 0.40625, 0.40625, 0.28125]
GOLDEN_UPLOADED = [6, 5, 8, 17, 19]
GOLDEN_DOWNLOAD_BYTES = [2627760, 2627760, 2627760, 1751840, 2627760]
GOLDEN_TOTAL_UP = 8250000
GOLDEN_TOTAL_DOWN = 12262880
GOLDEN_EVENT_MAKESPAN_S = 9.176558388151106
GOLDEN_EVENT_FINAL_EVAL = 0.28125


@pytest.fixture(scope="module")
def assets():
    base = fleet_base_scenario(
        stream_scale=0.02,
        pretrain_images=32,
        pretrain_epochs=1,
        init_epochs=2,
        update_epochs=1,
        eval_images=32,
    )
    return prepare_fleet_assets(FleetScenario(base=base, num_nodes=3, seed=7))


def _signature(report):
    """Every float/int the simulation produced, exactly."""
    return (
        [s.eval_accuracy for s in report.stages],
        [s.fleet_accuracy_on_new for s in report.stages],
        [s.uploaded for s in report.stages],
        [s.download_bytes for s in report.stages],
        [[r.accuracy_on_new for r in n.records] for n in report.nodes],
        [[r.uploaded for r in n.records] for n in report.nodes],
        report.total_uploaded_bytes,
        report.total_downloaded_bytes,
    )


class TestWorkerDeterminism:
    def test_workers_bit_identical_and_matches_seed_revision(self, assets):
        config = system_by_id("d")
        serial = run_fleet(config, assets, workers=1)
        pooled = run_fleet(config, assets, workers=4)
        assert _signature(serial) == _signature(pooled)

        assert [s.eval_accuracy for s in serial.stages] == GOLDEN_EVAL_ACCURACY
        assert [s.uploaded for s in serial.stages] == GOLDEN_UPLOADED
        assert [s.download_bytes for s in serial.stages] == GOLDEN_DOWNLOAD_BYTES
        assert serial.total_uploaded_bytes == GOLDEN_TOTAL_UP
        assert serial.total_downloaded_bytes == GOLDEN_TOTAL_DOWN

    def test_event_barrier_matches_seed_revision(self, assets):
        report = run_fleet_event(system_by_id("d"), assets, barrier=True)
        assert report.makespan_s == GOLDEN_EVENT_MAKESPAN_S
        assert report.final_eval_accuracy == GOLDEN_EVENT_FINAL_EVAL

    def test_workers_validation(self, assets):
        with pytest.raises(ValueError):
            run_fleet(system_by_id("d"), assets, workers=0)

    def test_repeat_runs_identical(self, assets):
        """Same assets, two serial runs: byte-for-byte identical reports."""
        config = system_by_id("a")
        a = run_fleet(config, assets)
        b = run_fleet(config, assets)
        assert _signature(a) == _signature(b)
